"""repro — a reproduction of "Multi-session Separation of Duties (MSoD)
for RBAC" (Chadwick, Xu, Otenko, Laborde, Nasser — ICDE 2007).

The package is organised as:

* :mod:`repro.core` — the paper's contribution: business contexts,
  MMER/MMEP constraints, MSoD policies, the retained ADI and the
  Section 4.2 enforcement engine.
* :mod:`repro.rbac` — an ANSI INCITS 359-2004 RBAC substrate (core,
  hierarchical, SSD and DSD RBAC with review functions).
* :mod:`repro.xmlpolicy` — the Appendix-A XML policy language.
* :mod:`repro.framework` — the ISO 10181-3 PEP/PDP access-control
  framework with retained ADI.
* :mod:`repro.permis` — a PERMIS-like privilege management
  infrastructure: credentials, directory, privilege allocation, CVS and
  PDP (Section 5).
* :mod:`repro.audit` — the secure audit trail and retained-ADI recovery.
* :mod:`repro.vo` — multi-authority virtual-organisation simulation
  (partial role disclosure, Shibboleth handles, Liberty identity
  linking).
* :mod:`repro.workflow` — a workflow engine driving the tax-refund
  example.
* :mod:`repro.baselines` — comparators: ANSI SSD/DSD, Crampton
  anti-roles, Bertino workflow authorization, Sandhu transaction control
  expressions.
* :mod:`repro.workload` — seeded synthetic workload generators for the
  benchmark harness.
"""

from repro.core import (
    MMEP,
    MMER,
    ContextName,
    Decision,
    DecisionRequest,
    InMemoryRetainedADIStore,
    MSoDEngine,
    MSoDPolicy,
    MSoDPolicySet,
    Privilege,
    Role,
    SQLiteRetainedADIStore,
    Step,
)
from repro.errors import ReproError

__version__ = "1.0.0"

#: Lazily re-exported from :mod:`repro.api` (PEP 562) so that importing
#: ``repro`` never drags in the server/client stack.
_API_NAMES = ("open_pdp", "open_server", "open_cluster")


def __getattr__(name: str):
    if name in _API_NAMES:
        from repro import api

        return getattr(api, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list:
    return sorted(list(globals()) + list(_API_NAMES))


__all__ = [
    "__version__",
    "ReproError",
    "open_pdp",
    "open_server",
    "open_cluster",
    "ContextName",
    "Role",
    "Privilege",
    "MMER",
    "MMEP",
    "MSoDPolicy",
    "MSoDPolicySet",
    "Step",
    "MSoDEngine",
    "InMemoryRetainedADIStore",
    "SQLiteRetainedADIStore",
    "Decision",
    "DecisionRequest",
]

"""Exception hierarchy for the MSoD reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch the whole family with a single ``except`` clause while
still being able to discriminate precise failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ContextNameError(ReproError):
    """A business-context name is syntactically or semantically invalid."""


class ConstraintError(ReproError):
    """An MMER/MMEP constraint definition is invalid."""


class PolicyError(ReproError):
    """An MSoD (or RBAC) policy definition is invalid."""


class PolicyParseError(PolicyError):
    """An XML policy document could not be parsed or failed validation."""


class RBACError(ReproError):
    """Base class for errors raised by the ANSI RBAC substrate."""


class UnknownEntityError(RBACError):
    """A referenced user, role, operation, object or session is unknown."""


class DuplicateEntityError(RBACError):
    """An entity with the same identifier already exists."""


class ConstraintViolationError(RBACError):
    """An administrative command would violate an SSD/DSD constraint."""


class SessionError(RBACError):
    """An illegal session operation (e.g. activating an unassigned role)."""


class StoreError(ReproError):
    """A retained-ADI store failed (I/O, closed handle, corruption...)."""


class StoreSpecError(PolicyError):
    """A store spec string is malformed or names an unknown backend.

    Subclasses :class:`PolicyError` because every construction entry
    point (``open_pdp``, ``open_server``, the CLI) historically raised
    ``PolicyError`` for bad specs; existing handlers keep working while
    new callers can catch the precise class.
    """


class CredentialError(ReproError):
    """A credential is malformed, untrusted, expired or tampered with."""


class AuditTrailError(ReproError):
    """An audit trail is corrupt, unverifiable or cannot be written."""


class WorkflowError(ReproError):
    """An illegal workflow operation (bad routing, repeated task...)."""


class DirectoryError(ReproError):
    """An LDAP-like directory operation failed (unknown DN, bad filter)."""


class AdminError(ReproError):
    """A retained-ADI management-port operation was rejected."""


class ProtocolError(ReproError):
    """A serving wire frame is malformed, oversized or mis-versioned."""


class PDPUnavailableError(ReproError):
    """A remote PDP could not be reached or failed mid-exchange.

    Applications consulting a :class:`~repro.client.RemotePDP` through a
    :class:`~repro.framework.PolicyEnforcementPoint` see this typed error
    instead of raw socket exceptions, so "the PDP is down" is
    distinguishable from "the request was denied".
    """


class PDPConnectError(PDPUnavailableError):
    """The remote PDP could not be reached at all.

    Raised when establishing the connection fails, *before* any frame
    is written.  Nothing reached the server, so retrying the request —
    including a ``decide`` — is always safe; contrast the base
    :class:`PDPUnavailableError`, which after a send may mean the
    request is still queued or evaluating on the server.
    """


class PDPOverloadedError(PDPUnavailableError):
    """The remote PDP shed the request under admission control.

    Carries the server's ``retry_after`` hint (seconds); the request was
    rejected *before* entering a shard queue, so retrying it is safe.
    """

    def __init__(self, message: str, retry_after: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class PDPFencedError(PDPUnavailableError):
    """A cluster node rejected the frame's epoch as stale.

    The client's routing table predates a failover: the shard has a new
    primary with a higher epoch.  The request was *not* evaluated; the
    caller must refresh its route and retry against the new primary.
    """


class PDPNotPrimaryError(PDPUnavailableError):
    """The addressed cluster node is not the primary for this user.

    Standbys (and deposed primaries) refuse decides outright so a
    client with a stale routing table can never split one user's
    retained-ADI history across two nodes.  Refresh the route and
    retry.
    """


class ClusterError(ReproError):
    """A cluster management operation failed (bad topology, no standby
    to promote, duplicate node names...)."""


class RequestFencedError(ClusterError):
    """A node's audit sink refused to record an in-flight decision.

    Raised when the decision's user was fenced (demotion, or a reshard
    cutover moving the user to another shard) *after* the decide gate
    admitted the request but *before* the sink appended it.  The
    decision was never acknowledged and never entered the trail, so the
    server maps this to the wire's ``fenced`` error and the client can
    safely re-route and resend the same ``request_id``.
    """

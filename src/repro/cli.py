"""Command-line interface: ``python -m repro <command>``.

The CLI drives the MSoD engine against an on-disk SQLite retained ADI,
so *separate invocations are separate user sessions* — exactly the
setting the paper targets.  A denied second invocation demonstrates
multi-session SoD from a shell:

.. code-block:: console

   $ python -m repro decide policy.xml --adi adi.db --user alice \\
         --role employee:Teller --operation handleCash \\
         --target till://1 --context "Branch=York, Period=2006"
   GRANT ...
   $ python -m repro decide policy.xml --adi adi.db --user alice \\
         --role employee:Auditor --operation auditBooks \\
         --target ledger://1 --context "Branch=Leeds, Period=2006"
   DENY ...

Commands: ``validate``, ``show``, ``compile``, ``decompile``, ``lint``,
``decide``, ``explain``, ``history``, ``purge``, ``serve``,
``remote-decide``, ``remote-status``, ``metrics``.

``serve`` turns the same policy + SQLite retained ADI into a networked
authorization service (the paper's Section 5 deployment shape);
``remote-decide`` is the PEP side of that wire, ``remote-status``
snapshots the server's health/metrics, and ``metrics`` scrapes the
Prometheus text exposition (point a Prometheus scrape job at it, or
eyeball it in a terminal).

Construction goes through :func:`repro.api.open_pdp`, so the CLI, the
tests and the benchmarks all build their PDPs the same way.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys
import time
from typing import Sequence

from repro.core import (
    CONTROLLER_ROLE,
    ContextName,
    DecisionRequest,
    MSoDEngine,
    RetainedADIManagementPort,
    Role,
)
from repro.errors import ReproError, StoreSpecError
from repro.xmlpolicy import (
    parse_policy_set_file,
    validate_policy_document,
)


def _add_store_arguments(cmd: argparse.ArgumentParser) -> None:
    """The store pair every ADI-touching command takes: one is required.

    ``--adi <path>`` stays as the historical shorthand for
    ``--store sqlite:<path>``; ``--store`` takes the full unified spec
    grammar (see :func:`repro.api.parse_store_spec`) and wins when both
    are given.
    """
    cmd.add_argument(
        "--adi",
        help="SQLite retained-ADI path (shorthand for --store sqlite:<path>)",
    )
    cmd.add_argument(
        "--store",
        help="retained-ADI store spec: memory, sqlite:<path>, or "
        "tiered:<warm-spec>?hot_users=N[&shards=M] (overrides --adi)",
    )


def _store_spec(args: argparse.Namespace) -> str:
    if getattr(args, "store", None):
        return args.store
    if getattr(args, "adi", None):
        return f"sqlite:{args.adi}"
    raise StoreSpecError("one of --adi or --store is required")


def _open_store(args: argparse.Namespace):
    """Build the command's store through the unified spec parser."""
    from repro.storespec import build_store, parse_store_spec

    store, _ = build_store(parse_store_spec(_store_spec(args)))
    return store


def _parse_role(text: str) -> Role:
    role_type, sep, value = text.partition(":")
    if not sep:
        raise argparse.ArgumentTypeError(
            f"role {text!r} must be of the form type:value"
        )
    return Role(role_type, value)


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse command tree for the repro CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Multi-session Separation of Duties (MSoD) for RBAC",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    validate = commands.add_parser(
        "validate", help="validate an MSoD policy XML document"
    )
    validate.add_argument("policy", help="path to the policy XML file")

    show = commands.add_parser("show", help="summarise an MSoD policy set")
    show.add_argument("policy", help="path to the policy XML file")

    decide = commands.add_parser(
        "decide", help="evaluate one access request (one 'session')"
    )
    decide.add_argument("policy", help="path to the policy XML file")
    _add_store_arguments(decide)
    decide.add_argument("--user", required=True, help="user ID")
    decide.add_argument(
        "--role",
        action="append",
        required=True,
        type=_parse_role,
        help="activated role as type:value (repeatable)",
    )
    decide.add_argument("--operation", required=True)
    decide.add_argument("--target", required=True)
    decide.add_argument(
        "--context", required=True, help='business-context instance, e.g. "A=1, B=2"'
    )
    decide.add_argument(
        "--literal",
        action="store_true",
        help="use the literal published step order instead of strict mode",
    )
    decide.add_argument(
        "--trace",
        action="store_true",
        help="print the per-stage decision trace after the verdict",
    )
    decide.add_argument(
        "--explain",
        action="store_true",
        help="narrate the evaluation (all constraint kinds) after the "
        "verdict, like `explain` but for the decision just taken",
    )

    compile_cmd = commands.add_parser(
        "compile", help="compile the authoring DSL to Appendix-A XML"
    )
    compile_cmd.add_argument("source", help="path to a .msod DSL file")
    compile_cmd.add_argument(
        "-o", "--output", help="output XML path (default: stdout)"
    )

    decompile_cmd = commands.add_parser(
        "decompile", help="render an XML policy set as authoring DSL"
    )
    decompile_cmd.add_argument("policy", help="path to the policy XML file")

    lint = commands.add_parser(
        "lint",
        help="statically analyse a PERMIS XML policy and its MSoD component",
    )
    lint.add_argument("policy", help="path to a PermisRBACPolicy XML file")

    verify_cmd = commands.add_parser(
        "verify",
        help="statically verify an MSoD policy set (stage 1 of the "
        "rollout pipeline); exit 1 on error-severity findings",
    )
    verify_cmd.add_argument(
        "policy", help="path to the policy XML (or .msod DSL) file"
    )
    verify_cmd.add_argument(
        "--permis",
        help="companion PermisRBACPolicy XML enabling the RBAC-layer "
        "reachability checks (assignable roles, grantable privileges)",
    )
    verify_cmd.add_argument(
        "--host",
        default=None,
        help="verify on a running `serve` instance (its engine parses "
        "the candidate) instead of locally",
    )
    verify_cmd.add_argument("--port", type=int, default=8750)
    verify_cmd.add_argument("--timeout", type=float, default=5.0)
    verify_cmd.add_argument(
        "--json", action="store_true", help="print the report as JSON"
    )

    whatif_cmd = commands.add_parser(
        "whatif",
        help="differentially replay a recorded audit trail under a "
        "candidate policy set (stage 2); exit 1 when more decisions "
        "flip than --max-flips allows",
    )
    whatif_cmd.add_argument(
        "policy", help="path to the candidate policy XML (or .msod DSL) file"
    )
    whatif_cmd.add_argument(
        "--audit-dir", help="recorded audit-trail directory to replay"
    )
    whatif_cmd.add_argument(
        "--audit-key",
        default="audit-trail-key",
        help="HMAC key sealing the audit trails",
    )
    whatif_cmd.add_argument(
        "--last-n-trails",
        type=int,
        default=None,
        help="replay only the newest N trail files",
    )
    whatif_cmd.add_argument(
        "--since",
        type=float,
        default=0.0,
        help="replay only events at or after this timestamp",
    )
    whatif_cmd.add_argument(
        "--max-flips",
        type=int,
        default=0,
        help="tolerated flipped decisions before exiting 1 (default 0)",
    )
    whatif_cmd.add_argument(
        "--host",
        default=None,
        help="replay on a running `serve` instance against its own "
        "recent trail instead of --audit-dir",
    )
    whatif_cmd.add_argument("--port", type=int, default=8750)
    whatif_cmd.add_argument("--timeout", type=float, default=5.0)
    whatif_cmd.add_argument(
        "--json", action="store_true", help="print the report as JSON"
    )

    explain_cmd = commands.add_parser(
        "explain",
        help="dry-run a request and narrate the §4.2 evaluation "
        "(never modifies the retained ADI)",
    )
    explain_cmd.add_argument("policy", help="path to the policy XML file")
    _add_store_arguments(explain_cmd)
    explain_cmd.add_argument("--user", required=True)
    explain_cmd.add_argument(
        "--role", action="append", required=True, type=_parse_role
    )
    explain_cmd.add_argument("--operation", required=True)
    explain_cmd.add_argument("--target", required=True)
    explain_cmd.add_argument("--context", required=True)

    history = commands.add_parser(
        "history", help="list the retained-ADI records"
    )
    _add_store_arguments(history)

    purge = commands.add_parser(
        "purge", help="administratively purge retained-ADI records (§4.3)"
    )
    _add_store_arguments(purge)
    group = purge.add_mutually_exclusive_group(required=True)
    group.add_argument("--context", help="purge a business context [instance]")
    group.add_argument("--user", help="purge one user's records")
    group.add_argument(
        "--older-than", type=float, help="purge records granted before this time"
    )
    group.add_argument("--all", action="store_true", help="purge everything")

    serve = commands.add_parser(
        "serve",
        help="run the sharded MSoD authorization service (JSON-lines TCP)",
    )
    serve.add_argument("policy", help="path to the policy XML file")
    _add_store_arguments(serve)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8750)
    serve.add_argument(
        "--shards", type=int, default=4, help="per-user worker queues"
    )
    serve.add_argument(
        "--queue-depth",
        type=int,
        default=256,
        help="bound of each shard queue (overload sheds beyond it)",
    )
    serve.add_argument(
        "--batch-max",
        type=int,
        default=32,
        help="cap on one worker micro-batch (one SQLite transaction)",
    )
    serve.add_argument(
        "--gather-window",
        type=float,
        default=None,
        help="micro-batch gather window in seconds (default: adaptive, "
        "scaled to the shard count)",
    )
    serve.add_argument(
        "--literal",
        action="store_true",
        help="use the literal published step order instead of strict mode",
    )
    serve.add_argument(
        "--relaxed",
        action="store_true",
        help="allow policies mixing MMER and MMEP constraints "
        "(relaxes the Appendix-A xs:choice)",
    )
    serve.add_argument(
        "--trace",
        action="store_true",
        help="trace every decision and keep a slow-decision log "
        "(queryable via the slowlog verb / remote-status --slowlog)",
    )
    serve.add_argument(
        "--slowlog-size",
        type=int,
        default=32,
        help="how many slowest traces to retain (with --trace)",
    )
    _audit_flags(serve)

    def _remote_address(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument("--host", default="127.0.0.1")
        cmd.add_argument("--port", type=int, default=8750)
        cmd.add_argument("--timeout", type=float, default=5.0)
        cmd.add_argument(
            "--protocol",
            choices=("auto", "v1", "v2"),
            default="auto",
            help="decide wire protocol: negotiate pipelined binary v2 "
            "(auto, the default) or pin v1/v2",
        )

    remote_decide = commands.add_parser(
        "remote-decide",
        help="evaluate one access request against a running `serve` instance",
    )
    _remote_address(remote_decide)
    remote_decide.add_argument("--user", required=True)
    remote_decide.add_argument(
        "--role", action="append", required=True, type=_parse_role
    )
    remote_decide.add_argument("--operation", required=True)
    remote_decide.add_argument("--target", required=True)
    remote_decide.add_argument("--context", required=True)

    remote_status = commands.add_parser(
        "remote-status",
        help="print a running server's health (or --metrics) snapshot",
    )
    _remote_address(remote_status)
    status_kind = remote_status.add_mutually_exclusive_group()
    status_kind.add_argument(
        "--metrics",
        action="store_true",
        help="full perf/shard metrics instead of the health summary",
    )
    status_kind.add_argument(
        "--slowlog",
        action="store_true",
        help="the server's slowest retained decision traces",
    )

    metrics_cmd = commands.add_parser(
        "metrics",
        help="scrape a running server's Prometheus text exposition",
    )
    _remote_address(metrics_cmd)

    policy_cmd = commands.add_parser(
        "policy",
        help="live policy management against a running `serve` instance",
    )
    policy_cmds = policy_cmd.add_subparsers(
        dest="policy_command", required=True
    )
    pstatus = policy_cmds.add_parser(
        "status",
        help="print the server's active policy version and reload count",
    )
    _remote_address(pstatus)
    preload = policy_cmds.add_parser(
        "reload",
        help="hot-swap the server's policy set from an XML file, zero "
        "downtime (reloading an identical set is a detected no-op)",
    )
    preload.add_argument("policy", help="path to the new policy XML file")
    _remote_address(preload)
    _verify_flags(preload)
    preload.add_argument(
        "--principal",
        default=None,
        help="acting operator: the outgoing set's admin boundaries may "
        "refuse a principal with retained operational decisions",
    )

    cluster = commands.add_parser(
        "cluster",
        help="multi-node MSoD cluster: serve, nodes, status, smoke test",
    )
    cluster_cmds = cluster.add_subparsers(dest="cluster_command", required=True)

    cserve = cluster_cmds.add_parser(
        "serve",
        help="boot an N-shard cluster (primary+standby each) plus the "
        "routing coordinator, in one process",
    )
    cserve.add_argument("policy", help="path to the policy XML file")
    cserve.add_argument(
        "--data-dir",
        required=True,
        help="directory for every node's audit trails (and sqlite stores)",
    )
    cserve.add_argument("--host", default="127.0.0.1")
    cserve.add_argument(
        "--port", type=int, default=8760, help="coordinator port"
    )
    cserve.add_argument(
        "--cluster-shards", type=int, default=2, help="number of shards"
    )
    cserve.add_argument(
        "--store",
        default="sqlite",
        help="per-node retained-ADI store spec: memory, sqlite (one file "
        "per node under --data-dir) or tiered:sqlite?hot_users=N",
    )
    _audit_flags(cserve, fsync_default=True)

    cnode = cluster_cmds.add_parser(
        "node",
        help="run one standalone cluster node (the multi-process bench's "
        "building block)",
    )
    cnode.add_argument("policy", help="path to the policy XML file")
    cnode.add_argument("--name", required=True, help="node name")
    cnode.add_argument("--shard", required=True, help="owning shard name")
    cnode.add_argument(
        "--role", choices=("primary", "standby"), default="primary"
    )
    cnode.add_argument("--epoch", type=int, default=1)
    cnode.add_argument("--host", default="127.0.0.1")
    cnode.add_argument("--port", type=int, default=0)
    cnode.add_argument(
        "--adi",
        help="SQLite retained-ADI path (default: in-memory store; "
        "shorthand for --store sqlite:<path>)",
    )
    cnode.add_argument(
        "--store",
        help="retained-ADI store spec (overrides --adi)",
    )
    cnode.add_argument(
        "--audit-dir", required=True, help="this node's trail directory"
    )
    cnode.add_argument("--audit-key", default="cluster-trail-key")
    cnode.add_argument("--audit-max-records", type=int, default=10_000)
    cnode.add_argument("--audit-max-bytes", type=int, default=None)
    cnode.add_argument(
        "--no-fsync",
        action="store_true",
        help="skip per-append fsync (benchmarking only; loses the "
        "acknowledged-implies-durable guarantee)",
    )

    def _coordinator_address(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument("--host", default="127.0.0.1")
        cmd.add_argument(
            "--port", type=int, default=8760, help="coordinator port"
        )
        cmd.add_argument("--timeout", type=float, default=5.0)
        cmd.add_argument(
            "--protocol",
            choices=("auto", "v1", "v2"),
            default="auto",
            help="per-node decide wire protocol (auto negotiates "
            "pipelined binary v2 with v1 fallback)",
        )

    cstatus = cluster_cmds.add_parser(
        "status", help="print the coordinator's cluster-status body"
    )
    _coordinator_address(cstatus)

    croute = cluster_cmds.add_parser(
        "route", help="print the current routing table"
    )
    _coordinator_address(croute)

    cmetrics = cluster_cmds.add_parser(
        "metrics",
        help="scrape the coordinator's Prometheus exposition "
        "(per-node up/primary/epoch gauges)",
    )
    _coordinator_address(cmetrics)

    creload = cluster_cmds.add_parser(
        "reload",
        help="roll a new policy XML across every cluster node, standby "
        "first, via the coordinator",
    )
    creload.add_argument("policy", help="path to the new policy XML file")
    _coordinator_address(creload)
    _verify_flags(creload)
    creload.add_argument(
        "--canary",
        action="store_true",
        help="stage the candidate on one shard's standby and mirror "
        "that shard's live decide stream through both sets before the "
        "coordinator-wide rollout",
    )
    creload.add_argument(
        "--principal",
        default=None,
        help="acting operator: every live node's admin boundaries are "
        "checked before any node swaps",
    )

    cresize = cluster_cmds.add_parser(
        "resize",
        help="online topology changes: add-node (split), drain, "
        "rebalance, status — all under live load",
    )
    resize_cmds = cresize.add_subparsers(
        dest="resize_command", required=True
    )
    radd = resize_cmds.add_parser(
        "add-node",
        help="grow by one shard: boot a primary+standby pair and "
        "migrate its hash-ring range onto it without downtime",
    )
    rdrain = resize_cmds.add_parser(
        "drain",
        help="shrink by one shard: migrate its users to the survivors, "
        "then retire its nodes (trails kept as sealed lineages)",
    )
    rdrain.add_argument("shard", help="name of the shard to retire")
    rrebalance = resize_cmds.add_parser(
        "rebalance",
        help="report per-shard resident-user imbalance from the store "
        "gauges; --apply starts a split when recommended",
    )
    rrebalance.add_argument(
        "--threshold",
        type=float,
        default=1.5,
        help="hottest-shard/mean ratio at which a split is recommended",
    )
    rrebalance.add_argument(
        "--apply",
        action="store_true",
        help="start the recommended split instead of only reporting",
    )
    rstatus = resize_cmds.add_parser(
        "status",
        help="print the active migration (phase, users moved, events "
        "imported) and migration history counters",
    )
    for rcmd in (radd, rdrain, rrebalance, rstatus):
        _coordinator_address(rcmd)
    for rcmd in (radd, rdrain, rrebalance):
        rcmd.add_argument(
            "--wait",
            action="store_true",
            help="poll until the started migration completes",
        )
        rcmd.add_argument(
            "--wait-timeout",
            type=float,
            default=120.0,
            help="seconds to poll with --wait before giving up",
        )

    cdecide = cluster_cmds.add_parser(
        "decide",
        help="evaluate one request through the routing cluster client",
    )
    _coordinator_address(cdecide)
    cdecide.add_argument("--user", required=True)
    cdecide.add_argument(
        "--role", action="append", required=True, type=_parse_role
    )
    cdecide.add_argument("--operation", required=True)
    cdecide.add_argument("--target", required=True)
    cdecide.add_argument("--context", required=True)

    csmoke = cluster_cmds.add_parser(
        "smoke",
        help="boot a cluster, run the hot-user workload, kill a primary "
        "mid-stream, assert failover correctness (the CI job)",
    )
    csmoke.add_argument(
        "--cluster-shards", type=int, default=3, help="number of shards"
    )
    csmoke.add_argument(
        "--requests", type=int, default=300, help="workload decisions"
    )
    csmoke.add_argument(
        "--store",
        default="sqlite",
        help="per-node store spec (memory, sqlite, tiered:sqlite?...)",
    )
    csmoke.add_argument(
        "--json", action="store_true", help="print the report as JSON"
    )
    csmoke.add_argument(
        "--resize",
        action="store_true",
        help="run the elastic-resize fault-injection smoke instead: "
        "2→3 split and 3→2 drain under live load, with the "
        "coordinator killed and a source primary killed mid-migration",
    )
    return parser


def _verify_flags(cmd: argparse.ArgumentParser) -> None:
    """Rollout-gate flags shared by ``policy reload`` and ``cluster reload``."""
    cmd.add_argument(
        "--verify",
        action="store_true",
        help="gate the swap on static analysis plus a what-if replay of "
        "the server's recent audit trail; refuse on error findings or "
        "flips over --max-flips",
    )
    cmd.add_argument(
        "--max-flips",
        type=int,
        default=0,
        help="with --verify: tolerated flipped decisions (default 0)",
    )
    cmd.add_argument(
        "--force",
        action="store_true",
        help="apply even if the verification gate or the policy "
        "analyzer refuses the candidate",
    )


def _audit_flags(
    cmd: argparse.ArgumentParser, fsync_default: bool = False
) -> None:
    """Audit-trail flags shared by ``serve`` and ``cluster serve``."""
    if fsync_default:
        cmd.add_argument(
            "--no-fsync",
            action="store_true",
            help="skip per-append fsync (benchmarking only; loses the "
            "acknowledged-implies-durable guarantee)",
        )
    else:
        cmd.add_argument(
            "--audit-dir",
            help="append every decision to a secure audit trail here",
        )
        cmd.add_argument(
            "--audit-fsync",
            action="store_true",
            help="fsync each audit append before acknowledging",
        )
    cmd.add_argument(
        "--audit-key",
        default="cluster-trail-key" if fsync_default else "audit-trail-key",
        help="HMAC key sealing the audit trails",
    )
    cmd.add_argument(
        "--audit-max-records",
        type=int,
        default=10_000,
        help="rotate the active trail after this many records",
    )
    cmd.add_argument(
        "--audit-max-bytes",
        type=int,
        default=None,
        help="also rotate once the active trail reaches this many bytes",
    )


def cmd_validate(args: argparse.Namespace) -> int:
    """Validate an MSoD XML document; exit 1 on problems."""
    with open(args.policy, "r", encoding="utf-8") as handle:
        problems = validate_policy_document(handle.read())
    if not problems:
        print("policy document is valid")
        return 0
    for problem in problems:
        print(f"problem: {problem}")
    return 1


def cmd_show(args: argparse.Namespace) -> int:
    """Print a human-readable summary of an MSoD policy set."""
    policy_set = parse_policy_set_file(args.policy)
    print(f"{len(policy_set)} MSoD polic{'y' if len(policy_set) == 1 else 'ies'}")
    for policy in policy_set:
        print(f"\n[{policy.policy_id}]")
        print(f"  business context: {policy.business_context}")
        if policy.first_step is not None:
            print(f"  first step: {policy.first_step}")
        if policy.last_step is not None:
            print(f"  last step:  {policy.last_step}")
        for mmer in policy.mmers:
            roles = ", ".join(str(role) for role in mmer.roles)
            print(f"  MMER m={mmer.forbidden_cardinality}: {{{roles}}}")
        for mmep in policy.mmeps:
            privileges = ", ".join(str(priv) for priv in mmep.privileges)
            print(f"  MMEP m={mmep.forbidden_cardinality}: {{{privileges}}}")
        for constraint in policy.extra_constraints:
            print(f"  {constraint!r}")
    return 0


def cmd_compile(args: argparse.Namespace) -> int:
    """Compile authoring-DSL text to Appendix-A XML."""
    from repro.xmlpolicy import compile_policy_set, write_policy_set

    with open(args.source, "r", encoding="utf-8") as handle:
        policy_set = compile_policy_set(handle.read())
    xml = write_policy_set(policy_set)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(xml + "\n")
        print(f"wrote {len(policy_set)} policies to {args.output}")
    else:
        print(xml)
    return 0


def cmd_decompile(args: argparse.Namespace) -> int:
    """Render an XML policy set as authoring DSL."""
    from repro.xmlpolicy import decompile_policy_set

    policy_set = parse_policy_set_file(args.policy)
    print(decompile_policy_set(policy_set), end="")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Statically analyse a PERMIS policy; exit 1 on errors."""
    from repro.permis import SEVERITY_ERROR, analyze_policy, parse_permis_policy

    with open(args.policy, "r", encoding="utf-8") as handle:
        policy = parse_permis_policy(handle.read())
    findings = analyze_policy(policy)
    if not findings:
        print("no findings")
        return 0
    for finding in findings:
        print(finding)
    has_errors = any(
        finding.severity == SEVERITY_ERROR for finding in findings
    )
    return 1 if has_errors else 0


def _print_verify_body(body: dict, as_json: bool) -> None:
    """Render a verify-report dict (local or wire) for the terminal."""
    if as_json:
        print(json.dumps(body, indent=2, sort_keys=True))
        return
    from repro.verify import VerifyReport

    report = VerifyReport.from_dict(body)
    if not report.findings:
        print("no findings")
    for finding in report.findings:
        print(finding)
    counts = report.counts_by_severity()
    print(
        f"{'ok' if report.ok else 'REFUSED'}: "
        f"{counts.get('error', 0)} error(s), "
        f"{counts.get('warning', 0)} warning(s), "
        f"{counts.get('info', 0)} info"
    )


def cmd_verify(args: argparse.Namespace) -> int:
    """Statically verify a policy set; exit 1 on error findings."""
    if args.host is not None:
        from repro.client import RemotePDP

        with RemotePDP(args.host, args.port, timeout=args.timeout) as pdp:
            body = pdp.verify_policy(args.policy)
    else:
        from repro.api import verify_policy

        permis = None
        if args.permis:
            from repro.permis import parse_permis_policy

            with open(args.permis, "r", encoding="utf-8") as handle:
                permis = parse_permis_policy(handle.read())
        body = verify_policy(args.policy, permis=permis).to_dict()
    _print_verify_body(body, args.json)
    return 0 if body.get("ok") else 1


def cmd_whatif(args: argparse.Namespace) -> int:
    """Differential what-if replay; exit 1 when flips exceed the budget."""
    if (args.host is None) == (args.audit_dir is None):
        print(
            "error: pass exactly one of --audit-dir (local replay) or "
            "--host (a running server's own trail)",
            file=sys.stderr,
        )
        return 2
    if args.host is not None:
        from repro.client import RemotePDP

        with RemotePDP(args.host, args.port, timeout=args.timeout) as pdp:
            body = pdp.what_if(args.policy)
    else:
        from repro.api import what_if

        body = what_if(
            args.policy,
            args.audit_dir,
            audit_key=args.audit_key.encode("utf-8"),
            last_n_trails=args.last_n_trails,
            since=args.since,
        ).to_dict()
    if args.json:
        print(json.dumps(body, indent=2, sort_keys=True))
    else:
        from repro.verify import DecisionFlip

        for flip in body.get("flips", []):
            print(f"flip: {DecisionFlip.from_dict(flip)}")
        print(
            f"replayed {body.get('decisions_replayed', 0)} decision(s) "
            f"from {body.get('events_scanned', 0)} event(s): "
            f"{body.get('flip_count', 0)} flip(s) "
            f"({body.get('grant_to_deny', 0)} grant->deny, "
            f"{body.get('deny_to_grant', 0)} deny->grant)"
        )
    return 0 if body.get("flip_count", 0) <= args.max_flips else 1


def cmd_decide(args: argparse.Namespace) -> int:
    """Evaluate one request as its own session; exit 2 on deny."""
    from repro.api import open_pdp
    from repro.core.engine import MODE_LITERAL, MODE_STRICT

    with open_pdp(
        args.policy,
        store=_store_spec(args),
        mode=MODE_LITERAL if args.literal else MODE_STRICT,
        trace=args.trace,
    ) as pdp:
        request = DecisionRequest(
            user_id=args.user,
            roles=tuple(args.role),
            operation=args.operation,
            target=args.target,
            context_instance=ContextName.parse(args.context),
            timestamp=time.time(),
        )
        explanation = None
        if args.explain:
            from repro.core import explain

            # Narrate against pre-decision store state: the decision
            # below may append retained-ADI records.
            explanation = explain(pdp.engine, request)
        decision = pdp.decide(request)
    print(decision)
    if decision.granted:
        print(
            f"recorded {decision.records_added} record(s), "
            f"purged {decision.records_purged}"
        )
    if args.trace and decision.trace is not None:
        print(decision.trace.render())
    if explanation is not None:
        print(explanation.render())
    return 0 if decision.granted else 2


def cmd_explain(args: argparse.Namespace) -> int:
    """Dry-run a request and narrate the evaluation (no writes)."""
    from repro.core import explain

    policy_set = parse_policy_set_file(args.policy)
    store = _open_store(args)
    try:
        engine = MSoDEngine(policy_set, store)
        explanation = explain(
            engine,
            DecisionRequest(
                user_id=args.user,
                roles=tuple(args.role),
                operation=args.operation,
                target=args.target,
                context_instance=ContextName.parse(args.context),
                timestamp=time.time(),
            ),
        )
        print(explanation.render())
        return 0 if explanation.granted else 2
    finally:
        store.close()


def cmd_history(args: argparse.Namespace) -> int:
    """List every record in the retained-ADI store."""
    store = _open_store(args)
    try:
        port = RetainedADIManagementPort(store)
        records = port.list_records([CONTROLLER_ROLE])
        print(f"{len(records)} retained record(s)")
        for record in records:
            roles = ",".join(str(role) for role in record.roles)
            print(
                f"  #{record.record_id} t={record.granted_at:.0f} "
                f"{record.user_id} [{roles}] {record.operation}@{record.target} "
                f"in [{record.context_instance}]"
            )
        return 0
    finally:
        store.close()


def cmd_purge(args: argparse.Namespace) -> int:
    """Administratively purge retained-ADI records (Section 4.3)."""
    store = _open_store(args)
    try:
        port = RetainedADIManagementPort(store)
        roles = [CONTROLLER_ROLE]
        if args.all:
            outcome = port.purge_all(roles)
        elif args.context is not None:
            outcome = port.purge_context(roles, ContextName.parse(args.context))
        elif args.user is not None:
            outcome = port.purge_user(roles, args.user)
        else:
            outcome = port.purge_older_than(roles, args.older_than)
        print(f"{outcome.detail}: {outcome.affected} record(s) removed")
        return 0
    finally:
        store.close()


async def _serve_until_interrupted(args: argparse.Namespace) -> int:
    """Boot the server and run until SIGINT/SIGTERM, then drain."""
    from repro.core.engine import MODE_LITERAL, MODE_STRICT
    from repro.obs import DecisionTracer, SlowDecisionLog
    from repro.perf import PerfRecorder
    from repro.server import AuthorizationService, MSoDServer

    policy_set = parse_policy_set_file(args.policy, strict=not args.relaxed)
    store = _open_store(args)
    perf = PerfRecorder()
    tracer = None
    if args.trace:
        slow_log = (
            SlowDecisionLog(args.slowlog_size) if args.slowlog_size > 0 else None
        )
        tracer = DecisionTracer(slow_log=slow_log)
    audit_sink = None
    trail_reader = None
    if args.audit_dir:
        from repro.audit import (
            EVENT_DECISION,
            AuditTrailManager,
            decision_event_payload,
        )

        trails = AuditTrailManager(
            args.audit_dir,
            args.audit_key.encode("utf-8"),
            max_records=args.audit_max_records,
            max_bytes=args.audit_max_bytes,
            fsync=args.audit_fsync,
        )

        def audit_sink(decision):
            trails.append(
                EVENT_DECISION,
                decision.request.timestamp,
                decision_event_payload(decision),
            )

        def trail_reader():
            # A fresh tolerant reader per what-if: the verifying swap
            # must not hold the writer's sequence state.
            return AuditTrailManager(
                args.audit_dir,
                args.audit_key.encode("utf-8"),
                tolerate_ahead=True,
            )

    try:
        engine = MSoDEngine(
            policy_set,
            store,
            mode=MODE_LITERAL if args.literal else MODE_STRICT,
            perf=perf,
            tracer=tracer,
        )
        service = AuthorizationService(
            engine,
            n_shards=args.shards,
            queue_depth=args.queue_depth,
            batch_max=args.batch_max,
            gather_window=args.gather_window,
            perf=perf,
            audit_sink=audit_sink,
            trail_reader=trail_reader,
        )
        server = MSoDServer(service, host=args.host, port=args.port)
        await server.start()
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # e.g. non-main thread / platforms without support
        print(
            f"serving MSoD decisions on {args.host}:{server.port} "
            f"({args.shards} shards, queue depth {args.queue_depth}, "
            f"batch max {args.batch_max}"
            f"{', tracing on' if args.trace else ''})",
            flush=True,
        )
        await stop.wait()
        print("draining shard queues...", flush=True)
        await server.stop()
    finally:
        store.close()
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the networked authorization service until interrupted."""
    try:
        return asyncio.run(_serve_until_interrupted(args))
    except KeyboardInterrupt:  # pragma: no cover - direct ^C race
        return 0


def cmd_remote_decide(args: argparse.Namespace) -> int:
    """One decision through the existing PEP, against a remote PDP."""
    from repro.api import open_pdp
    from repro.framework import PolicyEnforcementPoint

    with open_pdp(
        store=f"remote:{args.host}:{args.port}",
        timeout=args.timeout,
        protocol=args.protocol,
    ) as pdp:
        pep = PolicyEnforcementPoint(pdp, clock=time.time)
        decision = pep.request_decision(
            user_id=args.user,
            roles=tuple(args.role),
            operation=args.operation,
            target=args.target,
            context_instance=ContextName.parse(args.context),
        )
    print(decision)
    if decision.granted:
        print(
            f"recorded {decision.records_added} record(s), "
            f"purged {decision.records_purged}"
        )
    return 0 if decision.granted else 2


def cmd_remote_status(args: argparse.Namespace) -> int:
    """Print a running server's health/metrics/slowlog snapshot as JSON."""
    from repro.client import RemotePDP

    with RemotePDP(args.host, args.port, timeout=args.timeout) as pdp:
        if args.slowlog:
            body = pdp.slowlog()
        elif args.metrics:
            body = pdp.metrics()
        else:
            body = pdp.healthz()
    print(json.dumps(body, indent=2, sort_keys=True))
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    """Scrape the Prometheus text exposition from a running server."""
    from repro.client import RemotePDP

    with RemotePDP(args.host, args.port, timeout=args.timeout) as pdp:
        text = pdp.metrics_text()
    print(text, end="" if text.endswith("\n") else "\n")
    return 0


def cmd_policy_status(args: argparse.Namespace) -> int:
    """Print a running server's policy version/reload snapshot as JSON."""
    from repro.client import RemotePDP

    with RemotePDP(args.host, args.port, timeout=args.timeout) as pdp:
        body = pdp.policy_status()
    print(json.dumps(body, indent=2, sort_keys=True))
    return 0


def cmd_policy_reload(args: argparse.Namespace) -> int:
    """Hot-swap a running server's policy set from an XML file."""
    from repro.client import RemotePDP

    with RemotePDP(args.host, args.port, timeout=args.timeout) as pdp:
        report = pdp.reload_policy(
            args.policy,
            verify=args.verify,
            max_flips=args.max_flips,
            force=args.force,
            principal=args.principal,
        )
    if args.verify:
        print("verification gate: passed")
    for finding in report.findings:
        print(f"note: {finding}")
    if report.changed:
        print(f"reloaded: {report.previous} -> {report.version}")
    else:
        print(f"no-op: digest unchanged, still {report.version}")
    return 0


def cmd_policy(args: argparse.Namespace) -> int:
    handlers = {
        "status": cmd_policy_status,
        "reload": cmd_policy_reload,
    }
    return handlers[args.policy_command](args)


def _wait_for_signal() -> None:
    """Block the main thread until SIGINT/SIGTERM."""
    import threading

    stop = threading.Event()

    def handler(signum, frame):  # pragma: no cover - signal timing
        stop.set()

    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            signal.signal(signum, handler)
        except (ValueError, OSError):  # pragma: no cover - non-main thread
            pass
    try:
        stop.wait()
    except KeyboardInterrupt:  # pragma: no cover - direct ^C race
        pass


def cmd_cluster_serve(args: argparse.Namespace) -> int:
    """Boot a full cluster in one process and run until interrupted."""
    from repro.api import open_cluster

    handle = open_cluster(
        args.policy,
        args.data_dir,
        n_shards=args.cluster_shards,
        store=args.store,
        host=args.host,
        port=args.port,
        audit_key=args.audit_key.encode("utf-8"),
        audit_max_records=args.audit_max_records,
        audit_max_bytes=args.audit_max_bytes,
        fsync=not args.no_fsync,
    )
    with handle:
        print(
            f"cluster coordinator on {handle.host}:{handle.port} "
            f"({args.cluster_shards} shards, store={args.store}, "
            f"fsync={'off' if args.no_fsync else 'on'})",
            flush=True,
        )
        for shard in handle.shard_names:
            state = handle.cluster.shard(shard)
            print(
                f"  {shard}: primary {state.primary.name} "
                f"{state.primary.host}:{state.primary.port}, "
                f"standby {state.standby.name} "
                f"{state.standby.host}:{state.standby.port}",
                flush=True,
            )
        _wait_for_signal()
        print("stopping cluster...", flush=True)
    return 0


def cmd_cluster_node(args: argparse.Namespace) -> int:
    """Run one standalone cluster node until interrupted."""
    from repro.cluster import ClusterNode
    from repro.storespec import build_store, parse_store_spec

    policy_set = parse_policy_set_file(args.policy)
    if args.store:
        spec = args.store
    elif args.adi:
        spec = f"sqlite:{args.adi}"
    else:
        spec = "memory"
    store, _ = build_store(parse_store_spec(spec))
    node = ClusterNode(
        args.name,
        args.shard,
        policy_set,
        store,
        args.audit_dir,
        args.audit_key.encode("utf-8"),
        role=args.role,
        epoch=args.epoch,
        host=args.host,
        port=args.port,
        audit_max_records=args.audit_max_records,
        audit_max_bytes=args.audit_max_bytes,
        fsync=not args.no_fsync,
    )
    node.start()
    try:
        print(
            f"node {node.name} serving shard {node.shard} on "
            f"{node.host}:{node.port} role={node.role} epoch={node.epoch}",
            flush=True,
        )
        _wait_for_signal()
        print("stopping node...", flush=True)
    finally:
        node.stop()
    return 0


def _cluster_client(args: argparse.Namespace):
    from repro.cluster import ClusterPDP

    return ClusterPDP(
        (args.host, args.port),
        timeout=args.timeout,
        protocol=getattr(args, "protocol", "auto"),
    )


def cmd_cluster_status(args: argparse.Namespace) -> int:
    with _cluster_client(args) as pdp:
        print(json.dumps(pdp.cluster_status(), indent=2, sort_keys=True))
    return 0


def cmd_cluster_route(args: argparse.Namespace) -> int:
    with _cluster_client(args) as pdp:
        print(json.dumps(pdp.route(), indent=2, sort_keys=True))
    return 0


def cmd_cluster_metrics(args: argparse.Namespace) -> int:
    with _cluster_client(args) as pdp:
        text = pdp.cluster_metrics_text()
    print(text, end="" if text.endswith("\n") else "\n")
    return 0


def cmd_cluster_reload(args: argparse.Namespace) -> int:
    """Roll a new policy XML across every cluster node via the coordinator."""
    with _cluster_client(args) as pdp:
        body = pdp.reload_policy(
            args.policy,
            verify=args.verify,
            max_flips=args.max_flips,
            force=args.force,
            canary=args.canary,
            principal=args.principal,
        )
    print(json.dumps(body, indent=2, sort_keys=True))
    return 0


def cmd_cluster_decide(args: argparse.Namespace) -> int:
    """One decision through the routing, failover-surviving client."""
    import uuid

    with _cluster_client(args) as pdp:
        decision = pdp.decide(
            DecisionRequest(
                user_id=args.user,
                roles=tuple(args.role),
                operation=args.operation,
                target=args.target,
                context_instance=ContextName.parse(args.context),
                timestamp=time.time(),
                # The cluster journal dedupes by request_id across *all*
                # clients, so a process-local counter id would collide
                # with other CLI invocations.
                request_id=f"cli-{uuid.uuid4().hex}",
            )
        )
    print(decision)
    return 0 if decision.granted else 2


def cmd_cluster_resize(args: argparse.Namespace) -> int:
    """Online topology changes through the coordinator's reshard verbs."""
    from repro.server import protocol as _protocol

    with _cluster_client(args) as pdp:
        if args.resize_command == "status":
            body = pdp.reshard_status()
        elif args.resize_command == "add-node":
            body = pdp.resize(_protocol.RESHARD_ACTION_ADD)
        elif args.resize_command == "drain":
            body = pdp.resize(_protocol.RESHARD_ACTION_DRAIN, shard=args.shard)
        else:  # rebalance
            body = pdp.resize(
                _protocol.RESHARD_ACTION_REBALANCE, apply=args.apply
            )
            body["threshold"] = args.threshold
        if getattr(args, "wait", False) and body.get("active"):
            deadline = time.monotonic() + args.wait_timeout
            while body.get("active"):
                if time.monotonic() >= deadline:
                    print(json.dumps(body, indent=2, sort_keys=True))
                    print(
                        f"migration still active after {args.wait_timeout}s",
                        file=sys.stderr,
                    )
                    return 1
                time.sleep(0.2)
                body = pdp.reshard_status()
    print(json.dumps(body, indent=2, sort_keys=True))
    return 0


def _cluster_smoke_resize(args: argparse.Namespace) -> int:
    """The elastic-resize fault-injection smoke (``cluster smoke --resize``).

    Boots a 2-shard cluster under continuous multi-threaded live load,
    then runs a full resize cycle with the worst faults injected
    mid-migration:

    * **2→3 split** — add a shard; *while the migration is in flight*
      kill the coordinator, then (with the coordinator still down) kill
      a source shard's primary; restart the coordinator from its
      persisted state file and let it finish the migration it resumed
      (promoting the dead primary's standby adds a trail lineage the
      import must also walk).
    * **3→2 drain** — retire the shard just added; kill the subject
      shard's primary the moment the drain starts, so the migration
      finishes from the promoted standby plus the dead primary's
      sealed trail.

    Afterwards asserts: every live decision matches a per-shard
    single-node oracle bit for bit (no lost, double-applied or
    mis-routed decisions), each surviving shard's retained ADI digest
    equals its oracle's (which also rules out lost or double-applied
    decisions — an extra or missing record breaks the digest), the
    MMER exclusivity invariant holds across the merged stores, both
    migrations completed, both kills actually failed over, and the
    reshard metric families scrape.
    """
    import tempfile
    import threading

    from repro.api import open_cluster
    from repro.core import InMemoryRetainedADIStore
    from repro.workload import AUDIT_BOOKS, AUDITOR, HANDLE_CASH, TELLER
    from repro.workload import bank_policy_set

    policy_set = bank_policy_set()
    target_requests = max(args.requests, 120)
    n_workers = 4
    report: dict = {
        "mode": "resize",
        "target_requests": target_requests,
        "store": args.store,
    }
    failures: list[str] = []
    worker_errors: list[str] = []
    stop = threading.Event()
    # Per-worker ordered decision logs.  Every worker owns a disjoint
    # user set and every request's *effective policy context* is
    # private to its user (the user is embedded in the Period value,
    # the component the policy binds), so per-user issue order — which
    # each worker preserves by waiting for each decide — is the only
    # order the oracle replay below depends on.
    logs: list[list] = [[] for _ in range(n_workers)]

    def worker(index: int, pdp) -> None:
        users = [f"resize-user-{index}-{i}" for i in range(8)]
        serial = 0
        while not stop.is_set():
            serial += 1
            user = users[serial % len(users)]
            # The bank policy's context is "Branch=*, Period=!" — only
            # the '!' component binds to the instance, so the *user
            # must be in the Period value* for the effective policy
            # context to be private to the user.  A shared period
            # (Period=S1 for everyone) would make the engine's
            # "context started" check cross-user, and the retained-ADI
            # copy count would then depend on which user a given
            # engine served first — unreproducible by any per-user
            # oracle replay.
            fresh = ContextName.parse(
                f"Branch={user}, Period={user}-S{serial}"
            )
            probes = [
                DecisionRequest(
                    user_id=user,
                    roles=(TELLER,),
                    operation=HANDLE_CASH.operation,
                    target=HANDLE_CASH.target,
                    context_instance=fresh,
                    timestamp=float(index * 1_000_000 + serial),
                )
            ]
            if serial % 5 == 0:
                # Re-enter a context this user already exercised as
                # Teller, as Auditor: the bank MMER must deny it, on
                # whichever node owns the user at that moment.
                probes.append(
                    DecisionRequest(
                        user_id=user,
                        roles=(AUDITOR,),
                        operation=AUDIT_BOOKS.operation,
                        target=AUDIT_BOOKS.target,
                        context_instance=fresh,
                        timestamp=float(index * 1_000_000 + serial) + 0.5,
                    )
                )
            for request in probes:
                try:
                    effect = pdp.decide(request).effect
                except Exception as exc:
                    worker_errors.append(
                        f"worker {index}: {type(exc).__name__}: {exc}"
                    )
                    return
                logs[index].append((request, effect))

    def total_decisions() -> int:
        return sum(len(log) for log in logs)

    def await_decisions(count: int, timeout: float = 120.0) -> None:
        deadline = time.monotonic() + timeout
        while total_decisions() < count and not worker_errors:
            if time.monotonic() >= deadline:
                failures.append(
                    f"live load stalled at {total_decisions()} decisions "
                    f"(wanted {count})"
                )
                return
            time.sleep(0.02)

    with tempfile.TemporaryDirectory() as data_dir:
        with open_cluster(
            policy_set, data_dir, n_shards=2, store=args.store
        ) as handle:
            cluster = handle.cluster
            with handle.client(failover_wait=60.0) as pdp:
                threads = [
                    threading.Thread(target=worker, args=(i, pdp), daemon=True)
                    for i in range(n_workers)
                ]
                for thread in threads:
                    thread.start()
                try:
                    await_decisions(target_requests // 6)

                    # ---- 2→3 split with coordinator + primary kills.
                    added = handle.add_shard()
                    report["added_shard"] = added
                    pre_crash = handle.reshard_status()
                    report["split_active_at_crash"] = pre_crash["active"]
                    handle.crash_coordinator()
                    # Coordinator is down: migration frozen mid-phase,
                    # nodes still serving.  Kill a source primary NOW —
                    # nobody can promote the standby until the
                    # coordinator is back, so the death is guaranteed
                    # to land mid-migration.
                    source = (
                        pre_crash["migration"]["old_shards"][0]
                        if pre_crash.get("migration")
                        else cluster.shard_names[0]
                    )
                    report["split_killed"] = handle.kill_primary(source)
                    time.sleep(0.3)
                    handle.restart_coordinator()
                    report["split"] = handle.wait_reshard(timeout=120.0)[
                        "last_migration"
                    ]
                    if added not in cluster.shard_names:
                        failures.append("split did not add the new shard")

                    await_decisions(2 * target_requests // 3)
                    report["rebalance"] = handle.rebalance()

                    # ---- 3→2 drain, killing the subject's primary the
                    # moment the migration starts (before its first
                    # catch-up tick races us): the drain must finish
                    # from the promoted standby plus the dead primary's
                    # sealed trail lineage.
                    handle.drain_shard(added)
                    report["drain_killed"] = handle.kill_primary(added)
                    report["drain"] = handle.wait_reshard(timeout=120.0)[
                        "last_migration"
                    ]
                    if added in cluster.shard_names:
                        failures.append("drain did not retire the shard")

                    await_decisions(target_requests)
                finally:
                    stop.set()
                    for thread in threads:
                        thread.join(timeout=60.0)

                status = pdp.cluster_status()
                reshard = pdp.reshard_status()
                metrics_text = pdp.cluster_metrics_text()

            report["requests"] = total_decisions()
            report["serving_shards"] = reshard["serving_shards"]
            report["users_moved"] = reshard["users_moved_total"]
            report["migrations"] = reshard["migrations_total"]
            if worker_errors:
                failures.append("worker error: " + worker_errors[0])
            for kind in ("split", "drain"):
                done = report.get(kind) or {}
                if done.get("phase") != "done":
                    failures.append(f"{kind} migration did not complete")
            if reshard["active"]:
                failures.append("a migration is still marked active")
            if sorted(reshard["serving_shards"]) != ["shard-0", "shard-1"]:
                failures.append(
                    "cluster did not return to the 2-shard topology"
                )
            failovers = sum(
                shard["failovers"] for shard in status["shards"].values()
            )
            report["failovers"] = failovers
            if failovers < 1:
                failures.append("the killed source primary never failed over")
            for name, shard in status["shards"].items():
                if "resident_users" not in shard or "stats" not in shard:
                    failures.append(
                        f"{name} status lacks resident_users/stats gauges"
                    )
            for family in (
                "repro_reshard_migrations_total",
                "repro_reshard_users_moved_total",
                "repro_reshard_cutover_pause_seconds",
                "repro_cluster_shard_resident_users",
            ):
                if family not in metrics_text:
                    failures.append(f"metrics family {family} missing")

            # ---- the oracle: replay every user's stream, in issue
            # order, into one fresh single-node engine per *final*
            # shard.  Every context is private to its user, so this is
            # exactly the history a never-resharded cluster would hold.
            oracles = {
                name: MSoDEngine(policy_set, InMemoryRetainedADIStore())
                for name in cluster.shard_names
            }
            effects = []
            oracle_effects = []
            for log in logs:
                for request, effect in log:
                    shard_name = cluster.ring.shard_for(request.user_id)
                    effects.append(effect)
                    oracle_effects.append(
                        oracles[shard_name].check(request).effect
                    )
            report["grants"] = effects.count("grant")
            report["denies"] = effects.count("deny")
            if report["denies"] < 1:
                failures.append("workload exercised no MMER denial")
            if effects != oracle_effects:
                mismatches = sum(
                    1
                    for ours, theirs in zip(effects, oracle_effects)
                    if ours != theirs
                )
                failures.append(
                    f"{mismatches} decision(s) diverged from the oracle"
                )

            def digest(records):
                return sorted(
                    (
                        record.user_id,
                        tuple(
                            sorted(
                                (role.role_type, role.value)
                                for role in record.roles
                            )
                        ),
                        record.operation,
                        record.target,
                        str(record.context_instance),
                        record.granted_at,
                        record.request_id,
                    )
                    for record in records
                )

            merged = []
            for shard_name in cluster.shard_names:
                shard_records = list(
                    cluster.shard(shard_name).primary.store.records()
                )
                merged.extend(shard_records)
                if digest(shard_records) != digest(
                    oracles[shard_name].store.records()
                ):
                    failures.append(
                        f"{shard_name} retained ADI differs from its "
                        "single-node oracle after the resize cycle"
                    )
            exclusive = 0
            seen: dict = {}
            for record in merged:
                key = (record.user_id, str(record.context_instance))
                roles = seen.setdefault(key, set())
                roles.update(record.roles)
                if TELLER in roles and AUDITOR in roles:
                    exclusive += 1
            report["exclusivity_violations"] = exclusive
            if exclusive:
                failures.append(
                    f"{exclusive} MMER exclusivity violation(s) in the "
                    "retained ADI"
                )
    report["ok"] = not failures
    report["failures"] = failures
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        for key in sorted(report):
            print(f"{key}: {report[key]}")
    return 0 if not failures else 1


def cmd_cluster_smoke(args: argparse.Namespace) -> int:
    """The CI cluster smoke: workload + mid-stream reload + primary kill.

    Boots an N-shard cluster, streams a hot-user + distinct-user
    workload through the routing client, hot-reloads an extended policy
    set a quarter of the way in, kills the hot user's shard primary
    halfway, then canary-rolls a further (decision-disjoint) policy set
    through a healthy shard's standby while a background workload keeps
    that shard's primary deciding, and asserts: the standby is
    promoted, the canary mirror compares live decisions with zero
    flips, every decision matches a single-node oracle bit for bit,
    each shard's retained ADI equals the oracle engine fed that shard's
    substream, the MMER exclusivity invariant holds, every node runs
    the final (canary-rolled) policy epoch, every audited decision
    carries its policy epoch, and the per-node gauges scrape.

    With ``--resize`` runs :func:`_cluster_smoke_resize` instead — the
    elastic split/drain cycle with coordinator and source-primary kills
    injected mid-migration.
    """
    if args.resize:
        return _cluster_smoke_resize(args)
    import itertools
    import tempfile
    import threading

    from repro.api import open_cluster
    from repro.audit import EVENT_DECISION, AuditTrailManager
    from repro.core import InMemoryRetainedADIStore
    from repro.core.constraints import MMCD, MMER, Privilege
    from repro.core.policy import MSoDPolicy, MSoDPolicySet
    from repro.workload import (
        AUDITOR,
        HANDLE_CASH,
        TELLER,
        bank_policy_set,
        decision_request_stream,
        hot_user_stream,
    )

    # The boot set carries a combination-of-duty policy over a context
    # no bank workload request touches (Filing/Case): the duty binding
    # established before the primary kill must still deny a second user
    # after failover — proving MMCD owner state survives promotion.
    duty_review = Privilege("review", "filing")
    duty_signoff = Privilege("signoff", "filing")
    policy_set = MSoDPolicySet(
        list(bank_policy_set())
        + [
            MSoDPolicy(
                ContextName.parse("Filing=*, Case=!"),
                constraints=[MMCD([duty_review, duty_signoff])],
                policy_id="filing-duty-binding",
            )
        ]
    )
    # The mid-stream reload target: the bank policy plus one extra
    # policy over a *disjoint* context (Region/Quarter, never touched
    # by the bank workload), so the reload changes the digest and
    # epoch everywhere without changing any decision — which keeps the
    # per-shard single-node oracles below valid as-is.
    extended_set = MSoDPolicySet(
        list(policy_set)
        + [
            MSoDPolicy(
                ContextName.parse("Region=*, Quarter=!"),
                mmers=[MMER([TELLER, AUDITOR], 2)],
                policy_id="regional",
            )
        ]
    )
    quarter = args.requests // 4
    half = args.requests // 2
    requests = list(
        itertools.chain(
            hot_user_stream(args.requests // 2, user_id="hot-user"),
            decision_request_stream(
                args.requests - args.requests // 2, n_users=40
            ),
        )
    )
    report: dict = {
        "requests": len(requests),
        "shards": args.cluster_shards,
        "store": args.store,
    }
    failures: list[str] = []
    with tempfile.TemporaryDirectory() as data_dir:
        with open_cluster(
            policy_set,
            data_dir,
            n_shards=args.cluster_shards,
            store=args.store,
        ) as handle:
            cluster = handle.cluster
            hot_shard = cluster.ring.shard_for("hot-user")
            report["hot_shard"] = hot_shard
            # Two distinct users on the shard that will lose its
            # primary: the first binds the duty set pre-kill, the
            # second must still be denied post-failover.
            duty_users = [
                f"duty-user-{index}"
                for index in range(10_000)
                if cluster.ring.shard_for(f"duty-user-{index}") == hot_shard
            ][:2]
            duty_owner, duty_intruder = duty_users
            duty_context = ContextName.parse("Filing=Annual, Case=2026")

            def duty_request(user_id, privilege, stamp):
                return DecisionRequest(
                    user_id=user_id,
                    roles=(AUDITOR,),
                    operation=privilege.operation,
                    target=privilege.target,
                    context_instance=duty_context,
                    timestamp=stamp,
                )

            with handle.client(failover_wait=30.0) as pdp:
                effects = []
                # Phase 1 (pre-kill): the owner performs the first
                # bound step and becomes the set's owner for this Case.
                bind = duty_request(duty_owner, duty_review, 1.0)
                requests.insert(0, bind)
                effects.append(pdp.decide(bind).effect)
                for index, request in enumerate(requests[1:]):
                    if index == quarter:
                        reload_body = pdp.reload_policy(extended_set)
                        report["policy_reload_changed"] = reload_body[
                            "changed"
                        ]
                    if index == half:
                        report["killed"] = handle.kill_primary(hot_shard)
                    effects.append(pdp.decide(request).effect)
                # Phase 2 (post-failover): the binding must have
                # survived promotion — a different user is denied the
                # remaining bound step, the owner completes it.
                duty_phase2 = [
                    duty_request(duty_intruder, duty_signoff, 2.0),
                    duty_request(duty_owner, duty_signoff, 3.0),
                ]
                for request in duty_phase2:
                    requests.append(request)
                    effects.append(pdp.decide(request).effect)
                report["mmcd"] = {
                    "owner_bind": effects[0],
                    "intruder_post_failover": effects[-2],
                    "owner_completion": effects[-1],
                }
                if effects[0] != "grant":
                    failures.append("MMCD owner's first bound step denied")
                if effects[-2] != "deny":
                    failures.append(
                        "MMCD binding lost across failover: intruder's "
                        "bound step was granted"
                    )
                if effects[-1] != "grant":
                    failures.append(
                        "MMCD owner denied the remaining bound step"
                    )

                # Canary rollout under live load: stage a third policy
                # set — again decision-disjoint (Desk/Cycle, untouched
                # by any workload), so the oracles stay valid — on a
                # healthy shard's standby while a background thread
                # keeps that shard's primary deciding.  The mirror must
                # observe live decisions and report zero flips before
                # the coordinator-wide rollout (epoch 3 everywhere).
                canary_set = MSoDPolicySet(
                    list(extended_set)
                    + [
                        MSoDPolicy(
                            ContextName.parse("Desk=*, Cycle=!"),
                            mmers=[MMER([TELLER, AUDITOR], 2)],
                            policy_id="desk",
                        )
                    ]
                )
                canary_shard = next(
                    (
                        name
                        for name in handle.shard_names
                        if name != hot_shard
                    ),
                    hot_shard,
                )
                canary_user = next(
                    f"canary-user-{index}"
                    for index in range(10_000)
                    if cluster.ring.shard_for(f"canary-user-{index}")
                    == canary_shard
                )
                canary_requests: list = []
                canary_effects: list = []
                canary_errors: list = []
                canary_stop = threading.Event()

                def canary_load() -> None:
                    serial = 0
                    while not canary_stop.is_set():
                        serial += 1
                        request = DecisionRequest(
                            user_id=canary_user,
                            roles=(TELLER,),
                            operation=HANDLE_CASH.operation,
                            target=HANDLE_CASH.target,
                            context_instance=ContextName.parse(
                                f"Branch=Canary, Period=C{serial}"
                            ),
                            timestamp=float(10_000 + serial),
                        )
                        try:
                            effect = pdp.decide(request).effect
                        except Exception as exc:  # pragma: no cover
                            canary_errors.append(str(exc))
                            return
                        canary_requests.append(request)
                        canary_effects.append(effect)

                loader = threading.Thread(target=canary_load, daemon=True)
                loader.start()
                try:
                    canary_body = handle.canary_reload_policy(
                        canary_set,
                        shard_name=canary_shard,
                        max_flips=0,
                        min_decisions=5,
                        timeout=30.0,
                    )
                finally:
                    canary_stop.set()
                    loader.join(timeout=30.0)
                requests.extend(canary_requests)
                effects.extend(canary_effects)
                report["requests"] = len(requests)
                mirror = canary_body["canary"].get("mirror", {})
                report["canary"] = {
                    "shard": canary_shard,
                    "live_decisions": mirror.get("live_decisions", 0),
                    "flips": mirror.get("flip_count", 0),
                    "replayed": mirror.get("replay", {}).get(
                        "decisions_replayed", 0
                    ),
                }
                if canary_errors:
                    failures.append(
                        f"canary workload error: {canary_errors[0]}"
                    )
                if not canary_body.get("changed"):
                    failures.append("canary rollout did not apply")
                if mirror.get("flip_count", 0):
                    failures.append(
                        "canary mirror reported decision flips"
                    )
                if mirror.get("live_decisions", 0) < 1:
                    failures.append(
                        "canary mirror observed no live decisions"
                    )

                status = pdp.cluster_status()
                metrics_text = pdp.cluster_metrics_text()
                node_metrics = pdp.node_metrics_text("hot-user")
            report["failovers"] = status["shards"][hot_shard]["failovers"]
            report["epoch"] = status["shards"][hot_shard]["epoch"]
            if report["failovers"] < 1:
                failures.append("no failover happened")
            if not report.get("policy_reload_changed"):
                failures.append("mid-stream policy reload did not apply")
            # Epoch 1 boot + mid-stream reload (2) + canary rollout
            # (3).  The killed primary died between reload and canary,
            # so only live nodes must be on the final epoch.
            stale = [
                node["name"]
                for shard in status["shards"].values()
                for node in shard["nodes"]
                if node["up"] and node["policy_epoch"] != 3
            ]
            if stale:
                failures.append(
                    "node(s) not on the reloaded policy epoch: "
                    + ", ".join(sorted(stale))
                )
            for family in (
                "repro_cluster_node_up",
                "repro_cluster_node_primary",
                "repro_cluster_node_epoch",
                "repro_cluster_failovers_total",
                "repro_policy_epoch",
                "repro_policy_reloads_total",
            ):
                if family not in metrics_text:
                    failures.append(f"metrics family {family} missing")
            if "repro_shard_queue_depth" not in node_metrics:
                failures.append("per-node shard gauges missing")

            # Every audited decision event must say which policy epoch
            # produced it — that is what makes recovery and standby
            # replay policy-aware across the reload.
            unstamped = 0
            audited = 0
            for shard_name in handle.shard_names:
                state = cluster.shard(shard_name)
                for node in (state.primary, state.standby):
                    events = AuditTrailManager(
                        node.trail_dir,
                        b"cluster-trail-key",
                        tolerate_ahead=True,
                    ).events()
                    for event in events:
                        if event.event_type != EVENT_DECISION:
                            continue
                        audited += 1
                        if "policy_epoch" not in (event.payload or {}):
                            unstamped += 1
            report["audited_decisions"] = audited
            if unstamped:
                failures.append(
                    f"{unstamped} audited decision(s) missing policy_epoch"
                )

            # Per-shard single-node oracles: one fresh engine per shard,
            # fed exactly the substream the ring sends that shard.  (A
            # single global engine is *not* the right oracle — step 4's
            # context-started check spans users, so the record set for a
            # shared context depends on which other-shard users touched
            # it first.  Per-user routing promises per-shard equivalence,
            # and that is what we assert.)
            oracles = {
                shard_name: MSoDEngine(policy_set, InMemoryRetainedADIStore())
                for shard_name in handle.shard_names
            }
            oracle_effects = [
                oracles[cluster.ring.shard_for(request.user_id)]
                .check(request)
                .effect
                for request in requests
            ]
            report["grants"] = effects.count("grant")
            report["denies"] = effects.count("deny")
            if effects != oracle_effects:
                mismatches = sum(
                    1
                    for ours, theirs in zip(effects, oracle_effects)
                    if ours != theirs
                )
                failures.append(
                    f"{mismatches} decision(s) diverged from the oracle"
                )

            def digest(records):
                return sorted(
                    (
                        record.user_id,
                        tuple(
                            sorted(
                                (role.role_type, role.value)
                                for role in record.roles
                            )
                        ),
                        record.operation,
                        record.target,
                        str(record.context_instance),
                        record.granted_at,
                        record.request_id,
                    )
                    for record in records
                )

            merged = []
            for shard_name in handle.shard_names:
                shard_records = list(
                    cluster.shard(shard_name).primary.store.records()
                )
                merged.extend(shard_records)
                if digest(shard_records) != digest(
                    oracles[shard_name].store.records()
                ):
                    failures.append(
                        f"{shard_name} retained ADI differs from its "
                        "single-node oracle"
                    )

            exclusive = 0
            seen: dict = {}
            for record in merged:
                key = (record.user_id, str(record.context_instance))
                roles = seen.setdefault(key, set())
                roles.update(record.roles)
                if TELLER in roles and AUDITOR in roles:
                    exclusive += 1
            report["exclusivity_violations"] = exclusive
            if exclusive:
                failures.append(
                    f"{exclusive} MMER exclusivity violation(s) in the "
                    "retained ADI"
                )
    report["ok"] = not failures
    report["failures"] = failures
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        for key in sorted(report):
            print(f"{key}: {report[key]}")
    return 0 if not failures else 1


def cmd_cluster(args: argparse.Namespace) -> int:
    handlers = {
        "serve": cmd_cluster_serve,
        "node": cmd_cluster_node,
        "status": cmd_cluster_status,
        "route": cmd_cluster_route,
        "metrics": cmd_cluster_metrics,
        "reload": cmd_cluster_reload,
        "resize": cmd_cluster_resize,
        "decide": cmd_cluster_decide,
        "smoke": cmd_cluster_smoke,
    }
    return handlers[args.cluster_command](args)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "validate": cmd_validate,
        "show": cmd_show,
        "compile": cmd_compile,
        "decompile": cmd_decompile,
        "lint": cmd_lint,
        "verify": cmd_verify,
        "whatif": cmd_whatif,
        "decide": cmd_decide,
        "explain": cmd_explain,
        "history": cmd_history,
        "purge": cmd_purge,
        "serve": cmd_serve,
        "remote-decide": cmd_remote_decide,
        "remote-status": cmd_remote_status,
        "metrics": cmd_metrics,
        "policy": cmd_policy,
        "cluster": cmd_cluster,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

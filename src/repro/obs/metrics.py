"""Prometheus text-format exposition for the decision pipeline.

The :class:`MetricsRegistry` turns the in-process measurement substrate
— :class:`~repro.perf.PerfRecorder` counters and per-stage latency
histograms, plus any caller-registered gauge/counter collectors — into
the Prometheus text exposition format (version 0.0.4), ready to be
served by the server's ``metrics`` verb or printed by
``python -m repro metrics``.

Mapping rules:

* a perf counter ``engine.requests`` becomes
  ``repro_engine_requests_total`` (a ``counter``);
* every perf stage becomes one series of the single histogram family
  ``repro_stage_duration_seconds`` with a ``stage`` label, cumulative
  ``_bucket{le=...}`` counts derived from
  :data:`~repro.perf.LATENCY_BUCKET_BOUNDS`, plus ``_sum``/``_count``;
* every perf *size* histogram (``perf.observe_size``, e.g. the wire
  batch-size distribution ``wire.batch_size``) becomes its own
  dimensionless histogram family (``repro_wire_batch_size``) with
  buckets from the stats' own bounds;
* registered collectors (e.g. the server's per-shard queue gauges)
  render under their declared type with their own labels.

Several recorders may be registered (an engine's and a service's);
their counters are summed and their stage stats merged per name, so
the exposition never emits duplicate series.

:func:`parse_exposition` is the matching validator: the test suite and
the CI scrape job run every rendered payload through it, so a format
regression fails fast rather than breaking a real scraper.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Iterable, Mapping

from repro.perf import LATENCY_BUCKET_BOUNDS, PerfRecorder, StageStats

__all__ = [
    "MetricsRegistry",
    "parse_exposition",
    "render_service_metrics",
]

_NAME_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")
_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)$"
)
_LABEL_PAIR = re.compile(
    r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"$'
)
_VALUE = re.compile(r"^(?:[+-]?(?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?|[+-]?Inf|NaN)$")


def _sanitize(name: str) -> str:
    return _NAME_SANITIZE.sub("_", name)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _format_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label(str(value))}"'
        for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


class _Collector:
    __slots__ = ("name", "metric_type", "help", "collect")

    def __init__(self, name, metric_type, help_text, collect) -> None:
        self.name = name
        self.metric_type = metric_type
        self.help = help_text
        self.collect = collect


class MetricsRegistry:
    """Renders perf recorders and custom collectors as Prometheus text.

    Parameters
    ----------
    namespace:
        Prefix for every emitted metric name (default ``repro``).
    """

    def __init__(self, namespace: str = "repro") -> None:
        if not _METRIC_NAME.match(namespace):
            raise ValueError(f"invalid metrics namespace {namespace!r}")
        self._namespace = namespace
        self._recorders: list[PerfRecorder] = []
        self._collectors: list[_Collector] = []

    @property
    def namespace(self) -> str:
        return self._namespace

    # -- registration --------------------------------------------------
    def register_perf(self, perf: PerfRecorder) -> None:
        """Expose a recorder's counters and stage histograms.

        Registering the same recorder twice is a no-op; distinct
        recorders with overlapping names are merged (counters summed,
        stage stats combined).
        """
        if any(existing is perf for existing in self._recorders):
            return
        self._recorders.append(perf)

    def register(
        self,
        name: str,
        metric_type: str,
        help_text: str,
        collect: Callable[[], "Iterable[tuple[Mapping[str, str], float]] | float"],
    ) -> None:
        """Register a custom metric family.

        ``collect`` is called at render time and returns either a bare
        number (an unlabelled sample) or an iterable of
        ``(labels, value)`` pairs.
        """
        if metric_type not in ("gauge", "counter"):
            raise ValueError(f"unsupported metric type {metric_type!r}")
        full_name = f"{self._namespace}_{_sanitize(name)}"
        if not _METRIC_NAME.match(full_name):
            raise ValueError(f"invalid metric name {full_name!r}")
        if any(c.name == full_name for c in self._collectors):
            raise ValueError(f"metric {full_name!r} already registered")
        self._collectors.append(
            _Collector(full_name, metric_type, help_text, collect)
        )

    def register_gauge(self, name: str, help_text: str, collect) -> None:
        """Shorthand for :meth:`register` with type ``gauge``."""
        self.register(name, "gauge", help_text, collect)

    def register_counter(self, name: str, help_text: str, collect) -> None:
        """Shorthand for :meth:`register` with type ``counter``."""
        self.register(name, "counter", help_text, collect)

    # -- rendering -----------------------------------------------------
    def _merged_perf(
        self,
    ) -> tuple[dict[str, int], dict[str, StageStats], dict[str, StageStats]]:
        counters: dict[str, int] = {}
        stages: dict[str, StageStats] = {}
        sizes: dict[str, StageStats] = {}
        for perf in self._recorders:
            for name, value in perf.counters().items():
                counters[name] = counters.get(name, 0) + value
            for name, stats in perf.stages().items():
                merged = stages.get(name)
                if merged is None:
                    merged = stages[name] = StageStats()
                merged.merge(stats)
            for name, stats in perf.sizes().items():
                merged = sizes.get(name)
                if merged is None:
                    merged = sizes[name] = StageStats(bounds=stats.bounds)
                merged.merge(stats)
        return counters, stages, sizes

    def render(self) -> str:
        """The full exposition payload (ends with a newline)."""
        ns = self._namespace
        lines: list[str] = []
        counters, stages, sizes = self._merged_perf()

        for name in sorted(counters):
            metric = f"{ns}_{_sanitize(name)}_total"
            lines.append(f"# HELP {metric} Pipeline counter {name!r}.")
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {_format_value(counters[name])}")

        if stages:
            family = f"{ns}_stage_duration_seconds"
            lines.append(
                f"# HELP {family} Wall-clock duration of pipeline stages."
            )
            lines.append(f"# TYPE {family} histogram")
            for name in sorted(stages):
                stats = stages[name]
                label = f'stage="{_escape_label(name)}"'
                cumulative = 0
                for index, bound in enumerate(LATENCY_BUCKET_BOUNDS):
                    cumulative += stats.buckets[index]
                    lines.append(
                        f'{family}_bucket{{{label},le="{format(bound, "g")}"}} '
                        f"{cumulative}"
                    )
                lines.append(
                    f'{family}_bucket{{{label},le="+Inf"}} {stats.count}'
                )
                lines.append(f"{family}_sum{{{label}}} {repr(stats.total)}")
                lines.append(f"{family}_count{{{label}}} {stats.count}")

        for name in sorted(sizes):
            stats = sizes[name]
            family = f"{ns}_{_sanitize(name)}"
            lines.append(
                f"# HELP {family} Size distribution {name!r} (dimensionless)."
            )
            lines.append(f"# TYPE {family} histogram")
            cumulative = 0
            for index, bound in enumerate(stats.bounds):
                cumulative += stats.buckets[index]
                lines.append(
                    f'{family}_bucket{{le="{format(bound, "g")}"}} {cumulative}'
                )
            lines.append(f'{family}_bucket{{le="+Inf"}} {stats.count}')
            lines.append(f"{family}_sum {repr(stats.total)}")
            lines.append(f"{family}_count {stats.count}")

        for collector in self._collectors:
            lines.append(f"# HELP {collector.name} {collector.help}")
            lines.append(f"# TYPE {collector.name} {collector.metric_type}")
            collected = collector.collect()
            if isinstance(collected, (int, float)):
                lines.append(f"{collector.name} {_format_value(collected)}")
            else:
                for labels, value in collected:
                    lines.append(
                        f"{collector.name}{_format_labels(labels)} "
                        f"{_format_value(value)}"
                    )
        return "\n".join(lines) + "\n"


def parse_exposition(text: str) -> list[tuple[str, dict[str, str], float]]:
    """Validate Prometheus text exposition; return its samples.

    Checks every non-comment line against the ``name{labels} value``
    sample grammar and every value against the float grammar.  Raises
    ``ValueError`` naming the first offending line.  The return value
    is a list of ``(metric_name, labels, value)`` triples.
    """
    samples: list[tuple[str, dict[str, str], float]] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 2)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                raise ValueError(f"line {lineno}: malformed comment: {line!r}")
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample: {line!r}")
        raw_value = match.group("value")
        if not _VALUE.match(raw_value):
            raise ValueError(f"line {lineno}: malformed value: {raw_value!r}")
        labels: dict[str, str] = {}
        raw_labels = match.group("labels")
        if raw_labels:
            for pair in _split_label_pairs(raw_labels, lineno):
                pair_match = _LABEL_PAIR.match(pair)
                if pair_match is None:
                    raise ValueError(
                        f"line {lineno}: malformed label pair: {pair!r}"
                    )
                labels[pair_match.group("key")] = pair_match.group("value")
        samples.append((match.group("name"), labels, float(raw_value)))
    return samples


def _split_label_pairs(raw: str, lineno: int) -> list[str]:
    """Split ``a="x",b="y"`` on commas outside quoted label values."""
    pairs: list[str] = []
    current: list[str] = []
    in_quotes = False
    escaped = False
    for char in raw:
        if escaped:
            current.append(char)
            escaped = False
            continue
        if char == "\\":
            current.append(char)
            escaped = True
            continue
        if char == '"':
            in_quotes = not in_quotes
            current.append(char)
            continue
        if char == "," and not in_quotes:
            pairs.append("".join(current))
            current = []
            continue
        current.append(char)
    if in_quotes:
        raise ValueError(f"line {lineno}: unterminated label value")
    if current:
        pairs.append("".join(current))
    return [pair for pair in pairs if pair]


def render_service_metrics(service: Any, namespace: str = "repro") -> str:
    """One-shot exposition for an authorization service (convenience).

    Equivalent to ``service.metrics_registry().render()`` — kept as a
    module function so callers holding only a service need not touch
    the registry API.
    """
    return service.metrics_registry().render()

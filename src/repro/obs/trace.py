"""Per-decision structured traces for the MSoD decision pipeline.

A :class:`DecisionTrace` is the observability twin of a
:class:`~repro.core.decision.Decision`: it records *how* the decision
was reached — the timed pipeline stages it passed through (``pdp.rbac``,
``engine.match``, ``engine.constraints``, ``store.commit``, ...), which
MSoD policies matched, and, on a deny, exactly which policy and
constraint fired.  A denied request can therefore be traced back through
RBAC check → policy match → constraint evaluation → ADI commit without a
debugger.

Tracing follows the same zero-cost-when-off discipline as
:mod:`repro.perf`: call sites guard every clock read behind the
tracer's ``enabled`` flag, and production pipelines run with
:data:`NOOP_TRACER`, whose methods are empty::

    tracer = self._tracer
    tracing = tracer.enabled
    token = tracer.begin(request) if tracing else None
    ...
    if tracing:
        tracer.span("engine.match", started)
    ...
    return tracer.finish(token, decision) if tracing else decision

Traces *nest*: a PDP opens the trace before its RBAC check, the engine
joins the same trace for the MSoD stages, and only the outermost
``finish`` seals it, attaches it to the decision (via
``dataclasses.replace``) and offers it to the slow-decision log.  Like
:class:`~repro.perf.PerfRecorder`, a tracer is single-threaded by
design: attach one per PDP/engine pipeline.

This module is deliberately standalone — it imports nothing from
:mod:`repro.core` — so the wire protocol and the CLI can (de)serialise
traces without import cycles.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Any, Callable, Mapping

__all__ = [
    "TraceSpan",
    "TraceViolation",
    "DecisionTrace",
    "DecisionTracer",
    "NoopDecisionTracer",
    "NOOP_TRACER",
]


@dataclass(frozen=True, slots=True)
class TraceSpan:
    """One timed pipeline stage inside a decision trace.

    ``offset_s`` is the span's start relative to the start of the whole
    trace, so spans render as a waterfall without absolute clocks.
    """

    name: str
    offset_s: float
    duration_s: float

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "offset_s": self.offset_s,
            "duration_s": self.duration_s,
        }

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "TraceSpan":
        name = raw.get("name")
        if not isinstance(name, str):
            raise ValueError("trace span name must be a string")
        return cls(
            name=name,
            offset_s=_number(raw, "offset_s"),
            duration_s=_number(raw, "duration_s"),
        )


@dataclass(frozen=True, slots=True)
class TraceViolation:
    """The deny annotation: which policy and constraint fired."""

    policy_id: str
    constraint_kind: str
    detail: str

    def to_dict(self) -> dict:
        return {
            "policy_id": self.policy_id,
            "constraint_kind": self.constraint_kind,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "TraceViolation":
        for key in ("policy_id", "constraint_kind", "detail"):
            if not isinstance(raw.get(key), str):
                raise ValueError(f"trace violation {key} must be a string")
        return cls(
            policy_id=raw["policy_id"],
            constraint_kind=raw["constraint_kind"],
            detail=raw["detail"],
        )


@dataclass(frozen=True, slots=True)
class DecisionTrace:
    """The sealed, immutable trace of one decision.

    ``requested_at`` is the request's own (application) timestamp;
    span offsets/durations come from the tracer's monotonic clock.
    """

    request_id: str
    user_id: str
    effect: str
    total_s: float
    requested_at: float
    spans: tuple[TraceSpan, ...] = ()
    matched_policy_ids: tuple[str, ...] = ()
    violation: TraceViolation | None = None
    records_added: int = 0
    records_purged: int = 0
    #: Policy epoch the decision was evaluated under (0 = pre-epoch
    #: trace payloads; live engines stamp epochs starting at 1).
    policy_epoch: int = 0

    def span(self, name: str) -> TraceSpan | None:
        """The first span with this name, or None."""
        for span in self.spans:
            if span.name == name:
                return span
        return None

    def stage_durations(self) -> dict[str, float]:
        """Total duration per stage name (a span name may repeat)."""
        durations: dict[str, float] = {}
        for span in self.spans:
            durations[span.name] = durations.get(span.name, 0.0) + span.duration_s
        return durations

    def to_dict(self) -> dict:
        return {
            "request_id": self.request_id,
            "user_id": self.user_id,
            "effect": self.effect,
            "total_s": self.total_s,
            "requested_at": self.requested_at,
            "spans": [span.to_dict() for span in self.spans],
            "matched_policy_ids": list(self.matched_policy_ids),
            "violation": (
                None if self.violation is None else self.violation.to_dict()
            ),
            "records_added": self.records_added,
            "records_purged": self.records_purged,
            "policy_epoch": self.policy_epoch,
        }

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "DecisionTrace":
        """Rebuild a trace; raises ValueError on malformed input."""
        if not isinstance(raw, Mapping):
            raise ValueError("trace must be a mapping")
        for key in ("request_id", "user_id", "effect"):
            if not isinstance(raw.get(key), str):
                raise ValueError(f"trace {key} must be a string")
        spans_raw = raw.get("spans", [])
        matched_raw = raw.get("matched_policy_ids", [])
        if not isinstance(spans_raw, list):
            raise ValueError("trace spans must be a list")
        if not isinstance(matched_raw, list) or not all(
            isinstance(item, str) for item in matched_raw
        ):
            raise ValueError("trace matched_policy_ids must be a string list")
        violation_raw = raw.get("violation")
        records_added = raw.get("records_added", 0)
        records_purged = raw.get("records_purged", 0)
        policy_epoch = raw.get("policy_epoch", 0)
        for key, value in (
            ("records_added", records_added),
            ("records_purged", records_purged),
            ("policy_epoch", policy_epoch),
        ):
            if isinstance(value, bool) or not isinstance(value, int):
                raise ValueError(f"trace {key} must be an integer")
        return cls(
            request_id=raw["request_id"],
            user_id=raw["user_id"],
            effect=raw["effect"],
            total_s=_number(raw, "total_s"),
            requested_at=_number(raw, "requested_at"),
            spans=tuple(TraceSpan.from_dict(item) for item in spans_raw),
            matched_policy_ids=tuple(matched_raw),
            violation=(
                None
                if violation_raw is None
                else TraceViolation.from_dict(violation_raw)
            ),
            records_added=records_added,
            records_purged=records_purged,
            policy_epoch=policy_epoch,
        )

    def render(self) -> str:
        """A human-readable waterfall (the ``decide --trace`` output)."""
        lines = [
            f"trace {self.request_id} {self.effect.upper()} "
            f"user={self.user_id} total={self.total_s * 1e6:.1f}us"
        ]
        if self.matched_policy_ids:
            lines.append(
                "  matched policies: " + ", ".join(self.matched_policy_ids)
            )
        if self.policy_epoch:
            lines.append(f"  policy epoch: {self.policy_epoch}")
        for span in self.spans:
            lines.append(
                f"  {span.name:<20} +{span.offset_s * 1e6:8.1f}us "
                f"{span.duration_s * 1e6:8.1f}us"
            )
        if self.violation is not None:
            lines.append(
                f"  violation: {self.violation.policy_id} "
                f"({self.violation.constraint_kind}) {self.violation.detail}"
            )
        if self.records_added or self.records_purged:
            lines.append(
                f"  adi: +{self.records_added} record(s), "
                f"-{self.records_purged} purged"
            )
        return "\n".join(lines)


def _number(raw: Mapping[str, Any], key: str) -> float:
    value = raw.get(key)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(f"trace {key} must be a number")
    return float(value)


class _OpenTrace:
    """Mutable builder for the trace of one in-flight decision."""

    __slots__ = ("request_id", "user_id", "requested_at", "started", "spans", "depth")

    def __init__(
        self, request_id: str, user_id: str, requested_at: float, started: float
    ) -> None:
        self.request_id = request_id
        self.user_id = user_id
        self.requested_at = requested_at
        self.started = started
        self.spans: list[TraceSpan] = []
        self.depth = 1


class DecisionTracer:
    """Builds one :class:`DecisionTrace` per decision.

    Layers share a tracer: the outermost ``begin`` opens the trace,
    nested ``begin`` calls join it (the engine inside a PDP), and the
    matching outermost ``finish`` seals it, attaches it to the decision
    and feeds the slow-decision log.  Single-threaded by design, exactly
    like :class:`~repro.perf.PerfRecorder` — one tracer per pipeline.
    """

    enabled = True

    def __init__(
        self,
        slow_log: "Any | None" = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self._clock = clock
        self._slow_log = slow_log
        self._current: _OpenTrace | None = None

    @property
    def slow_log(self):
        """The attached :class:`~repro.obs.slowlog.SlowDecisionLog`."""
        return self._slow_log

    # -- building ------------------------------------------------------
    def start(self) -> float:
        """A timestamp token to later pass to :meth:`span`."""
        return self._clock()

    def begin(self, request, backdate: float = 0.0) -> _OpenTrace:
        """Open a new trace, or join the one already in flight.

        ``backdate`` shifts the trace's start that many seconds into
        the past — for pipelines (the PERMIS CVS) that do measurable
        work *before* the request object exists.  Ignored when joining.
        """
        current = self._current
        if current is not None:
            current.depth += 1
            return current
        current = _OpenTrace(
            request_id=request.request_id,
            user_id=request.user_id,
            requested_at=request.timestamp,
            started=self._clock() - backdate,
        )
        self._current = current
        return current

    def span(self, name: str, started: float) -> None:
        """Record one stage: began at ``started``, ends now."""
        current = self._current
        if current is None:  # pragma: no cover - span outside begin/finish
            return
        now = self._clock()
        current.spans.append(
            TraceSpan(
                name=name,
                offset_s=started - current.started,
                duration_s=now - started,
            )
        )

    def finish(self, token: _OpenTrace, decision):
        """Close one layer; the outermost close seals and attaches.

        Returns the decision unchanged for nested layers, and a copy
        with ``trace`` attached for the outermost one.
        """
        token.depth -= 1
        if token.depth > 0:
            return decision
        self._current = None
        violation = decision.violation
        trace = DecisionTrace(
            request_id=token.request_id,
            user_id=token.user_id,
            effect=decision.effect,
            total_s=self._clock() - token.started,
            requested_at=token.requested_at,
            spans=tuple(token.spans),
            matched_policy_ids=tuple(decision.matched_policy_ids),
            violation=(
                None
                if violation is None
                else TraceViolation(
                    policy_id=violation.policy_id,
                    constraint_kind=violation.constraint_kind,
                    detail=violation.detail,
                )
            ),
            records_added=decision.records_added,
            records_purged=decision.records_purged,
            policy_epoch=decision.policy_epoch,
        )
        if self._slow_log is not None:
            self._slow_log.offer(trace)
        return replace(decision, trace=trace)


class NoopDecisionTracer(DecisionTracer):
    """The do-nothing tracer production pipelines run with by default.

    ``enabled`` is False and every method is an empty override, so an
    instrumented call site costs one attribute load and one branch.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def start(self) -> float:
        return 0.0

    def begin(self, request, backdate: float = 0.0) -> None:  # type: ignore[override]
        return None

    def span(self, name: str, started: float) -> None:
        pass

    def finish(self, token, decision):
        return decision


#: Shared no-op instance; safe to use from any thread (it has no state).
NOOP_TRACER = NoopDecisionTracer()

"""A bounded log of the slowest decision traces.

Production question number one when a latency SLO is violated: *which
requests were slow, and where did the time go?*  The slow-decision log
answers it without storing every trace: a fixed-capacity min-heap keeps
the ``capacity`` slowest :class:`~repro.obs.trace.DecisionTrace` objects
seen so far, evicting the quickest of the retained set when a slower
one arrives.

The log is thread-safe (one lock around offer/snapshot) because the
server queries it from its control verbs while shard workers feed it,
and the in-process CLI may read it from another thread.
"""

from __future__ import annotations

import heapq
import itertools
import threading

from repro.obs.trace import DecisionTrace

__all__ = ["SlowDecisionLog"]


class SlowDecisionLog:
    """Retains the N slowest decision traces seen so far."""

    def __init__(self, capacity: int = 32) -> None:
        if capacity < 1:
            raise ValueError("slow log capacity must be >= 1")
        self._capacity = capacity
        # Min-heap of (total_s, tiebreak, trace): the root is always the
        # *fastest* retained trace, i.e. the next eviction candidate.
        self._heap: list[tuple[float, int, DecisionTrace]] = []
        self._tiebreak = itertools.count()
        self._offered = 0
        self._lock = threading.Lock()

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def offered(self) -> int:
        """How many traces have been offered over the log's lifetime."""
        return self._offered

    def __len__(self) -> int:
        return len(self._heap)

    def threshold(self) -> float:
        """The minimum total duration currently retained (0.0 if not full)."""
        with self._lock:
            if len(self._heap) < self._capacity:
                return 0.0
            return self._heap[0][0]

    def offer(self, trace: DecisionTrace) -> bool:
        """Consider one trace; returns True when it was retained."""
        with self._lock:
            self._offered += 1
            entry = (trace.total_s, next(self._tiebreak), trace)
            if len(self._heap) < self._capacity:
                heapq.heappush(self._heap, entry)
                return True
            if trace.total_s <= self._heap[0][0]:
                return False
            heapq.heapreplace(self._heap, entry)
            return True

    def snapshot(self) -> list[DecisionTrace]:
        """The retained traces, slowest first."""
        with self._lock:
            entries = list(self._heap)
        entries.sort(key=lambda entry: (-entry[0], entry[1]))
        return [trace for _, _, trace in entries]

    def clear(self) -> None:
        with self._lock:
            self._heap.clear()

    def to_dict(self) -> dict:
        """The ``slowlog`` wire body."""
        return {
            "capacity": self._capacity,
            "offered": self._offered,
            "traces": [trace.to_dict() for trace in self.snapshot()],
        }

"""repro.obs — the decision observability layer.

Three pieces, all following the zero-cost-when-off discipline of
:mod:`repro.perf`:

* :mod:`repro.obs.trace` — per-decision structured traces: timed
  pipeline spans (``pdp.rbac``, ``engine.match``, ``engine.constraints``,
  ``store.commit``) plus matched-policy and violation annotations,
  attached to the :class:`~repro.core.decision.Decision` itself.
* :mod:`repro.obs.metrics` — Prometheus text exposition of
  :class:`~repro.perf.PerfRecorder` counters/histograms and the
  server's per-shard queue gauges, served by the ``metrics`` wire verb
  and ``python -m repro metrics``.
* :mod:`repro.obs.slowlog` — a bounded log of the N slowest traces,
  queryable over the wire (``slowlog`` verb).

See ``docs/OBSERVABILITY.md`` for the trace schema, the metric name
mapping and a scrape example.
"""

from repro.obs.metrics import (
    MetricsRegistry,
    parse_exposition,
    render_service_metrics,
)
from repro.obs.slowlog import SlowDecisionLog
from repro.obs.trace import (
    NOOP_TRACER,
    DecisionTrace,
    DecisionTracer,
    NoopDecisionTracer,
    TraceSpan,
    TraceViolation,
)

__all__ = [
    "DecisionTrace",
    "DecisionTracer",
    "NoopDecisionTracer",
    "NOOP_TRACER",
    "TraceSpan",
    "TraceViolation",
    "SlowDecisionLog",
    "MetricsRegistry",
    "parse_exposition",
    "render_service_metrics",
]

"""Versioned JSON-lines wire format for the MSoD authorization service.

One frame is one UTF-8 JSON object terminated by ``\\n``.  Every frame
carries the protocol version (``"v"``) and a caller-chosen correlation
id (``"id"``) echoed verbatim in the response, so clients may pipeline.

Request frames (client → server)::

    {"v": 1, "id": "c-1", "op": "decide", "request": {...}}
    {"v": 1, "id": "c-2", "op": "healthz"}
    {"v": 1, "id": "c-3", "op": "metrics"}
    {"v": 1, "id": "c-4", "op": "metrics", "format": "prometheus"}
    {"v": 1, "id": "c-5", "op": "slowlog"}

``metrics`` defaults to the JSON snapshot body; ``"format":
"prometheus"`` asks for the text exposition instead (the body is then
one string).  ``slowlog`` returns the server's retained slowest-decision
traces (empty unless the server was started with tracing enabled).

Response frames (server → client)::

    {"v": 1, "id": "c-1", "ok": true,  "op": "decide", "decision": {...}}
    {"v": 1, "id": "c-2", "ok": true,  "op": "healthz", "body": {...}}
    {"v": 1, "id": "c-1", "ok": false, "error": {"kind": "overloaded",
                                                 "detail": "...",
                                                 "retry_after": 0.05}}

The (de)serializers reuse the process-internal types unchanged — a
:class:`~repro.core.decision.DecisionRequest` survives a round trip
bit-identically (including its client-assigned ``request_id``), which is
what lets the differential serving tests assert remote == in-process.

Every malformed input — truncated JSON, oversized frames, bad UTF-8,
wrong types, unknown versions — raises :class:`ProtocolError` and
nothing else; a worker must never crash on attacker-controlled bytes.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from repro.core.context import ContextName
from repro.core.constraints import Role
from repro.core.decision import Decision, DecisionRequest, Effect, MSoDViolation
from repro.core.retained_adi import RetainedADIRecord
from repro.errors import ProtocolError, ReproError
from repro.obs.trace import DecisionTrace

#: Current wire-format version; mismatches are rejected, not guessed at.
PROTOCOL_VERSION = 1

#: Hard ceiling on one frame's encoded size.  The asyncio server reads
#: lines with this limit, so an attacker cannot buffer unbounded bytes.
MAX_FRAME_BYTES = 1 << 20

#: Error kinds a server may emit (the ``error.kind`` field).
ERR_PROTOCOL = "protocol"
ERR_OVERLOADED = "overloaded"
ERR_SHUTTING_DOWN = "shutting-down"
ERR_INTERNAL = "internal"
#: Cluster fencing (see :mod:`repro.cluster`): the frame carried an
#: ``epoch`` below the node's current one — the client's routing table
#: is stale and it must re-fetch the route before retrying.
ERR_FENCED = "fenced"
#: The node is a standby (or demoted primary) for this user's shard and
#: refuses to decide; the client must re-route.
ERR_NOT_PRIMARY = "not-primary"
#: A ``policy-reload`` offered a set the analyzer rejected (or XML that
#: does not parse).  Purely a caller error; the active policy is intact.
ERR_POLICY = "policy"

#: Operations understood by the server.  ``policy-status`` reports the
#: active policy version (epoch + content digest); ``policy-reload``
#: atomically swaps in the policy set carried as XML under the
#: ``policy_xml`` key.  Both are additive v1 verbs: old servers answer
#: them with a ``protocol`` error, old clients simply never send them.
OP_DECIDE = "decide"
OP_HEALTHZ = "healthz"
OP_METRICS = "metrics"
OP_SLOWLOG = "slowlog"
OP_POLICY_STATUS = "policy-status"
OP_POLICY_RELOAD = "policy-reload"
KNOWN_OPS = frozenset(
    {
        OP_DECIDE,
        OP_HEALTHZ,
        OP_METRICS,
        OP_SLOWLOG,
        OP_POLICY_STATUS,
        OP_POLICY_RELOAD,
    }
)

#: Operations understood by the cluster coordinator (router) endpoint,
#: in addition to ``healthz``/``metrics``.  ``route`` returns the
#: current routing table (shard → primary address + epoch); clients
#: refresh it on startup and whenever a node answers ``fenced`` or
#: ``not-primary``.  ``cluster-status`` is the human-facing summary.
OP_ROUTE = "route"
OP_CLUSTER_STATUS = "cluster-status"

#: Bodies the ``metrics`` verb can produce.
METRICS_FORMAT_JSON = "json"
METRICS_FORMAT_PROMETHEUS = "prometheus"
METRICS_FORMATS = frozenset({METRICS_FORMAT_JSON, METRICS_FORMAT_PROMETHEUS})


def metrics_format_of(frame: Mapping[str, Any]) -> str:
    """The validated ``format`` field of a metrics frame."""
    fmt = frame.get("format", METRICS_FORMAT_JSON)
    if fmt not in METRICS_FORMATS:
        raise ProtocolError(
            f"metrics format must be one of {sorted(METRICS_FORMATS)}, "
            f"got {fmt!r}"
        )
    return fmt


# ---------------------------------------------------------------------------
# Frame envelope
# ---------------------------------------------------------------------------
def encode_frame(payload: Mapping[str, Any]) -> bytes:
    """Serialise one frame to its newline-terminated UTF-8 bytes."""
    data = json.dumps(dict(payload), separators=(",", ":")).encode("utf-8")
    if len(data) + 1 > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(data) + 1} bytes exceeds MAX_FRAME_BYTES"
        )
    return data + b"\n"


def decode_frame(line: bytes) -> dict:
    """Parse one received line into a frame dict, validating the envelope."""
    if len(line) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(line)} bytes exceeds limit")
    try:
        text = line.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"frame is not valid UTF-8: {exc}") from exc
    text = text.strip()
    if not text:
        raise ProtocolError("empty frame")
    try:
        frame = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from exc
    if not isinstance(frame, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(frame).__name__}"
        )
    version = frame.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {version!r} "
            f"(this endpoint speaks v{PROTOCOL_VERSION})"
        )
    return frame


def request_frame(op: str, frame_id: str, **fields: Any) -> dict:
    """Build a client request frame envelope."""
    return {"v": PROTOCOL_VERSION, "id": frame_id, "op": op, **fields}


def response_frame(frame_id: Any, op: str, body_key: str, body: Any) -> dict:
    """Build a success response frame."""
    return {
        "v": PROTOCOL_VERSION,
        "id": frame_id,
        "ok": True,
        "op": op,
        body_key: body,
    }


def error_frame(
    frame_id: Any,
    kind: str,
    detail: str,
    retry_after: float | None = None,
) -> dict:
    """Build an error response frame."""
    error: dict[str, Any] = {"kind": kind, "detail": detail}
    if retry_after is not None:
        error["retry_after"] = retry_after
    return {"v": PROTOCOL_VERSION, "id": frame_id, "ok": False, "error": error}


# ---------------------------------------------------------------------------
# Typed field helpers (every wrong shape must become a ProtocolError)
# ---------------------------------------------------------------------------
def _require(mapping: Any, key: str, kind: type, what: str) -> Any:
    if not isinstance(mapping, dict):
        raise ProtocolError(f"{what} must be a JSON object")
    value = mapping.get(key)
    if not isinstance(value, kind):
        raise ProtocolError(
            f"{what}.{key} must be {kind.__name__}, got {type(value).__name__}"
        )
    return value


def _number(mapping: dict, key: str, what: str) -> float:
    value = mapping.get(key)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(f"{what}.{key} must be a number")
    return float(value)


def _roles_from_wire(raw: Any, what: str) -> tuple[Role, ...]:
    if not isinstance(raw, list):
        raise ProtocolError(f"{what}.roles must be a list")
    roles = []
    for item in raw:
        if (
            not isinstance(item, list)
            or len(item) != 2
            or not all(isinstance(part, str) for part in item)
        ):
            raise ProtocolError(
                f"{what}.roles entries must be [type, value] string pairs"
            )
        roles.append(Role(item[0], item[1]))
    return tuple(roles)


def _context_from_wire(raw: Any, what: str) -> ContextName:
    if not isinstance(raw, str):
        raise ProtocolError(f"{what} must be a context-name string")
    try:
        return ContextName.parse(raw)
    except ReproError as exc:
        raise ProtocolError(f"{what} is not a valid context name: {exc}") from exc


# ---------------------------------------------------------------------------
# DecisionRequest
# ---------------------------------------------------------------------------
def request_to_wire(request: DecisionRequest) -> dict:
    """Serialise a :class:`DecisionRequest` for the ``decide`` frame."""
    return {
        "user_id": request.user_id,
        "roles": [[role.role_type, role.value] for role in request.roles],
        "operation": request.operation,
        "target": request.target,
        "context_instance": str(request.context_instance),
        "timestamp": request.timestamp,
        "environment": dict(request.environment),
        "request_id": request.request_id,
    }


def request_from_wire(raw: Any) -> DecisionRequest:
    """Rebuild a :class:`DecisionRequest`; raises ProtocolError on junk."""
    what = "request"
    user_id = _require(raw, "user_id", str, what)
    operation = _require(raw, "operation", str, what)
    target = _require(raw, "target", str, what)
    request_id = _require(raw, "request_id", str, what)
    roles = _roles_from_wire(raw.get("roles"), what)
    context = _context_from_wire(raw.get("context_instance"), f"{what}.context_instance")
    timestamp = _number(raw, "timestamp", what)
    environment = raw.get("environment", {})
    if not isinstance(environment, dict) or not all(
        isinstance(key, str) and isinstance(value, str)
        for key, value in environment.items()
    ):
        raise ProtocolError(f"{what}.environment must map strings to strings")
    try:
        return DecisionRequest(
            user_id=user_id,
            roles=roles,
            operation=operation,
            target=target,
            context_instance=context,
            timestamp=timestamp,
            environment=environment,
            request_id=request_id,
        )
    except ReproError as exc:
        # e.g. empty user id, non-concrete context: a *semantic* protocol
        # violation, still never a worker crash.
        raise ProtocolError(f"invalid decision request: {exc}") from exc


# ---------------------------------------------------------------------------
# Decision (with full MSoD diagnostics, for the remote audit trail)
# ---------------------------------------------------------------------------
def _record_to_wire(record: RetainedADIRecord) -> dict:
    payload = record.to_dict()
    payload["record_id"] = record.record_id
    return payload


def _record_from_wire(raw: Any) -> RetainedADIRecord:
    what = "decision.adi_adds[]"
    _require(raw, "user_id", str, what)
    record_id = raw.get("record_id")
    if record_id is not None and not isinstance(record_id, int):
        raise ProtocolError(f"{what}.record_id must be an integer or null")
    try:
        return RetainedADIRecord.from_dict(raw, record_id=record_id)
    except (ReproError, KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"invalid retained-ADI record: {exc}") from exc


def _violation_to_wire(violation: MSoDViolation) -> dict:
    return {
        "policy_id": violation.policy_id,
        "constraint_kind": violation.constraint_kind,
        "constraint_repr": violation.constraint_repr,
        "effective_context": str(violation.effective_context),
        "detail": violation.detail,
    }


def _violation_from_wire(raw: Any) -> MSoDViolation:
    what = "decision.violation"
    return MSoDViolation(
        policy_id=_require(raw, "policy_id", str, what),
        constraint_kind=_require(raw, "constraint_kind", str, what),
        constraint_repr=_require(raw, "constraint_repr", str, what),
        effective_context=_context_from_wire(
            raw.get("effective_context"), f"{what}.effective_context"
        ),
        detail=_require(raw, "detail", str, what),
    )


def decision_to_wire(decision: Decision) -> dict:
    """Serialise a :class:`Decision` for the ``decide`` response.

    The observability trace, when the serving engine runs with tracing
    enabled, rides along under the ``trace`` key; decisions made with
    tracing off serialise exactly as before (no key at all), keeping
    the differential serving tests byte-identical.
    """
    wire = {
        "effect": decision.effect,
        "request": request_to_wire(decision.request),
        "violation": (
            None
            if decision.violation is None
            else _violation_to_wire(decision.violation)
        ),
        "matched_policy_ids": list(decision.matched_policy_ids),
        "records_added": decision.records_added,
        "records_purged": decision.records_purged,
        "reason": decision.reason,
        "adi_adds": [_record_to_wire(record) for record in decision.adi_adds],
        "adi_purged_contexts": [
            str(context) for context in decision.adi_purged_contexts
        ],
    }
    if decision.policy_epoch:
        # Additive keys (absent on pre-epoch decisions): old clients
        # ignore them, old payloads parse with the 0/"" defaults.
        wire["policy_epoch"] = decision.policy_epoch
        wire["policy_digest"] = decision.policy_digest
    if decision.trace is not None:
        wire["trace"] = decision.trace.to_dict()
    return wire


def decision_from_wire(raw: Any) -> Decision:
    """Rebuild a :class:`Decision`; raises ProtocolError on junk."""
    what = "decision"
    effect = _require(raw, "effect", str, what)
    if effect not in (Effect.GRANT, Effect.DENY):
        raise ProtocolError(f"{what}.effect must be grant or deny")
    matched = raw.get("matched_policy_ids", [])
    if not isinstance(matched, list) or not all(
        isinstance(item, str) for item in matched
    ):
        raise ProtocolError(f"{what}.matched_policy_ids must be a string list")
    violation_raw = raw.get("violation")
    adds_raw = raw.get("adi_adds", [])
    purged_raw = raw.get("adi_purged_contexts", [])
    if not isinstance(adds_raw, list):
        raise ProtocolError(f"{what}.adi_adds must be a list")
    if not isinstance(purged_raw, list):
        raise ProtocolError(f"{what}.adi_purged_contexts must be a list")
    records_added = raw.get("records_added", 0)
    records_purged = raw.get("records_purged", 0)
    if isinstance(records_added, bool) or not isinstance(records_added, int):
        raise ProtocolError(f"{what}.records_added must be an integer")
    if isinstance(records_purged, bool) or not isinstance(records_purged, int):
        raise ProtocolError(f"{what}.records_purged must be an integer")
    policy_epoch = raw.get("policy_epoch", 0)
    if isinstance(policy_epoch, bool) or not isinstance(policy_epoch, int):
        raise ProtocolError(f"{what}.policy_epoch must be an integer")
    policy_digest = raw.get("policy_digest", "")
    if not isinstance(policy_digest, str):
        raise ProtocolError(f"{what}.policy_digest must be a string")
    trace_raw = raw.get("trace")
    if trace_raw is None:
        trace = None
    else:
        try:
            trace = DecisionTrace.from_dict(trace_raw)
        except ValueError as exc:
            raise ProtocolError(f"invalid decision trace: {exc}") from exc
    return Decision(
        trace=trace,
        effect=effect,
        request=request_from_wire(raw.get("request")),
        violation=(
            None if violation_raw is None else _violation_from_wire(violation_raw)
        ),
        matched_policy_ids=tuple(matched),
        records_added=records_added,
        records_purged=records_purged,
        reason=_require(raw, "reason", str, what),
        adi_adds=tuple(_record_from_wire(item) for item in adds_raw),
        adi_purged_contexts=tuple(
            _context_from_wire(item, f"{what}.adi_purged_contexts[]")
            for item in purged_raw
        ),
        policy_epoch=policy_epoch,
        policy_digest=policy_digest,
    )


def policy_xml_of(frame: Mapping[str, Any]) -> str:
    """The validated ``policy_xml`` field of a ``policy-reload`` frame."""
    return _require(frame, "policy_xml", str, "policy-reload")

"""Versioned wire formats for the MSoD authorization service.

**v1** is JSON lines: one frame is one UTF-8 JSON object terminated by
``\\n``.  Every frame carries the protocol version (``"v"``) and a
caller-chosen correlation id (``"id"``) echoed verbatim in the
response, so clients may pipeline.

**v2** is a length-prefixed compact binary encoding negotiated
per-connection: a connection always *starts* in v1 and may send a
``hello`` frame; once the server answers with ``version: 2`` both sides
switch to binary frames (struct-packed 8-byte header + a msgpack-style
payload, no external dependencies — see :func:`pack_payload`).  The
payload is the *same* frame dict as v1, so every op round-trips
unchanged; v2 additionally understands ``decide-batch``, which carries
N requests (and N per-entry results) per frame.  v1 clients never send
``hello`` and keep working byte-identically; v1 servers answer
``hello`` with a ``protocol`` error, which v2-capable clients treat as
"speak v1".

Request frames (client → server)::

    {"v": 1, "id": "c-1", "op": "decide", "request": {...}}
    {"v": 1, "id": "c-2", "op": "healthz"}
    {"v": 1, "id": "c-3", "op": "metrics"}
    {"v": 1, "id": "c-4", "op": "metrics", "format": "prometheus"}
    {"v": 1, "id": "c-5", "op": "slowlog"}

``metrics`` defaults to the JSON snapshot body; ``"format":
"prometheus"`` asks for the text exposition instead (the body is then
one string).  ``slowlog`` returns the server's retained slowest-decision
traces (empty unless the server was started with tracing enabled).

Response frames (server → client)::

    {"v": 1, "id": "c-1", "ok": true,  "op": "decide", "decision": {...}}
    {"v": 1, "id": "c-2", "ok": true,  "op": "healthz", "body": {...}}
    {"v": 1, "id": "c-1", "ok": false, "error": {"kind": "overloaded",
                                                 "detail": "...",
                                                 "retry_after": 0.05}}

The (de)serializers reuse the process-internal types unchanged — a
:class:`~repro.core.decision.DecisionRequest` survives a round trip
bit-identically (including its client-assigned ``request_id``), which is
what lets the differential serving tests assert remote == in-process.

Every malformed input — truncated JSON, oversized frames, bad UTF-8,
wrong types, unknown versions — raises :class:`ProtocolError` and
nothing else; a worker must never crash on attacker-controlled bytes.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Mapping

from repro.core.context import ContextName
from repro.core.constraints import Role
from repro.core.decision import Decision, DecisionRequest, Effect, MSoDViolation
from repro.core.retained_adi import RetainedADIRecord
from repro.errors import ProtocolError, ReproError
from repro.obs.trace import DecisionTrace

#: Current wire-format version; mismatches are rejected, not guessed at.
PROTOCOL_VERSION = 1

#: Hard ceiling on one frame's encoded size.  The asyncio server reads
#: lines with this limit, so an attacker cannot buffer unbounded bytes.
MAX_FRAME_BYTES = 1 << 20

#: Error kinds a server may emit (the ``error.kind`` field).
ERR_PROTOCOL = "protocol"
ERR_OVERLOADED = "overloaded"
ERR_SHUTTING_DOWN = "shutting-down"
ERR_INTERNAL = "internal"
#: Cluster fencing (see :mod:`repro.cluster`): the frame carried an
#: ``epoch`` below the node's current one — the client's routing table
#: is stale and it must re-fetch the route before retrying.
ERR_FENCED = "fenced"
#: The node is a standby (or demoted primary) for this user's shard and
#: refuses to decide; the client must re-route.
ERR_NOT_PRIMARY = "not-primary"
#: A ``policy-reload`` offered a set the analyzer rejected (or XML that
#: does not parse).  Purely a caller error; the active policy is intact.
ERR_POLICY = "policy"

#: Operations understood by the server.  ``policy-status`` reports the
#: active policy version (epoch + content digest); ``policy-reload``
#: atomically swaps in the policy set carried as XML under the
#: ``policy_xml`` key.  Both are additive v1 verbs: old servers answer
#: them with a ``protocol`` error, old clients simply never send them.
OP_DECIDE = "decide"
OP_HEALTHZ = "healthz"
OP_METRICS = "metrics"
OP_SLOWLOG = "slowlog"
OP_POLICY_STATUS = "policy-status"
OP_POLICY_RELOAD = "policy-reload"
#: Version negotiation (additive v1 verb): carries ``max_version``, the
#: highest protocol version the client can speak; the server answers
#: with the version this connection will use from the next frame on.
#: Old servers answer ``hello`` with a ``protocol`` error, which a
#: v2-capable client treats as "this endpoint speaks v1 only".
OP_HELLO = "hello"
#: Policy verification verbs (additive v1 verbs).  ``verify`` runs the
#: structured static analyzer over the candidate set carried as
#: ``policy_xml``; ``whatif`` replays the server's recorded audit trail
#: under the candidate and reports flipped decisions.  ``policy-reload``
#: additionally accepts optional ``verify``/``max_flips``/``force``
#: fields (see :func:`reload_options_of`) gating the swap server-side.
OP_VERIFY = "verify"
OP_WHATIF = "whatif"
KNOWN_OPS = frozenset(
    {
        OP_DECIDE,
        OP_HEALTHZ,
        OP_METRICS,
        OP_SLOWLOG,
        OP_POLICY_STATUS,
        OP_POLICY_RELOAD,
        OP_VERIFY,
        OP_WHATIF,
        OP_HELLO,
    }
)

#: Batched decide (v2 connections only): the frame carries a
#: ``requests`` list and the response a same-length, same-order
#: ``results`` list of per-entry ``{"ok": true, "decision": ...}`` /
#: ``{"ok": false, "error": ...}`` outcomes.  Deliberately *not* in
#: ``KNOWN_OPS``: a v1 endpoint must reject it (cross-talk safety).
OP_DECIDE_BATCH = "decide-batch"
#: Ops a negotiated v2 connection accepts.
V2_OPS = KNOWN_OPS | {OP_DECIDE_BATCH}

#: Operations understood by the cluster coordinator (router) endpoint,
#: in addition to ``healthz``/``metrics``.  ``route`` returns the
#: current routing table (shard → primary address + epoch); clients
#: refresh it on startup and whenever a node answers ``fenced`` or
#: ``not-primary``.  ``cluster-status`` is the human-facing summary.
OP_ROUTE = "route"
OP_CLUSTER_STATUS = "cluster-status"
#: Online resharding verbs (coordinator only).  ``reshard`` carries an
#: ``action`` (``add-node`` / ``drain`` / ``rebalance``) plus an
#: optional ``shard`` and, for rebalance, ``apply``; the response body
#: is the resulting reshard status (or rebalance plan).
#: ``reshard-status`` reports the in-flight migration, the last
#: completed one and the lifetime counters.
OP_RESHARD = "reshard"
OP_RESHARD_STATUS = "reshard-status"

RESHARD_ACTION_ADD = "add-node"
RESHARD_ACTION_DRAIN = "drain"
RESHARD_ACTION_REBALANCE = "rebalance"
RESHARD_ACTIONS = frozenset(
    {RESHARD_ACTION_ADD, RESHARD_ACTION_DRAIN, RESHARD_ACTION_REBALANCE}
)


def reshard_options_of(
    frame: Mapping[str, Any],
) -> tuple[str, str | None, bool]:
    """The validated ``(action, shard, apply)`` of a reshard frame."""
    action = frame.get("action")
    if action not in RESHARD_ACTIONS:
        raise ProtocolError(
            f"reshard action must be one of {sorted(RESHARD_ACTIONS)}, "
            f"got {action!r}"
        )
    shard = frame.get("shard")
    if shard is not None and not isinstance(shard, str):
        raise ProtocolError("reshard.shard must be a string shard name")
    if action == RESHARD_ACTION_DRAIN and not shard:
        raise ProtocolError("reshard drain requires a shard name")
    apply = frame.get("apply", False)
    if not isinstance(apply, bool):
        raise ProtocolError("reshard.apply must be a boolean")
    return action, shard, apply

#: Bodies the ``metrics`` verb can produce.
METRICS_FORMAT_JSON = "json"
METRICS_FORMAT_PROMETHEUS = "prometheus"
METRICS_FORMATS = frozenset({METRICS_FORMAT_JSON, METRICS_FORMAT_PROMETHEUS})


def metrics_format_of(frame: Mapping[str, Any]) -> str:
    """The validated ``format`` field of a metrics frame."""
    fmt = frame.get("format", METRICS_FORMAT_JSON)
    if fmt not in METRICS_FORMATS:
        raise ProtocolError(
            f"metrics format must be one of {sorted(METRICS_FORMATS)}, "
            f"got {fmt!r}"
        )
    return fmt


# ---------------------------------------------------------------------------
# Frame envelope
# ---------------------------------------------------------------------------
def encode_frame(payload: Mapping[str, Any]) -> bytes:
    """Serialise one frame to its newline-terminated UTF-8 bytes."""
    data = json.dumps(dict(payload), separators=(",", ":")).encode("utf-8")
    if len(data) + 1 > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(data) + 1} bytes exceeds MAX_FRAME_BYTES"
        )
    return data + b"\n"


def decode_frame(line: bytes) -> dict:
    """Parse one received line into a frame dict, validating the envelope."""
    if len(line) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(line)} bytes exceeds limit")
    try:
        text = line.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"frame is not valid UTF-8: {exc}") from exc
    text = text.strip()
    if not text:
        raise ProtocolError("empty frame")
    try:
        frame = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from exc
    if not isinstance(frame, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(frame).__name__}"
        )
    version = frame.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {version!r} "
            f"(this endpoint speaks v{PROTOCOL_VERSION})"
        )
    return frame


def request_frame(op: str, frame_id: str, **fields: Any) -> dict:
    """Build a client request frame envelope."""
    return {"v": PROTOCOL_VERSION, "id": frame_id, "op": op, **fields}


def response_frame(frame_id: Any, op: str, body_key: str, body: Any) -> dict:
    """Build a success response frame."""
    return {
        "v": PROTOCOL_VERSION,
        "id": frame_id,
        "ok": True,
        "op": op,
        body_key: body,
    }


def error_frame(
    frame_id: Any,
    kind: str,
    detail: str,
    retry_after: float | None = None,
) -> dict:
    """Build an error response frame."""
    error: dict[str, Any] = {"kind": kind, "detail": detail}
    if retry_after is not None:
        error["retry_after"] = retry_after
    return {"v": PROTOCOL_VERSION, "id": frame_id, "ok": False, "error": error}


# ---------------------------------------------------------------------------
# Typed field helpers (every wrong shape must become a ProtocolError)
# ---------------------------------------------------------------------------
def _require(mapping: Any, key: str, kind: type, what: str) -> Any:
    if not isinstance(mapping, dict):
        raise ProtocolError(f"{what} must be a JSON object")
    value = mapping.get(key)
    if not isinstance(value, kind):
        raise ProtocolError(
            f"{what}.{key} must be {kind.__name__}, got {type(value).__name__}"
        )
    return value


def _number(mapping: dict, key: str, what: str) -> float:
    value = mapping.get(key)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(f"{what}.{key} must be a number")
    return float(value)


def _roles_from_wire(raw: Any, what: str) -> tuple[Role, ...]:
    if not isinstance(raw, list):
        raise ProtocolError(f"{what}.roles must be a list")
    roles = []
    for item in raw:
        if (
            not isinstance(item, list)
            or len(item) != 2
            or not all(isinstance(part, str) for part in item)
        ):
            raise ProtocolError(
                f"{what}.roles entries must be [type, value] string pairs"
            )
        roles.append(Role(item[0], item[1]))
    return tuple(roles)


def _context_from_wire(raw: Any, what: str) -> ContextName:
    if not isinstance(raw, str):
        raise ProtocolError(f"{what} must be a context-name string")
    try:
        return ContextName.parse(raw)
    except ReproError as exc:
        raise ProtocolError(f"{what} is not a valid context name: {exc}") from exc


# ---------------------------------------------------------------------------
# DecisionRequest
# ---------------------------------------------------------------------------
def request_to_wire(request: DecisionRequest) -> dict:
    """Serialise a :class:`DecisionRequest` for the ``decide`` frame."""
    return {
        "user_id": request.user_id,
        "roles": [[role.role_type, role.value] for role in request.roles],
        "operation": request.operation,
        "target": request.target,
        "context_instance": str(request.context_instance),
        "timestamp": request.timestamp,
        "environment": dict(request.environment),
        "request_id": request.request_id,
    }


def request_from_wire(raw: Any) -> DecisionRequest:
    """Rebuild a :class:`DecisionRequest`; raises ProtocolError on junk."""
    what = "request"
    user_id = _require(raw, "user_id", str, what)
    operation = _require(raw, "operation", str, what)
    target = _require(raw, "target", str, what)
    request_id = _require(raw, "request_id", str, what)
    roles = _roles_from_wire(raw.get("roles"), what)
    context = _context_from_wire(raw.get("context_instance"), f"{what}.context_instance")
    timestamp = _number(raw, "timestamp", what)
    environment = raw.get("environment", {})
    if not isinstance(environment, dict) or not all(
        isinstance(key, str) and isinstance(value, str)
        for key, value in environment.items()
    ):
        raise ProtocolError(f"{what}.environment must map strings to strings")
    try:
        return DecisionRequest(
            user_id=user_id,
            roles=roles,
            operation=operation,
            target=target,
            context_instance=context,
            timestamp=timestamp,
            environment=environment,
            request_id=request_id,
        )
    except ReproError as exc:
        # e.g. empty user id, non-concrete context: a *semantic* protocol
        # violation, still never a worker crash.
        raise ProtocolError(f"invalid decision request: {exc}") from exc


# ---------------------------------------------------------------------------
# Decision (with full MSoD diagnostics, for the remote audit trail)
# ---------------------------------------------------------------------------
def _record_to_wire(record: RetainedADIRecord) -> dict:
    payload = record.to_dict()
    payload["record_id"] = record.record_id
    return payload


def _record_from_wire(raw: Any) -> RetainedADIRecord:
    what = "decision.adi_adds[]"
    _require(raw, "user_id", str, what)
    record_id = raw.get("record_id")
    if record_id is not None and not isinstance(record_id, int):
        raise ProtocolError(f"{what}.record_id must be an integer or null")
    try:
        return RetainedADIRecord.from_dict(raw, record_id=record_id)
    except (ReproError, KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"invalid retained-ADI record: {exc}") from exc


def _violation_to_wire(violation: MSoDViolation) -> dict:
    return {
        "policy_id": violation.policy_id,
        "constraint_kind": violation.constraint_kind,
        "constraint_repr": violation.constraint_repr,
        "effective_context": str(violation.effective_context),
        "detail": violation.detail,
    }


def _violation_from_wire(raw: Any) -> MSoDViolation:
    what = "decision.violation"
    return MSoDViolation(
        policy_id=_require(raw, "policy_id", str, what),
        constraint_kind=_require(raw, "constraint_kind", str, what),
        constraint_repr=_require(raw, "constraint_repr", str, what),
        effective_context=_context_from_wire(
            raw.get("effective_context"), f"{what}.effective_context"
        ),
        detail=_require(raw, "detail", str, what),
    )


def decision_to_wire(decision: Decision) -> dict:
    """Serialise a :class:`Decision` for the ``decide`` response.

    The observability trace, when the serving engine runs with tracing
    enabled, rides along under the ``trace`` key; decisions made with
    tracing off serialise exactly as before (no key at all), keeping
    the differential serving tests byte-identical.
    """
    wire = {
        "effect": decision.effect,
        "request": request_to_wire(decision.request),
        "violation": (
            None
            if decision.violation is None
            else _violation_to_wire(decision.violation)
        ),
        "matched_policy_ids": list(decision.matched_policy_ids),
        "records_added": decision.records_added,
        "records_purged": decision.records_purged,
        "reason": decision.reason,
        "adi_adds": [_record_to_wire(record) for record in decision.adi_adds],
        "adi_purged_contexts": [
            str(context) for context in decision.adi_purged_contexts
        ],
    }
    if decision.policy_epoch:
        # Additive keys (absent on pre-epoch decisions): old clients
        # ignore them, old payloads parse with the 0/"" defaults.
        wire["policy_epoch"] = decision.policy_epoch
        wire["policy_digest"] = decision.policy_digest
    if decision.trace is not None:
        wire["trace"] = decision.trace.to_dict()
    return wire


def decision_from_wire(raw: Any) -> Decision:
    """Rebuild a :class:`Decision`; raises ProtocolError on junk."""
    return _decision_from_wire(raw, None)


def _record_is_request_derived(
    record: RetainedADIRecord, request: DecisionRequest
) -> bool:
    """True when a retained record is exactly the request's own grant."""
    return (
        record.user_id == request.user_id
        and record.roles == tuple(request.roles)
        and record.operation == request.operation
        and record.target == request.target
        and record.context_instance == request.context_instance
        and record.granted_at == request.timestamp
        and record.request_id == request.request_id
    )


def decision_to_wire_delta(
    decision: Decision, request: DecisionRequest
) -> dict:
    """Serialise a decision for a v2 batch entry, delta-encoded.

    A batch entry answers exactly one request the client already holds,
    so the dominant payload bytes — the request echo and the retained
    records a grant derives from that same request — are elided: the
    echo is omitted when it equals the submitted request, and each
    request-derived record collapses to its bare ``record_id`` (an
    integer, or ``None`` for stores that assign no ids).  Anything that
    does not round-trip through the request (a cached dedup decision
    for a different submission, purge-survivor records) stays in the
    full form, so :func:`decision_from_wire_delta` reconstructs the
    identical :class:`Decision` either way.
    """
    wire: dict = {
        "effect": decision.effect,
        "violation": (
            None
            if decision.violation is None
            else _violation_to_wire(decision.violation)
        ),
        "matched_policy_ids": list(decision.matched_policy_ids),
        "records_added": decision.records_added,
        "records_purged": decision.records_purged,
        "reason": decision.reason,
        "adi_adds": [
            record.record_id
            if _record_is_request_derived(record, request)
            else _record_to_wire(record)
            for record in decision.adi_adds
        ],
        "adi_purged_contexts": [
            str(context) for context in decision.adi_purged_contexts
        ],
    }
    if decision.request is not request and decision.request != request:
        wire["request"] = request_to_wire(decision.request)
    if decision.policy_epoch:
        wire["policy_epoch"] = decision.policy_epoch
        wire["policy_digest"] = decision.policy_digest
    if decision.trace is not None:
        wire["trace"] = decision.trace.to_dict()
    return wire


def decision_from_wire_delta(raw: Any, request: DecisionRequest) -> Decision:
    """Rebuild a batch-entry :class:`Decision` against its own request.

    The inverse of :func:`decision_to_wire_delta`: a missing request
    echo resolves to ``request`` itself, and integer/``None`` entries
    in ``adi_adds`` reinflate to the record the request's grant would
    have produced.  Full-form entries (dicts) parse exactly as in v1.
    """
    if not isinstance(raw, Mapping):
        raise ProtocolError("decision must be a map")
    return _decision_from_wire(raw, request)


def _decision_from_wire(raw: Any, delta_request: DecisionRequest | None) -> Decision:
    what = "decision"
    effect = _require(raw, "effect", str, what)
    if effect not in (Effect.GRANT, Effect.DENY):
        raise ProtocolError(f"{what}.effect must be grant or deny")
    matched = raw.get("matched_policy_ids", [])
    if not isinstance(matched, list) or not all(
        isinstance(item, str) for item in matched
    ):
        raise ProtocolError(f"{what}.matched_policy_ids must be a string list")
    violation_raw = raw.get("violation")
    adds_raw = raw.get("adi_adds", [])
    purged_raw = raw.get("adi_purged_contexts", [])
    if not isinstance(adds_raw, list):
        raise ProtocolError(f"{what}.adi_adds must be a list")
    if not isinstance(purged_raw, list):
        raise ProtocolError(f"{what}.adi_purged_contexts must be a list")
    records_added = raw.get("records_added", 0)
    records_purged = raw.get("records_purged", 0)
    if isinstance(records_added, bool) or not isinstance(records_added, int):
        raise ProtocolError(f"{what}.records_added must be an integer")
    if isinstance(records_purged, bool) or not isinstance(records_purged, int):
        raise ProtocolError(f"{what}.records_purged must be an integer")
    policy_epoch = raw.get("policy_epoch", 0)
    if isinstance(policy_epoch, bool) or not isinstance(policy_epoch, int):
        raise ProtocolError(f"{what}.policy_epoch must be an integer")
    policy_digest = raw.get("policy_digest", "")
    if not isinstance(policy_digest, str):
        raise ProtocolError(f"{what}.policy_digest must be a string")
    trace_raw = raw.get("trace")
    if trace_raw is None:
        trace = None
    else:
        try:
            trace = DecisionTrace.from_dict(trace_raw)
        except ValueError as exc:
            raise ProtocolError(f"invalid decision trace: {exc}") from exc
    request_raw = raw.get("request")
    if delta_request is not None and request_raw is None:
        request = delta_request
    else:
        request = request_from_wire(request_raw)
    adi_adds: list[RetainedADIRecord] = []
    for item in adds_raw:
        if isinstance(item, Mapping):
            adi_adds.append(_record_from_wire(item))
        elif delta_request is not None and (
            item is None
            or (isinstance(item, int) and not isinstance(item, bool))
        ):
            # Delta marker: the record is the request's own grant.
            adi_adds.append(
                RetainedADIRecord(
                    user_id=delta_request.user_id,
                    roles=tuple(delta_request.roles),
                    operation=delta_request.operation,
                    target=delta_request.target,
                    context_instance=delta_request.context_instance,
                    granted_at=delta_request.timestamp,
                    request_id=delta_request.request_id,
                    record_id=item,
                )
            )
        else:
            raise ProtocolError(f"{what}.adi_adds[] entries must be records")
    return Decision(
        trace=trace,
        effect=effect,
        request=request,
        violation=(
            None if violation_raw is None else _violation_from_wire(violation_raw)
        ),
        matched_policy_ids=tuple(matched),
        records_added=records_added,
        records_purged=records_purged,
        reason=_require(raw, "reason", str, what),
        adi_adds=tuple(adi_adds),
        adi_purged_contexts=tuple(
            _context_from_wire(item, f"{what}.adi_purged_contexts[]")
            for item in purged_raw
        ),
        policy_epoch=policy_epoch,
        policy_digest=policy_digest,
    )


def policy_xml_of(frame: Mapping[str, Any]) -> str:
    """The validated ``policy_xml`` field of a ``policy-reload`` frame."""
    return _require(frame, "policy_xml", str, "policy-reload")


def reload_options_of(frame: Mapping[str, Any]) -> tuple[bool, int, bool]:
    """The optional verification-gate fields of a ``policy-reload`` frame.

    Returns ``(verify, max_flips, force)``.  All three are optional on
    the wire (old clients never send them) and default to the ungated
    pre-verification behaviour: ``(False, 0, False)``.
    """
    verify = frame.get("verify", False)
    if not isinstance(verify, bool):
        raise ProtocolError("policy-reload.verify must be a boolean")
    force = frame.get("force", False)
    if not isinstance(force, bool):
        raise ProtocolError("policy-reload.force must be a boolean")
    max_flips = frame.get("max_flips", 0)
    if isinstance(max_flips, bool) or not isinstance(max_flips, int):
        raise ProtocolError("policy-reload.max_flips must be an integer")
    if max_flips < 0:
        raise ProtocolError("policy-reload.max_flips must be >= 0")
    return verify, max_flips, force


def reload_principal_of(frame: Mapping[str, Any]) -> str | None:
    """The optional ``principal`` field of a ``policy-reload`` frame.

    Additive: old clients never send it and the swap proceeds unguarded.
    When present, the server checks the principal against admin-boundary
    constraints of the *outgoing* policy set before swapping.
    """
    principal = frame.get("principal")
    if principal is None:
        return None
    if not isinstance(principal, str) or not principal:
        raise ProtocolError(
            "policy-reload.principal must be a non-empty string"
        )
    return principal


# ---------------------------------------------------------------------------
# Protocol v2: msgpack-style payload codec ("binpack")
# ---------------------------------------------------------------------------
#: The binary wire-format version spoken after a successful ``hello``.
PROTOCOL_VERSION_2 = 2
#: Highest version this build can negotiate.
MAX_PROTOCOL_VERSION = PROTOCOL_VERSION_2

#: Hard ceiling on one *batched* binary frame (header + payload).  A
#: batch of ``MAX_WIRE_BATCH`` worst-case decisions fits comfortably;
#: anything declaring more is rejected before a single payload byte is
#: buffered.
MAX_FRAME_BYTES_V2 = 8 << 20
#: Most requests one ``decide-batch`` frame may carry.
MAX_WIRE_BATCH = 1024
#: Nesting depth cap for the payload codec — frames nest a handful of
#: levels; attacker-controlled recursion must not reach the interpreter
#: stack limit.
_BINPACK_MAX_DEPTH = 32

_FLOAT64 = struct.Struct("!d")


def _pack_into(obj: Any, out: bytearray, depth: int) -> None:
    if depth > _BINPACK_MAX_DEPTH:
        raise ProtocolError("binpack payload nests too deeply")
    if obj is None:
        out.append(0xC0)
    elif obj is True:
        out.append(0xC3)
    elif obj is False:
        out.append(0xC2)
    elif type(obj) is int:
        if 0 <= obj <= 0x7F:
            out.append(obj)
        elif -32 <= obj < 0:
            out.append(0x100 + obj)
        elif obj >= 0:
            if obj <= 0xFF:
                out.append(0xCC)
                out.append(obj)
            elif obj <= 0xFFFF:
                out.append(0xCD)
                out += obj.to_bytes(2, "big")
            elif obj <= 0xFFFFFFFF:
                out.append(0xCE)
                out += obj.to_bytes(4, "big")
            elif obj <= 0xFFFFFFFFFFFFFFFF:
                out.append(0xCF)
                out += obj.to_bytes(8, "big")
            else:
                raise ProtocolError("binpack integer exceeds 64 bits")
        else:
            if obj >= -0x80:
                out.append(0xD0)
                out += obj.to_bytes(1, "big", signed=True)
            elif obj >= -0x8000:
                out.append(0xD1)
                out += obj.to_bytes(2, "big", signed=True)
            elif obj >= -0x80000000:
                out.append(0xD2)
                out += obj.to_bytes(4, "big", signed=True)
            elif obj >= -0x8000000000000000:
                out.append(0xD3)
                out += obj.to_bytes(8, "big", signed=True)
            else:
                raise ProtocolError("binpack integer exceeds 64 bits")
    elif type(obj) is float:
        out.append(0xCB)
        out += _FLOAT64.pack(obj)
    elif type(obj) is str:
        data = obj.encode("utf-8")
        size = len(data)
        if size <= 31:
            out.append(0xA0 | size)
        elif size <= 0xFF:
            out.append(0xD9)
            out.append(size)
        elif size <= 0xFFFF:
            out.append(0xDA)
            out += size.to_bytes(2, "big")
        elif size <= 0xFFFFFFFF:
            out.append(0xDB)
            out += size.to_bytes(4, "big")
        else:  # pragma: no cover - larger than any frame limit
            raise ProtocolError("binpack string too long")
        out += data
    elif type(obj) is bytes:
        size = len(obj)
        if size <= 0xFF:
            out.append(0xC4)
            out.append(size)
        elif size <= 0xFFFF:
            out.append(0xC5)
            out += size.to_bytes(2, "big")
        elif size <= 0xFFFFFFFF:
            out.append(0xC6)
            out += size.to_bytes(4, "big")
        else:  # pragma: no cover - larger than any frame limit
            raise ProtocolError("binpack bytes too long")
        out += obj
    elif isinstance(obj, (list, tuple)):
        size = len(obj)
        if size <= 15:
            out.append(0x90 | size)
        elif size <= 0xFFFF:
            out.append(0xDC)
            out += size.to_bytes(2, "big")
        elif size <= 0xFFFFFFFF:
            out.append(0xDD)
            out += size.to_bytes(4, "big")
        else:  # pragma: no cover
            raise ProtocolError("binpack array too long")
        for item in obj:
            _pack_into(item, out, depth + 1)
    elif isinstance(obj, dict):
        size = len(obj)
        if size <= 15:
            out.append(0x80 | size)
        elif size <= 0xFFFF:
            out.append(0xDE)
            out += size.to_bytes(2, "big")
        elif size <= 0xFFFFFFFF:
            out.append(0xDF)
            out += size.to_bytes(4, "big")
        else:  # pragma: no cover
            raise ProtocolError("binpack map too long")
        for key, value in obj.items():
            if type(key) is not str:
                raise ProtocolError("binpack map keys must be strings")
            _pack_into(key, out, depth + 1)
            _pack_into(value, out, depth + 1)
    elif isinstance(obj, (int, str, float)):
        # bool subclasses were handled above; tolerate int/str/float
        # subclasses (enums such as Effect) by packing the base value.
        base = int(obj) if isinstance(obj, int) else (
            str(obj) if isinstance(obj, str) else float(obj)
        )
        _pack_into(base, out, depth)
    else:
        raise ProtocolError(
            f"binpack cannot encode {type(obj).__name__} values"
        )


def pack_payload(obj: Any) -> bytes:
    """Encode a JSON-shaped value with the v2 binary payload codec.

    The codec is a self-contained msgpack-compatible subset (nil, bool,
    64-bit ints, float64, str, bytes, array, map) — no external
    dependency, deterministic output, and every decode failure mode is
    a :class:`ProtocolError`.
    """
    out = bytearray()
    _pack_into(obj, out, 0)
    return bytes(out)


def _need(data: bytes, offset: int, count: int, what: str) -> None:
    if offset + count > len(data):
        raise ProtocolError(f"binpack payload truncated in {what}")


#: Memo of short map-key byte slices → interned strings.  Wire payloads
#: repeat the same handful of keys ("effect", "reason", ...) thousands
#: of times per batch; decoding each occurrence costs a slice, a UTF-8
#: decode and a fresh string object, where a hit here costs one dict
#: lookup.  Bounded; cleared wholesale if adversarial traffic fills it.
_KEY_MEMO: dict[bytes, str] = {}
_KEY_MEMO_MAX = 1024


def _unpack_from(data: bytes, offset: int, depth: int) -> tuple[Any, int]:
    if depth > _BINPACK_MAX_DEPTH:
        raise ProtocolError("binpack payload nests too deeply")
    _need(data, offset, 1, "tag")
    tag = data[offset]
    offset += 1
    if tag <= 0x7F:  # positive fixint
        return tag, offset
    if tag >= 0xE0:  # negative fixint
        return tag - 0x100, offset
    if 0x80 <= tag <= 0x8F:
        return _unpack_map(data, offset, tag & 0x0F, depth)
    if 0x90 <= tag <= 0x9F:
        return _unpack_array(data, offset, tag & 0x0F, depth)
    if 0xA0 <= tag <= 0xBF:
        return _unpack_str(data, offset, tag & 0x1F)
    if tag == 0xC0:
        return None, offset
    if tag == 0xC2:
        return False, offset
    if tag == 0xC3:
        return True, offset
    if tag in (0xC4, 0xC5, 0xC6):
        width = 1 << (tag - 0xC4)
        _need(data, offset, width, "bytes length")
        size = int.from_bytes(data[offset:offset + width], "big")
        offset += width
        _need(data, offset, size, "bytes body")
        return bytes(data[offset:offset + size]), offset + size
    if tag == 0xCB:
        _need(data, offset, 8, "float64")
        return _FLOAT64.unpack_from(data, offset)[0], offset + 8
    if 0xCC <= tag <= 0xCF:
        width = 1 << (tag - 0xCC)
        _need(data, offset, width, "uint")
        value = int.from_bytes(data[offset:offset + width], "big")
        return value, offset + width
    if 0xD0 <= tag <= 0xD3:
        width = 1 << (tag - 0xD0)
        _need(data, offset, width, "int")
        value = int.from_bytes(
            data[offset:offset + width], "big", signed=True
        )
        return value, offset + width
    if tag in (0xD9, 0xDA, 0xDB):
        width = 1 << (tag - 0xD9)
        _need(data, offset, width, "str length")
        size = int.from_bytes(data[offset:offset + width], "big")
        offset += width
        return _unpack_str(data, offset, size)
    if tag in (0xDC, 0xDD):
        width = 2 << (tag - 0xDC)
        _need(data, offset, width, "array length")
        size = int.from_bytes(data[offset:offset + width], "big")
        offset += width
        return _unpack_array(data, offset, size, depth)
    if tag in (0xDE, 0xDF):
        width = 2 << (tag - 0xDE)
        _need(data, offset, width, "map length")
        size = int.from_bytes(data[offset:offset + width], "big")
        offset += width
        return _unpack_map(data, offset, size, depth)
    raise ProtocolError(f"binpack tag 0x{tag:02x} is not supported")


def _unpack_str(data: bytes, offset: int, size: int) -> tuple[str, int]:
    _need(data, offset, size, "str body")
    try:
        return data[offset:offset + size].decode("utf-8"), offset + size
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"binpack string is not valid UTF-8: {exc}") from exc


def _unpack_array(
    data: bytes, offset: int, size: int, depth: int
) -> tuple[list, int]:
    if size > len(data) - offset:
        # Each element costs at least one byte; a declared count larger
        # than the remaining payload is a lie, not a big array.
        raise ProtocolError("binpack array length exceeds payload")
    unpack = _unpack_from
    items = []
    append = items.append
    for _ in range(size):
        item, offset = unpack(data, offset, depth + 1)
        append(item)
    return items, offset


def _unpack_map(
    data: bytes, offset: int, size: int, depth: int
) -> tuple[dict, int]:
    if size > (len(data) - offset) // 2:
        raise ProtocolError("binpack map length exceeds payload")
    length = len(data)
    memo = _KEY_MEMO
    unpack = _unpack_from
    mapping: dict[str, Any] = {}
    for _ in range(size):
        # Fast path for the overwhelmingly common case — a short fixstr
        # key — with a memo so repeated keys skip the UTF-8 decode.
        if offset < length and 0xA0 <= data[offset] <= 0xBF:
            end = offset + 1 + (data[offset] & 0x1F)
            if end > length:
                raise ProtocolError("binpack payload truncated in str body")
            raw = data[offset + 1:end]
            key = memo.get(raw)
            if key is None:
                key, _ = _unpack_str(data, offset + 1, len(raw))
                if len(memo) >= _KEY_MEMO_MAX:
                    memo.clear()
                memo[raw] = key
            offset = end
        else:
            key, offset = unpack(data, offset, depth + 1)
            if type(key) is not str:
                raise ProtocolError("binpack map keys must be strings")
        value, offset = unpack(data, offset, depth + 1)
        mapping[key] = value
    return mapping, offset


def unpack_payload(data: bytes) -> Any:
    """Decode a binpack payload; any malformation is a ProtocolError."""
    value, offset = _unpack_from(data, 0, 0)
    if offset != len(data):
        raise ProtocolError(
            f"binpack payload has {len(data) - offset} trailing bytes"
        )
    return value


# ---------------------------------------------------------------------------
# Protocol v2: length-prefixed binary framing
# ---------------------------------------------------------------------------
#: First byte of every v2 frame.  0xB2 is an invalid UTF-8 *start* byte
#: and can never begin a v1 JSON line, so cross-talk in either
#: direction is detected on the very first byte.
V2_MAGIC = 0xB2
#: Header layout: magic, version, reserved (must be 0), payload length.
V2_HEADER = struct.Struct("!BBHI")
V2_HEADER_BYTES = V2_HEADER.size


def encode_frame_v2(frame: Mapping[str, Any]) -> bytes:
    """Serialise one frame dict as a v2 binary frame (header + payload)."""
    payload_obj = dict(frame)
    payload_obj["v"] = PROTOCOL_VERSION_2
    payload = pack_payload(payload_obj)
    if V2_HEADER_BYTES + len(payload) > MAX_FRAME_BYTES_V2:
        raise ProtocolError(
            f"v2 frame of {V2_HEADER_BYTES + len(payload)} bytes exceeds "
            f"MAX_FRAME_BYTES_V2"
        )
    return (
        V2_HEADER.pack(V2_MAGIC, PROTOCOL_VERSION_2, 0, len(payload)) + payload
    )


def v2_payload_length(header: bytes) -> int:
    """Validate a v2 frame header, returning the declared payload length.

    Rejects truncated headers, wrong magic (including a v1 JSON line
    arriving on a negotiated-v2 connection — cross-talk), unknown
    versions, non-zero reserved bits, empty payloads, and lengths that
    would exceed :data:`MAX_FRAME_BYTES_V2` — all before any payload
    byte is read, so an attacker cannot make the server buffer garbage.
    """
    if len(header) != V2_HEADER_BYTES:
        raise ProtocolError(
            f"truncated v2 frame header ({len(header)} of "
            f"{V2_HEADER_BYTES} bytes)"
        )
    magic, version, reserved, length = V2_HEADER.unpack(header)
    if magic != V2_MAGIC:
        raise ProtocolError(
            f"bad v2 magic byte 0x{magic:02x} "
            "(v1 JSON on a negotiated-v2 connection?)"
        )
    if version != PROTOCOL_VERSION_2:
        raise ProtocolError(f"unsupported v2 header version {version}")
    if reserved != 0:
        raise ProtocolError("v2 header reserved bits must be zero")
    if length == 0:
        raise ProtocolError("v2 frame declares an empty payload")
    if V2_HEADER_BYTES + length > MAX_FRAME_BYTES_V2:
        raise ProtocolError(
            f"v2 frame declares {length} payload bytes, over the "
            f"{MAX_FRAME_BYTES_V2} byte limit"
        )
    return length


def decode_frame_v2(payload: bytes) -> dict:
    """Decode a v2 payload into a frame dict, validating the envelope."""
    frame = unpack_payload(payload)
    if not isinstance(frame, dict):
        raise ProtocolError(
            f"v2 frame must decode to a map, got {type(frame).__name__}"
        )
    version = frame.get("v")
    if version != PROTOCOL_VERSION_2:
        raise ProtocolError(
            f"unsupported protocol version {version!r} in v2 frame"
        )
    return frame


# ---------------------------------------------------------------------------
# Hello negotiation and decide-batch bodies
# ---------------------------------------------------------------------------
def hello_frame(frame_id: str, max_version: int = MAX_PROTOCOL_VERSION) -> dict:
    """The client's opening negotiation frame (always sent as v1 JSON)."""
    return request_frame(OP_HELLO, frame_id, max_version=max_version)


def negotiated_version(frame: Mapping[str, Any]) -> int:
    """Server side: the version this connection will speak after hello."""
    raw = frame.get("max_version")
    if isinstance(raw, bool) or not isinstance(raw, int) or raw < 1:
        raise ProtocolError("hello.max_version must be a positive integer")
    return min(raw, MAX_PROTOCOL_VERSION)


def hello_body_version(body: Any) -> int:
    """Client side: the validated ``version`` out of a hello response."""
    if not isinstance(body, dict):
        raise ProtocolError("hello response body must be an object")
    version = body.get("version")
    if isinstance(version, bool) or not isinstance(version, int) or version < 1:
        raise ProtocolError("hello response version must be a positive integer")
    return version


def batch_requests_of(frame: Mapping[str, Any]) -> list[DecisionRequest]:
    """Parse and validate *every* request of a ``decide-batch`` frame.

    All-or-nothing by design: one malformed entry rejects the whole
    frame before anything is submitted, so a partially-garbled batch
    can never be partially committed.
    """
    raw = frame.get("requests")
    if not isinstance(raw, list):
        raise ProtocolError("decide-batch.requests must be a list")
    if not raw:
        raise ProtocolError("decide-batch carries no requests")
    if len(raw) > MAX_WIRE_BATCH:
        raise ProtocolError(
            f"decide-batch of {len(raw)} requests exceeds the "
            f"{MAX_WIRE_BATCH} entry limit"
        )
    return [request_from_wire(item) for item in raw]


def batch_result_entries(frame: Mapping[str, Any], expected: int) -> list[dict]:
    """Client side: the validated per-entry results of a batch response."""
    raw = frame.get("results")
    if not isinstance(raw, list):
        raise ProtocolError("decide-batch response must carry a results list")
    if len(raw) != expected:
        raise ProtocolError(
            f"decide-batch response carries {len(raw)} results "
            f"for {expected} requests"
        )
    for entry in raw:
        if not isinstance(entry, dict):
            raise ProtocolError("decide-batch results entries must be objects")
    return raw

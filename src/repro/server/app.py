"""The asyncio TCP front end of the MSoD authorization service.

``MSoDServer`` binds a host/port, speaks the JSON-lines protocol of
:mod:`repro.server.protocol`, and forwards ``decide`` frames to a
:class:`~repro.server.service.AuthorizationService`.  The paper's
deployment shape (Section 5): applications keep their PEP, but the PDP
runs as a central service consulted over the network.

Connection handling rules:

* frames on one connection are answered in order (clients wanting
  concurrency open several pooled connections — see
  :class:`repro.client.RemotePDP`);
* malformed frames (bad JSON, bad UTF-8, unknown ops, invalid request
  bodies) get an ``error`` response and the connection stays open —
  a fuzzer must never take a worker down;
* an oversized frame cannot be resynchronised (the byte stream is
  corrupt mid-line), so it gets a final error frame and the connection
  is closed;
* overload and drain rejections are fast failures with ``retry_after``
  hints, the 503-equivalent of the wire protocol.
"""

from __future__ import annotations

import asyncio

from repro.errors import PolicyError, ProtocolError
from repro.server import protocol
from repro.server.service import (
    AuthorizationService,
    ServiceOverloadedError,
    ServiceUnavailableError,
)


class MSoDServer:
    """One listening socket in front of one authorization service.

    ``decide_gate``, when given, is called with every validated
    ``decide`` frame *before* the request is submitted; returning a
    response-frame dict short-circuits the decide (the dict is sent
    verbatim), returning ``None`` lets it proceed.  A cluster node uses
    this hook for epoch fencing, primary-role gating and exactly-once
    request deduplication without the base server knowing any of those
    concepts.
    """

    def __init__(
        self,
        service: AuthorizationService,
        host: str = "127.0.0.1",
        port: int = 0,
        decide_gate=None,
    ) -> None:
        self._service = service
        self._host = host
        self._port = port
        self._decide_gate = decide_gate
        self._server: asyncio.AbstractServer | None = None

    # ------------------------------------------------------------------
    @property
    def service(self) -> AuthorizationService:
        return self._service

    @property
    def port(self) -> int:
        """The bound port (useful when constructed with port 0)."""
        if self._server is None:
            return self._port
        sockets = self._server.sockets or []
        return sockets[0].getsockname()[1] if sockets else self._port

    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Start the shard workers and begin listening."""
        await self._service.start()
        self._server = await asyncio.start_server(
            self._handle_connection,
            self._host,
            self._port,
            limit=protocol.MAX_FRAME_BYTES,
        )

    async def stop(self) -> None:
        """Stop listening, drain queued decisions, flush the audit sink."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self._service.stop()

    async def abort(self) -> None:
        """Fault-injection stop: close the socket, abandon queued work."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self._service.abort()

    async def serve_forever(self) -> None:
        """Block until cancelled (the ``python -m repro serve`` loop)."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # Oversized frame: the stream cannot be resynced.
                    await self._send(
                        writer,
                        protocol.error_frame(
                            None,
                            protocol.ERR_PROTOCOL,
                            "frame exceeds size limit",
                        ),
                    )
                    break
                if not line:
                    break  # EOF (including one after a truncated frame)
                if not await self._handle_frame(writer, line):
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass  # client vanished mid-exchange; nothing to answer
        except asyncio.CancelledError:
            pass  # server teardown cancelled this connection; close it
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _handle_frame(
        self, writer: asyncio.StreamWriter, line: bytes
    ) -> bool:
        """Answer one frame; returns False when the connection must close."""
        frame_id = None
        try:
            frame = protocol.decode_frame(line)
            frame_id = frame.get("id")
            op = frame.get("op")
            if op == protocol.OP_DECIDE:
                await self._handle_decide(writer, frame_id, frame)
            elif op == protocol.OP_HEALTHZ:
                await self._send(
                    writer,
                    protocol.response_frame(
                        frame_id, op, "body", self._service.health()
                    ),
                )
            elif op == protocol.OP_METRICS:
                fmt = protocol.metrics_format_of(frame)
                body = (
                    self._service.metrics_text()
                    if fmt == protocol.METRICS_FORMAT_PROMETHEUS
                    else self._service.metrics()
                )
                await self._send(
                    writer,
                    protocol.response_frame(frame_id, op, "body", body),
                )
            elif op == protocol.OP_SLOWLOG:
                await self._send(
                    writer,
                    protocol.response_frame(
                        frame_id, op, "body", self._service.slowlog()
                    ),
                )
            elif op == protocol.OP_POLICY_STATUS:
                await self._send(
                    writer,
                    protocol.response_frame(
                        frame_id, op, "body", self._service.policy_status()
                    ),
                )
            elif op == protocol.OP_POLICY_RELOAD:
                await self._handle_policy_reload(writer, frame_id, frame)
            else:
                raise ProtocolError(f"unknown operation {op!r}")
        except ProtocolError as exc:
            await self._send(
                writer,
                protocol.error_frame(frame_id, protocol.ERR_PROTOCOL, str(exc)),
            )
        except (ConnectionResetError, BrokenPipeError):
            return False
        return True

    async def _handle_policy_reload(
        self, writer: asyncio.StreamWriter, frame_id, frame: dict
    ) -> None:
        """Parse, validate and atomically install a policy set.

        A rejected set (XML that does not parse, analyzer errors) gets
        an ``error.kind == "policy"`` response and leaves the active
        policy untouched.  Runs synchronously on the event loop between
        worker batches, so the swap cannot interleave with a
        half-evaluated micro-batch.
        """
        from repro.xmlpolicy import parse_policy_set

        xml = protocol.policy_xml_of(frame)
        try:
            policy_set = parse_policy_set(xml)
            report = self._service.reload_policy(policy_set)
        except PolicyError as exc:
            await self._send(
                writer,
                protocol.error_frame(frame_id, protocol.ERR_POLICY, str(exc)),
            )
            return
        await self._send(
            writer,
            protocol.response_frame(
                frame_id, protocol.OP_POLICY_RELOAD, "body", report.to_dict()
            ),
        )

    async def _handle_decide(
        self, writer: asyncio.StreamWriter, frame_id, frame: dict
    ) -> None:
        request = protocol.request_from_wire(frame.get("request"))
        if self._decide_gate is not None:
            short_circuit = self._decide_gate(frame_id, frame, request)
            if short_circuit is not None:
                await self._send(writer, short_circuit)
                return
        try:
            future = self._service.submit(request)
        except ServiceOverloadedError as exc:
            await self._send(
                writer,
                protocol.error_frame(
                    frame_id,
                    protocol.ERR_OVERLOADED,
                    str(exc),
                    retry_after=exc.retry_after,
                ),
            )
            return
        except ServiceUnavailableError as exc:
            await self._send(
                writer,
                protocol.error_frame(
                    frame_id, protocol.ERR_SHUTTING_DOWN, str(exc)
                ),
            )
            return
        try:
            decision = await future
        except Exception as exc:  # engine/store failure, not the client's
            await self._send(
                writer,
                protocol.error_frame(
                    frame_id,
                    protocol.ERR_INTERNAL,
                    f"{type(exc).__name__}: {exc}",
                ),
            )
            return
        await self._send(
            writer,
            protocol.response_frame(
                frame_id,
                protocol.OP_DECIDE,
                "decision",
                protocol.decision_to_wire(decision),
            ),
        )

    @staticmethod
    async def _send(writer: asyncio.StreamWriter, frame: dict) -> None:
        writer.write(protocol.encode_frame(frame))
        await writer.drain()

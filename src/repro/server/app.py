"""The asyncio TCP front end of the MSoD authorization service.

``MSoDServer`` binds a host/port, speaks the wire protocols of
:mod:`repro.server.protocol`, and forwards ``decide`` frames to a
:class:`~repro.server.service.AuthorizationService`.  The paper's
deployment shape (Section 5): applications keep their PEP, but the PDP
runs as a central service consulted over the network.

Connection handling rules:

* every connection starts in JSON-lines v1; a ``hello`` frame may
  upgrade it to the length-prefixed binary v2 encoding (same ops, plus
  ``decide-batch``) — v1 clients never send ``hello`` and see no
  change whatsoever;
* frames on one connection are answered in order (clients wanting
  concurrency open several pooled connections, or negotiate v2 and
  pipeline batched frames — see :class:`repro.client.RemotePDP`);
* malformed frames (bad JSON, bad UTF-8, unknown ops, invalid request
  bodies, garbled batch entries) get an ``error`` response and the
  connection stays open — a fuzzer must never take a worker down;
* a frame that corrupts the *stream* (an oversized v1 line, a v2
  header with a bad magic/length) cannot be resynchronised, so it gets
  a final error frame and the connection is closed;
* overload and drain rejections are fast failures with ``retry_after``
  hints, the 503-equivalent of the wire protocol.
"""

from __future__ import annotations

import asyncio

from repro.errors import PolicyError, ProtocolError, RequestFencedError
from repro.server import protocol
from repro.server.service import (
    AuthorizationService,
    ServiceOverloadedError,
    ServiceUnavailableError,
)

#: ``_handle_frame`` outcomes.
_CLOSE = 0
_CONTINUE = 1
_UPGRADE_V2 = 2

#: Per-connection bound on concurrently processing ``decide-batch``
#: frames.  Reads pause (TCP backpressure) once this many frames sit in
#: shard queues — comfortably above any client's pipeline window while
#: keeping one connection from monopolising the service.
_V2_INFLIGHT_FRAMES = 64


class MSoDServer:
    """One listening socket in front of one authorization service.

    ``decide_gate``, when given, is called with every validated
    ``decide`` frame *before* the request is submitted; returning a
    response-frame dict short-circuits the decide (the dict is sent
    verbatim), returning ``None`` lets it proceed.  A cluster node uses
    this hook for epoch fencing, primary-role gating and exactly-once
    request deduplication without the base server knowing any of those
    concepts.
    """

    def __init__(
        self,
        service: AuthorizationService,
        host: str = "127.0.0.1",
        port: int = 0,
        decide_gate=None,
    ) -> None:
        self._service = service
        self._host = host
        self._port = port
        self._decide_gate = decide_gate
        self._server: asyncio.AbstractServer | None = None

    # ------------------------------------------------------------------
    @property
    def service(self) -> AuthorizationService:
        return self._service

    @property
    def port(self) -> int:
        """The bound port (useful when constructed with port 0)."""
        if self._server is None:
            return self._port
        sockets = self._server.sockets or []
        return sockets[0].getsockname()[1] if sockets else self._port

    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Start the shard workers and begin listening."""
        await self._service.start()
        self._server = await asyncio.start_server(
            self._handle_connection,
            self._host,
            self._port,
            limit=protocol.MAX_FRAME_BYTES,
        )

    async def stop(self) -> None:
        """Stop listening, drain queued decisions, flush the audit sink."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self._service.stop()

    async def abort(self) -> None:
        """Fault-injection stop: close the socket, abandon queued work."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self._service.abort()

    async def serve_forever(self) -> None:
        """Block until cancelled (the ``python -m repro serve`` loop)."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # Oversized frame: the stream cannot be resynced.
                    await self._send(
                        writer,
                        protocol.error_frame(
                            None,
                            protocol.ERR_PROTOCOL,
                            "frame exceeds size limit",
                        ),
                    )
                    break
                if not line:
                    break  # EOF (including one after a truncated frame)
                outcome = await self._handle_frame(writer, line)
                if outcome == _CLOSE:
                    break
                if outcome == _UPGRADE_V2:
                    # The hello response is on the wire; every byte from
                    # here on is length-prefixed binary, both directions.
                    await self._serve_v2(reader, writer)
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass  # client vanished mid-exchange; nothing to answer
        except asyncio.CancelledError:
            pass  # server teardown cancelled this connection; close it
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _handle_frame(self, writer: asyncio.StreamWriter, line: bytes) -> int:
        """Answer one v1 frame; returns a ``_CLOSE``/``_CONTINUE``/
        ``_UPGRADE_V2`` outcome for the connection loop."""
        frame_id = None
        perf = self._service.perf
        try:
            if perf.enabled:
                perf.incr("wire.bytes_in", len(line))
                perf.incr("wire.frames_in")
                started = perf.start()
                frame = protocol.decode_frame(line)
                perf.stop("wire.decode_s", started)
            else:
                frame = protocol.decode_frame(line)
            frame_id = frame.get("id")
            op = frame.get("op")
            if op == protocol.OP_HELLO:
                version = protocol.negotiated_version(frame)
                await self._send(
                    writer,
                    protocol.response_frame(
                        frame_id,
                        op,
                        "body",
                        {
                            "version": version,
                            "max_batch": protocol.MAX_WIRE_BATCH,
                            "max_frame_bytes": protocol.MAX_FRAME_BYTES_V2,
                        },
                    ),
                )
                if version >= protocol.PROTOCOL_VERSION_2:
                    return _UPGRADE_V2
                return _CONTINUE
            await self._dispatch(writer, frame_id, op, frame, v2=False)
        except ProtocolError as exc:
            await self._send(
                writer,
                protocol.error_frame(frame_id, protocol.ERR_PROTOCOL, str(exc)),
            )
        except (ConnectionResetError, BrokenPipeError):
            return _CLOSE
        return _CONTINUE

    async def _serve_v2(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """The post-hello loop: length-prefixed binary frames only.

        Framing errors (bad magic — e.g. a stray v1 JSON line — bad
        lengths, truncated prefixes) corrupt the stream and close the
        connection after a final error frame; *payload* errors (garbled
        binpack, unknown ops, malformed batch entries) leave the stream
        in sync — exactly the declared length was consumed — so they
        are answered and the connection stays open.

        ``decide-batch`` frames are handled *concurrently* (bounded by
        ``_V2_INFLIGHT_FRAMES``): the read loop keeps draining while
        earlier batches sit in shard queues, so a pipelining client's
        in-flight window actually overlaps on the server instead of
        serialising one round trip per frame.  Responses may therefore
        leave out of frame order — clients correlate by frame id.
        """
        perf = self._service.perf
        gate = asyncio.Semaphore(_V2_INFLIGHT_FRAMES)
        in_flight: set[asyncio.Task] = set()
        try:
            await self._serve_v2_frames(reader, writer, perf, gate, in_flight)
        finally:
            for task in in_flight:
                task.cancel()
            if in_flight:
                await asyncio.gather(*in_flight, return_exceptions=True)

    async def _serve_v2_frames(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        perf,
        gate: asyncio.Semaphore,
        in_flight: set,
    ) -> None:
        while True:
            try:
                header = await reader.readexactly(protocol.V2_HEADER_BYTES)
            except asyncio.IncompleteReadError:
                # EOF — clean, or after a truncated header; either way
                # there is no frame id to answer and nothing to resync.
                return
            try:
                length = protocol.v2_payload_length(header)
            except ProtocolError as exc:
                await self._send(
                    writer,
                    protocol.error_frame(None, protocol.ERR_PROTOCOL, str(exc)),
                    v2=True,
                )
                return
            try:
                payload = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                return  # frame truncated at EOF; the connection is gone
            frame_id = None
            try:
                if perf.enabled:
                    perf.incr(
                        "wire.bytes_in", protocol.V2_HEADER_BYTES + length
                    )
                    perf.incr("wire.frames_in")
                    started = perf.start()
                    frame = protocol.decode_frame_v2(payload)
                    perf.stop("wire.decode_s", started)
                else:
                    frame = protocol.decode_frame_v2(payload)
                frame_id = frame.get("id")
                op = frame.get("op")
                if op == protocol.OP_DECIDE_BATCH:
                    await gate.acquire()
                    task = asyncio.ensure_future(
                        self._decide_batch_task(writer, frame_id, frame, gate)
                    )
                    in_flight.add(task)
                    task.add_done_callback(in_flight.discard)
                elif op == protocol.OP_HELLO:
                    # Redundant re-negotiation; stays v2 either way.
                    protocol.negotiated_version(frame)
                    await self._send(
                        writer,
                        protocol.response_frame(
                            frame_id,
                            op,
                            "body",
                            {
                                "version": protocol.PROTOCOL_VERSION_2,
                                "max_batch": protocol.MAX_WIRE_BATCH,
                                "max_frame_bytes": protocol.MAX_FRAME_BYTES_V2,
                            },
                        ),
                    )
                else:
                    await self._dispatch(writer, frame_id, op, frame, v2=True)
            except ProtocolError as exc:
                await self._send(
                    writer,
                    protocol.error_frame(
                        frame_id, protocol.ERR_PROTOCOL, str(exc)
                    ),
                    v2=True,
                )
            except (ConnectionResetError, BrokenPipeError):
                return

    async def _dispatch(
        self,
        writer: asyncio.StreamWriter,
        frame_id,
        op,
        frame: dict,
        v2: bool,
    ) -> None:
        """The op switch shared by the v1 and v2 connection loops."""
        if op == protocol.OP_DECIDE:
            await self._handle_decide(writer, frame_id, frame, v2=v2)
        elif op == protocol.OP_HEALTHZ:
            await self._send(
                writer,
                protocol.response_frame(
                    frame_id, op, "body", self._service.health()
                ),
                v2=v2,
            )
        elif op == protocol.OP_METRICS:
            fmt = protocol.metrics_format_of(frame)
            body = (
                self._service.metrics_text()
                if fmt == protocol.METRICS_FORMAT_PROMETHEUS
                else self._service.metrics()
            )
            await self._send(
                writer,
                protocol.response_frame(frame_id, op, "body", body),
                v2=v2,
            )
        elif op == protocol.OP_SLOWLOG:
            await self._send(
                writer,
                protocol.response_frame(
                    frame_id, op, "body", self._service.slowlog()
                ),
                v2=v2,
            )
        elif op == protocol.OP_POLICY_STATUS:
            await self._send(
                writer,
                protocol.response_frame(
                    frame_id, op, "body", self._service.policy_status()
                ),
                v2=v2,
            )
        elif op == protocol.OP_POLICY_RELOAD:
            await self._handle_policy_reload(writer, frame_id, frame, v2=v2)
        elif op == protocol.OP_VERIFY:
            await self._handle_verify(writer, frame_id, frame, v2=v2)
        elif op == protocol.OP_WHATIF:
            await self._handle_whatif(writer, frame_id, frame, v2=v2)
        else:
            raise ProtocolError(f"unknown operation {op!r}")

    async def _handle_policy_reload(
        self, writer: asyncio.StreamWriter, frame_id, frame: dict, v2: bool = False
    ) -> None:
        """Parse, validate and atomically install a policy set.

        A rejected set (XML that does not parse, analyzer errors, a
        failed ``verify`` gate) gets an ``error.kind == "policy"``
        response and leaves the active policy untouched.  Runs
        synchronously on the event loop between worker batches, so the
        swap cannot interleave with a half-evaluated micro-batch.
        """
        from repro.xmlpolicy import parse_policy_set

        xml = protocol.policy_xml_of(frame)
        verify, max_flips, force = protocol.reload_options_of(frame)
        principal = protocol.reload_principal_of(frame)
        try:
            policy_set = parse_policy_set(xml)
            report = self._service.reload_policy(
                policy_set,
                verify=verify,
                max_flips=max_flips,
                force=force,
                principal=principal,
            )
        except PolicyError as exc:
            await self._send(
                writer,
                protocol.error_frame(frame_id, protocol.ERR_POLICY, str(exc)),
                v2=v2,
            )
            return
        body = report.to_dict()
        if verify and self._service.last_gate is not None:
            body["gate"] = self._service.last_gate.to_dict()
        await self._send(
            writer,
            protocol.response_frame(
                frame_id, protocol.OP_POLICY_RELOAD, "body", body
            ),
            v2=v2,
        )

    async def _handle_verify(
        self, writer: asyncio.StreamWriter, frame_id, frame: dict, v2: bool = False
    ) -> None:
        """Static verification of a candidate set, without swapping it."""
        from repro.xmlpolicy import parse_policy_set

        xml = protocol.policy_xml_of(frame)
        try:
            policy_set = parse_policy_set(xml)
            report = self._service.verify_policy(policy_set)
        except PolicyError as exc:
            await self._send(
                writer,
                protocol.error_frame(frame_id, protocol.ERR_POLICY, str(exc)),
                v2=v2,
            )
            return
        await self._send(
            writer,
            protocol.response_frame(
                frame_id, protocol.OP_VERIFY, "body", report.to_dict()
            ),
            v2=v2,
        )

    async def _handle_whatif(
        self, writer: asyncio.StreamWriter, frame_id, frame: dict, v2: bool = False
    ) -> None:
        """Differential replay of this server's trail under a candidate.

        Runs synchronously on the event loop (like a reload): the trail
        read sees a consistent prefix and the answer reflects every
        decision acked before this frame.
        """
        from repro.xmlpolicy import parse_policy_set

        xml = protocol.policy_xml_of(frame)
        try:
            policy_set = parse_policy_set(xml)
            report = self._service.what_if(policy_set)
        except PolicyError as exc:
            await self._send(
                writer,
                protocol.error_frame(frame_id, protocol.ERR_POLICY, str(exc)),
                v2=v2,
            )
            return
        await self._send(
            writer,
            protocol.response_frame(
                frame_id, protocol.OP_WHATIF, "body", report.to_dict()
            ),
            v2=v2,
        )

    async def _handle_decide(
        self, writer: asyncio.StreamWriter, frame_id, frame: dict, v2: bool = False
    ) -> None:
        request = protocol.request_from_wire(frame.get("request"))
        if self._decide_gate is not None:
            short_circuit = self._decide_gate(frame_id, frame, request)
            if short_circuit is not None:
                await self._send(writer, short_circuit, v2=v2)
                return
        try:
            future = self._service.submit(request)
        except ServiceOverloadedError as exc:
            await self._send(
                writer,
                protocol.error_frame(
                    frame_id,
                    protocol.ERR_OVERLOADED,
                    str(exc),
                    retry_after=exc.retry_after,
                ),
                v2=v2,
            )
            return
        except ServiceUnavailableError as exc:
            await self._send(
                writer,
                protocol.error_frame(
                    frame_id, protocol.ERR_SHUTTING_DOWN, str(exc)
                ),
                v2=v2,
            )
            return
        try:
            decision = await future
        except RequestFencedError as exc:
            # The audit sink refused the commit (the user was fenced
            # mid-flight by a failover or reshard cutover): the client
            # never saw an ack, so it may re-route and resend safely.
            await self._send(
                writer,
                protocol.error_frame(
                    frame_id, protocol.ERR_FENCED, str(exc)
                ),
                v2=v2,
            )
            return
        except Exception as exc:  # engine/store failure, not the client's
            await self._send(
                writer,
                protocol.error_frame(
                    frame_id,
                    protocol.ERR_INTERNAL,
                    f"{type(exc).__name__}: {exc}",
                ),
                v2=v2,
            )
            return
        await self._send(
            writer,
            protocol.response_frame(
                frame_id,
                protocol.OP_DECIDE,
                "decision",
                protocol.decision_to_wire(decision),
            ),
            v2=v2,
        )

    async def _decide_batch_task(
        self, writer: asyncio.StreamWriter, frame_id, frame: dict, gate
    ) -> None:
        """One concurrently-running ``decide-batch`` frame.

        Mirrors the connection loop's error discipline: a payload-level
        ``ProtocolError`` (malformed batch) is answered and the stream
        stays open; a vanished client is ignored.  Always releases its
        in-flight slot so the read loop can admit the next frame.
        """
        try:
            await self._handle_decide_batch(writer, frame_id, frame)
        except ProtocolError as exc:
            try:
                await self._send(
                    writer,
                    protocol.error_frame(
                        frame_id, protocol.ERR_PROTOCOL, str(exc)
                    ),
                    v2=True,
                )
            except (ConnectionResetError, BrokenPipeError):
                pass
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            gate.release()

    async def _handle_decide_batch(
        self, writer: asyncio.StreamWriter, frame_id, frame: dict
    ) -> None:
        """Answer one ``decide-batch`` frame with per-entry results.

        The whole batch is parsed before anything is submitted (one
        garbled entry rejects the frame — never a partial commit), then
        every entry is enqueued on its user's shard *in frame order*
        before the first await, so same-user entries keep their
        serialization and the shard micro-batcher sees the burst at
        once — one store transaction per wire batch under load.
        Per-entry failures (overload shed, gate fencing, engine errors)
        fail only their own slot.
        """
        requests = protocol.batch_requests_of(frame)
        perf = self._service.perf
        if perf.enabled:
            perf.observe_size("wire.batch_size", len(requests))
        results: list[dict | None] = []
        pending: list[tuple[int, asyncio.Future]] = []
        gate = self._decide_gate
        for request in requests:
            if gate is not None:
                short_circuit = gate(frame_id, frame, request)
                if short_circuit is not None:
                    results.append(_batch_entry_of(short_circuit))
                    continue
            try:
                future = self._service.submit(request)
            except ServiceOverloadedError as exc:
                results.append(
                    {
                        "ok": False,
                        "error": {
                            "kind": protocol.ERR_OVERLOADED,
                            "detail": str(exc),
                            "retry_after": exc.retry_after,
                        },
                    }
                )
                continue
            except ServiceUnavailableError as exc:
                results.append(
                    {
                        "ok": False,
                        "error": {
                            "kind": protocol.ERR_SHUTTING_DOWN,
                            "detail": str(exc),
                        },
                    }
                )
                continue
            pending.append((len(results), future, request))
            results.append(None)
        if pending:
            outcomes = await asyncio.gather(
                *(future for _, future, _ in pending), return_exceptions=True
            )
            for (slot, _, request), outcome in zip(pending, outcomes):
                if isinstance(outcome, RequestFencedError):
                    results[slot] = {
                        "ok": False,
                        "error": {
                            "kind": protocol.ERR_FENCED,
                            "detail": str(outcome),
                        },
                    }
                elif isinstance(outcome, BaseException):
                    results[slot] = {
                        "ok": False,
                        "error": {
                            "kind": protocol.ERR_INTERNAL,
                            "detail": f"{type(outcome).__name__}: {outcome}",
                        },
                    }
                else:
                    results[slot] = {
                        "ok": True,
                        "decision": protocol.decision_to_wire_delta(
                            outcome, request
                        ),
                    }
        await self._send(
            writer,
            {
                "v": protocol.PROTOCOL_VERSION_2,
                "id": frame_id,
                "ok": True,
                "op": protocol.OP_DECIDE_BATCH,
                "results": results,
            },
            v2=True,
        )

    async def _send(
        self, writer: asyncio.StreamWriter, frame: dict, v2: bool = False
    ) -> None:
        perf = self._service.perf
        if perf.enabled:
            started = perf.start()
            data = (
                protocol.encode_frame_v2(frame)
                if v2
                else protocol.encode_frame(frame)
            )
            perf.stop("wire.encode_s", started)
            perf.incr("wire.bytes_out", len(data))
            perf.incr("wire.frames_out")
        else:
            data = (
                protocol.encode_frame_v2(frame)
                if v2
                else protocol.encode_frame(frame)
            )
        writer.write(data)
        await writer.drain()


def _batch_entry_of(short_circuit: dict) -> dict:
    """Map a decide-gate short-circuit response frame to a batch entry."""
    if short_circuit.get("ok"):
        return {"ok": True, "decision": short_circuit.get("decision")}
    error = short_circuit.get("error")
    if not isinstance(error, dict):  # pragma: no cover - defensive
        error = {"kind": protocol.ERR_INTERNAL, "detail": "gate rejected"}
    return {"ok": False, "error": error}

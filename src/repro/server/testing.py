"""Test/bench harness: run an :class:`MSoDServer` on a background thread.

Synchronous callers (pytest, the closed-loop bench driver, the CI smoke
job) need a live server without owning an event loop.  ``ServerThread``
spins a private loop in a daemon thread, starts the server on it, and
tears everything down — including the graceful service drain and any
``owns=[...]`` resources (stores, recorders) handed to it — on
``stop()`` / context-manager exit.

Most callers should not construct this directly: use
:func:`repro.api.open_server`, which builds the engine + service from a
policy/store spec and returns a handle wrapping this class.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Sequence

from repro.server.app import MSoDServer
from repro.server.service import AuthorizationService


class ServerThread:
    """A live authorization server on its own event-loop thread.

    Usage::

        service = AuthorizationService(engine, n_shards=4)
        with ServerThread(service, owns=[engine.store]) as server:
            pdp = RemotePDP(server.host, server.port)
            ...

    ``owns`` lists resources whose ``close()`` the thread calls after
    the drain, so test fixtures cannot leak stores on assertion failure.
    """

    def __init__(
        self,
        service: AuthorizationService,
        host: str = "127.0.0.1",
        port: int = 0,
        owns: Sequence[object] = (),
        decide_gate=None,
    ) -> None:
        self._server = MSoDServer(
            service, host=host, port=port, decide_gate=decide_gate
        )
        self._host = host
        self._owns = tuple(owns)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        return self._host

    @property
    def port(self) -> int:
        return self._server.port

    @property
    def service(self) -> AuthorizationService:
        return self._server.service

    # ------------------------------------------------------------------
    def start(self) -> "ServerThread":
        """Boot the loop thread; blocks until the socket is listening."""
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._run, name="msod-server", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):  # pragma: no cover - hang guard
            raise RuntimeError("server thread failed to start in time")
        if self._startup_error is not None:
            self._thread.join()
            raise self._startup_error
        return self

    def reload_policy(
        self,
        policy_set,
        *,
        verify: bool = False,
        max_flips: int = 0,
        force: bool = False,
        principal: str | None = None,
    ):
        """Thread-safe policy swap: runs the reload on the loop thread.

        Scheduling the swap as a loop callback (like the wire handler)
        keeps it serialized with the shard workers' micro-batches.
        Returns the :class:`~repro.core.policy_epoch.PolicySwapReport`.
        The keyword options mirror
        :meth:`~repro.server.service.AuthorizationService.reload_policy`.
        """
        if self._loop is None:
            raise RuntimeError("server thread is not running")

        async def _swap():
            return self._server.service.reload_policy(
                policy_set,
                verify=verify,
                max_flips=max_flips,
                force=force,
                principal=principal,
            )

        return asyncio.run_coroutine_threadsafe(_swap(), self._loop).result(
            timeout=30
        )

    def stop(self) -> None:
        """Stop listening, drain in-flight decisions, join the thread."""
        if self._thread is None or self._loop is None:
            return
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30)
        self._thread = None
        for resource in self._owns:
            close = getattr(resource, "close", None)
            if callable(close):
                close()

    def kill(self) -> None:
        """Fault-injection stop: no drain, queued decisions abandoned.

        As close to ``kill -9`` as an in-process server gets: the
        listening socket closes, shard workers are cancelled at their
        next await point, and requests still queued never get answers
        (their clients see the connection drop).  Owned resources are
        still closed afterwards so test fixtures do not leak file
        handles — by then the \"crashed\" node has already stopped
        answering, which is what the failover harness observes.
        """
        if self._thread is None or self._loop is None:
            return
        future = asyncio.run_coroutine_threadsafe(
            self._server.abort(), self._loop
        )
        try:
            future.result(timeout=30)
        except Exception:  # pragma: no cover - abort is best-effort
            pass
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30)
        self._thread = None
        for resource in self._owns:
            close = getattr(resource, "close", None)
            if callable(close):
                close()

    def _run(self) -> None:
        loop = self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(self._server.start())
        except BaseException as exc:  # pragma: no cover - startup failure
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(self._server.stop())
            # Open connection handlers (e.g. clients of a killed server)
            # must be cancelled before the loop closes, or their
            # teardown runs against a closed loop and warns.
            pending = [
                task for task in asyncio.all_tasks(loop) if not task.done()
            ]
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.close()

    # ------------------------------------------------------------------
    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

"""repro.server — the networked MSoD authorization service.

The paper deploys MSoD enforcement as a PERMIS PDP *service* that
applications consult over a network (Section 5); this package is that
deployment shape for the reproduction:

* :mod:`repro.server.protocol` — the versioned JSON-lines wire format.
* :class:`~repro.server.service.AuthorizationService` — the sharded,
  batching, admission-controlled core (transport-independent).
* :class:`~repro.server.app.MSoDServer` — the asyncio TCP front end.
* :class:`~repro.server.testing.ServerThread` — a background-thread
  harness for tests, benchmarks and smoke checks.

See ``docs/SERVING.md`` for the architecture, the sharding invariant
and the overload semantics.
"""

from repro.server.app import MSoDServer
from repro.server.service import (
    AuthorizationService,
    ServiceOverloadedError,
    ServiceUnavailableError,
    ShardStats,
    shard_of,
)
from repro.server.testing import ServerThread

__all__ = [
    "AuthorizationService",
    "MSoDServer",
    "ServerThread",
    "ServiceOverloadedError",
    "ServiceUnavailableError",
    "ShardStats",
    "shard_of",
]

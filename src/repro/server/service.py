"""The sharded MSoD authorization service (transport-independent core).

One service owns one :class:`~repro.core.engine.MSoDEngine` and its
retained-ADI store, and dispatches every decision request to one of
``n_shards`` worker queues keyed by the requesting user::

    shard = crc32(user_id) % n_shards

Decisions for the *same* user are therefore strictly serialized — the
property that keeps retained-ADI history evaluation race-free without
any cross-request locking — while distinct users proceed concurrently
across shards.  (The MSoD algorithm's history reads and its grant
commit are per-user state transitions; interleaving two requests of one
user could read stale history between another's read and commit.)

Workers drain their queues in *adaptive micro-batches*: whatever is
queued when the worker wakes, capped at ``batch_max``, is evaluated
under a single ``store.batch()`` — one SQLite transaction (one fsync)
per batch under load, one per decision when idle.  Under sustained
load (tracked by a per-worker EMA of recent batch sizes) a worker
additionally lingers for a short *gather window* before deciding, so
requests still in flight through connection handlers join the same
batch.  The window scales with the shard count — more shards spread
the same arrival stream thinner, so each worker must wait slightly
longer to see the same batch occupancy — and is skipped entirely when
recent batches show no queueing, keeping idle latency at one event-loop
hop.

Admission control is applied at submit time: every shard queue is
bounded, and a full queue rejects immediately with a ``retry_after``
hint instead of growing without bound (the 503-equivalent).  Shutdown
is graceful: submission stops, queued work drains, the audit sink is
flushed, then workers exit.
"""

from __future__ import annotations

import asyncio
import zlib
from typing import TYPE_CHECKING, Callable

from repro.core.decision import Decision, DecisionRequest
from repro.core.engine import MSoDEngine
from repro.core.policy import MSoDPolicySet
from repro.core.policy_epoch import PolicySwapReport
from repro.errors import PolicyError, ReproError
from repro.obs.metrics import MetricsRegistry
from repro.perf import NOOP, PerfRecorder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.audit.trail import AuditTrailManager
    from repro.verify.gate import GateResult
    from repro.verify.static import VerifyReport
    from repro.verify.whatif import WhatIfReport


class ServiceOverloadedError(ReproError):
    """A shard queue was full; the request was shed before queueing."""

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class ServiceUnavailableError(ReproError):
    """The service is not accepting requests (not started or draining)."""


#: Gather-window scaling: per-shard contribution, hard ceiling, the
#: sleep slice the lingering worker polls at, and the batch-size EMA a
#: worker must see before it lingers at all.
_GATHER_WINDOW_PER_SHARD = 0.0005
_GATHER_WINDOW_MAX = 0.002
_GATHER_SLICE = 0.0002
_GATHER_EMA_THRESHOLD = 1.25


def shard_of(user_id: str, n_shards: int) -> int:
    """The shard index a user's decisions are serialized on.

    ``crc32`` rather than ``hash()``: deterministic across processes
    (``hash(str)`` is salted per interpreter), cheap, and uniform enough
    for queue balancing.
    """
    return zlib.crc32(user_id.encode("utf-8")) % n_shards


class ShardStats:
    """Monotonic per-shard counters, snapshot by ``/metrics``."""

    __slots__ = ("submitted", "completed", "rejected", "batches", "max_batch")

    def __init__(self) -> None:
        self.submitted = 0
        self.completed = 0
        self.rejected = 0
        self.batches = 0
        self.max_batch = 0

    def to_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "rejected": self.rejected,
            "batches": self.batches,
            "max_batch": self.max_batch,
        }


class AuthorizationService:
    """Sharded, batching front end over one :class:`MSoDEngine`.

    Parameters
    ----------
    engine:
        The MSoD engine; its store is shared by all shard workers (the
        SQLite store's single-lock discipline makes that safe).
    n_shards:
        Number of worker queues.  Decisions of one user always land on
        the same shard.
    queue_depth:
        Bound of each shard queue; a full queue sheds load.
    batch_max:
        Cap on one worker micro-batch (and on the span of one SQLite
        transaction).
    gather_window:
        Seconds a loaded worker lingers to let in-flight requests join
        its micro-batch.  ``None`` (the default) adapts to the shard
        count (``0.5 ms × n_shards``, capped at 2 ms); ``0.0`` disables
        lingering entirely.  Idle workers never linger regardless —
        the window is gated on an EMA of recent batch sizes.
    retry_after:
        Hint (seconds) returned with overload rejections.
    audit_sink:
        Optional callable receiving every decision made; if it has a
        ``flush`` method it is called on graceful drain.
    perf:
        Optional recorder for service-level counters/timings.
    health_extra:
        Optional callable returning extra keys merged into the
        ``healthz`` body (a cluster node reports its role and epoch
        this way).
    trail_reader:
        Optional callable returning a *fresh* read-only
        :class:`~repro.audit.trail.AuditTrailManager` over this
        server's recorded trail (or ``None`` when no trail exists yet).
        Enables the ``whatif`` verb and the what-if half of verified
        reloads; without it only static verification runs.
    """

    def __init__(
        self,
        engine: MSoDEngine,
        n_shards: int = 4,
        queue_depth: int = 256,
        batch_max: int = 32,
        gather_window: float | None = None,
        retry_after: float = 0.05,
        audit_sink: Callable[[Decision], None] | None = None,
        perf: PerfRecorder | None = None,
        health_extra: Callable[[], dict] | None = None,
        trail_reader: "Callable[[], AuditTrailManager | None] | None" = None,
    ) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if batch_max < 1:
            raise ValueError("batch_max must be >= 1")
        if gather_window is None:
            gather_window = min(
                _GATHER_WINDOW_MAX, _GATHER_WINDOW_PER_SHARD * n_shards
            )
        if gather_window < 0:
            raise ValueError("gather_window must be >= 0")
        self._engine = engine
        self._n_shards = n_shards
        self._queue_depth = queue_depth
        self._batch_max = batch_max
        self._gather_window = gather_window
        self._retry_after = retry_after
        self._audit_sink = audit_sink
        self._health_extra = health_extra
        self._trail_reader = trail_reader
        self._perf = perf if perf is not None else NOOP
        self._queues: list[asyncio.Queue] = []
        self._workers: list[asyncio.Task] = []
        self._stats = [ShardStats() for _ in range(n_shards)]
        self._accepting = False
        self._started = False
        self._registry: MetricsRegistry | None = None
        self._policy_reloads = 0
        self._last_findings: tuple[str, ...] = ()
        self._last_gate: "GateResult | None" = None
        self._verify_counts: dict[str, int] = {}
        self._whatif_flips = 0

    # ------------------------------------------------------------------
    @property
    def engine(self) -> MSoDEngine:
        return self._engine

    @property
    def n_shards(self) -> int:
        return self._n_shards

    @property
    def accepting(self) -> bool:
        return self._accepting

    @property
    def gather_window(self) -> float:
        """Seconds a loaded shard worker lingers to grow its batch."""
        return self._gather_window

    @property
    def perf(self) -> PerfRecorder:
        return self._perf

    def queue_depths(self) -> list[int]:
        """Current per-shard backlog (0s before start)."""
        return [queue.qsize() for queue in self._queues]

    def health(self) -> dict:
        """The ``/healthz`` body: status plus per-shard backlog."""
        body = {
            "status": "ok" if self._accepting else "draining",
            "shards": self._n_shards,
            "queue_depth_limit": self._queue_depth,
            "queue_depths": self.queue_depths(),
        }
        if self._health_extra is not None:
            body.update(self._health_extra())
        return body

    def metrics(self) -> dict:
        """The ``/metrics`` JSON body: perf, per-shard and store stats."""
        return {
            "shards": [stats.to_dict() for stats in self._stats],
            "queue_depths": self.queue_depths(),
            "perf": self._perf.snapshot(),
            "store": self._engine.store.stats(),
        }

    def metrics_registry(self) -> MetricsRegistry:
        """The Prometheus registry over this service (built once).

        Exposes the service's perf recorder *and* the engine's (merged
        when they are the same object), plus per-shard gauges: queue
        depth (current backlog), the queue-depth limit, and the
        monotonic submitted/completed/rejected (shed)/batch counters.
        """
        if self._registry is not None:
            return self._registry
        registry = MetricsRegistry()
        registry.register_perf(self._perf)
        registry.register_perf(self._engine.perf)

        def per_shard(value_of) -> "list[tuple[dict[str, str], float]]":
            return [
                ({"shard": str(index)}, value_of(index))
                for index in range(self._n_shards)
            ]

        def depth_of(index: int) -> int:
            return self._queues[index].qsize() if self._queues else 0

        registry.register_gauge(
            "shard_queue_depth",
            "Requests currently queued on each shard.",
            lambda: per_shard(depth_of),
        )
        registry.register_gauge(
            "shard_queue_depth_limit",
            "Bound of each shard queue (overload sheds beyond it).",
            lambda: float(self._queue_depth),
        )
        registry.register_gauge(
            "shard_max_batch",
            "Largest micro-batch each shard worker has drained.",
            lambda: per_shard(lambda i: self._stats[i].max_batch),
        )
        def store_stat(key: str) -> float:
            return float(self._engine.store.stats().get(key, 0))

        registry.register_gauge(
            "store_resident_users",
            "User aggregates resident in the store's hot layer.",
            lambda: store_stat("resident_users"),
        )
        registry.register_counter(
            "store_evictions_total",
            "Hot-layer user aggregates evicted to the warm layer.",
            lambda: store_stat("evictions"),
        )
        registry.register_counter(
            "store_hydrations_total",
            "Cold user aggregates hydrated from the warm layer.",
            lambda: store_stat("hydrations"),
        )
        registry.register_gauge(
            "policy_epoch",
            "Epoch of the policy set decisions are currently made under.",
            lambda: float(self._engine.policy_epoch),
        )
        registry.register_counter(
            "policy_reloads_total",
            "Completed policy hot-reloads that changed the active set.",
            lambda: float(self._policy_reloads),
        )
        registry.register_counter(
            "verify_findings_total",
            "Static verification findings observed, by severity.",
            lambda: [
                ({"severity": severity}, float(self._verify_counts.get(severity, 0)))
                for severity in ("error", "warning", "info")
            ],
        )
        registry.register_counter(
            "whatif_flips_total",
            "Decision flips observed across what-if replays.",
            lambda: float(self._whatif_flips),
        )
        for attr, help_text in (
            ("submitted", "Requests admitted to each shard queue."),
            ("completed", "Decisions completed by each shard worker."),
            ("rejected", "Requests shed by each full shard queue."),
            ("batches", "Micro-batches drained by each shard worker."),
        ):
            registry.register_counter(
                f"shard_{attr}_total",
                help_text,
                lambda attr=attr: per_shard(
                    lambda i: getattr(self._stats[i], attr)
                ),
            )
        self._registry = registry
        return registry

    def metrics_text(self) -> str:
        """The ``metrics`` body in Prometheus text exposition format."""
        return self.metrics_registry().render()

    def policy_status(self) -> dict:
        """The ``policy-status`` body: version, reload count, findings.

        ``findings`` carries the analyzer output of the most recent
        successful swap (empty before the first reload) so operators
        can see outstanding warnings without replaying the reload.
        """
        version = self._engine.policy_version()
        return {
            "version": version.to_dict(),
            "reloads": self._policy_reloads,
            "findings": list(self._last_findings),
            # Additive: per-kind constraint census of the active epoch
            # (old clients ignore it; old servers simply omit it).
            "constraint_kinds": self._engine.compiled_matcher.constraint_kind_counts,
        }

    @property
    def last_gate(self) -> "GateResult | None":
        """The gate verdict of the most recent verified reload attempt."""
        return self._last_gate

    def _open_trails(self) -> "AuditTrailManager | None":
        if self._trail_reader is None:
            return None
        return self._trail_reader()

    def _note_verify(self, report: "VerifyReport") -> None:
        for severity, count in report.counts_by_severity().items():
            self._verify_counts[severity] = (
                self._verify_counts.get(severity, 0) + count
            )

    def verify_policy(self, policy_set: MSoDPolicySet) -> "VerifyReport":
        """Run the structured static analyzer over a candidate set."""
        from repro.verify.static import analyze_policy_set

        report = analyze_policy_set(policy_set)
        self._note_verify(report)
        return report

    def what_if(self, policy_set: MSoDPolicySet) -> "WhatIfReport":
        """Differentially replay this server's trail under a candidate.

        Raises :class:`~repro.errors.PolicyError` when the server has no
        recorded audit trail to replay.
        """
        from repro.verify.whatif import what_if_replay

        trails = self._open_trails()
        if trails is None:
            raise PolicyError(
                "what-if replay needs a recorded audit trail "
                "(this server has none)"
            )
        report = what_if_replay(
            trails,
            policy_set,
            policy_resolver=self._engine.policy_set_for_epoch,
        )
        self._whatif_flips += report.flip_count
        return report

    def reload_policy(
        self,
        policy_set: MSoDPolicySet,
        *,
        verify: bool = False,
        max_flips: int = 0,
        force: bool = False,
        principal: str | None = None,
    ) -> PolicySwapReport:
        """Atomically swap the engine's policy set (see ``swap_policy``).

        Must run on the service's event loop (the wire handler already
        does; thread-side callers go through
        :meth:`~repro.server.testing.ServerThread.reload_policy`).  That
        makes the swap trivially atomic with respect to decisions:
        :meth:`_run_batch` never awaits mid-batch, so the loop never
        interleaves a swap into a half-evaluated batch — and the
        engine's one-tuple-read discipline protects even multi-threaded
        embedders.

        With ``verify=True`` the full verification gate runs first:
        static analysis plus — when this server records an audit trail —
        the differential what-if replay.  Error-severity findings or
        more than ``max_flips`` flipped decisions refuse the swap and
        leave the active epoch untouched; ``force=True`` overrides the
        gate (and additionally advances the epoch even for an identical
        digest, see :meth:`~repro.core.engine.MSoDEngine.swap_policy`).

        When ``principal`` is given, the *outgoing* policy set's admin
        boundaries are consulted first: a principal whose retained ADI
        shows operational decisions under the outgoing epoch may not
        swap the policy that judged them.  ``force`` does **not**
        override this refusal — the boundary protects the PDP from its
        own operators.
        """
        if principal is not None:
            from repro.core.constraints import POLICY_RELOAD_PRIVILEGE

            denial = self._engine.admin_boundary_denial(
                principal, POLICY_RELOAD_PRIVILEGE
            )
            if denial is not None:
                raise PolicyError(
                    f"policy reload refused by admin boundary: {denial}"
                )
        if verify:
            from repro.verify.gate import evaluate_gate

            gate = evaluate_gate(
                policy_set,
                trails=self._open_trails(),
                max_flips=max_flips,
                policy_resolver=self._engine.policy_set_for_epoch,
            )
            self._note_verify(gate.static)
            if gate.whatif is not None:
                self._whatif_flips += gate.whatif.flip_count
            self._last_gate = gate
            if not gate.ok and not force:
                raise PolicyError(
                    "policy reload refused by verification gate: "
                    + "; ".join(gate.reasons)
                )
        report = self._engine.swap_policy(policy_set, force=force)
        self._last_findings = report.findings
        if report.changed:
            self._policy_reloads += 1
            self._perf.incr("server.policy_reloads")
        return report

    def slowlog(self) -> dict:
        """The ``slowlog`` body: the engine's slowest retained traces.

        Empty (``enabled: false``) unless the engine was built with an
        enabled tracer carrying a slow-decision log.
        """
        tracer = self._engine.tracer
        log = tracer.slow_log if tracer.enabled else None
        if log is None:
            return {"enabled": False, "capacity": 0, "offered": 0, "traces": []}
        return {"enabled": True, **log.to_dict()}

    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Create the shard queues and spawn one worker task each."""
        if self._started:
            return
        self._queues = [
            asyncio.Queue(maxsize=self._queue_depth)
            for _ in range(self._n_shards)
        ]
        self._workers = [
            asyncio.create_task(
                self._worker(index), name=f"msod-shard-{index}"
            )
            for index in range(self._n_shards)
        ]
        self._started = True
        self._accepting = True

    async def stop(self) -> None:
        """Graceful drain: stop admitting, flush queues, flush audit."""
        if not self._started:
            return
        self._accepting = False
        # Wait until every queued request has been decided and answered.
        await asyncio.gather(*(queue.join() for queue in self._queues))
        for worker in self._workers:
            worker.cancel()
        await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers = []
        self._started = False
        flush = getattr(self._audit_sink, "flush", None)
        if callable(flush):
            flush()

    async def abort(self) -> None:
        """Abrupt stop for fault injection: drop queued work on the floor.

        Unlike :meth:`stop` this neither drains the shard queues nor
        flushes the audit sink — it models a process crash as closely
        as an in-process server can.  Queued-but-undecided requests are
        simply abandoned (their clients see the connection drop), which
        is exactly the window failover recovery must cover.
        """
        if not self._started:
            return
        self._accepting = False
        for worker in self._workers:
            worker.cancel()
        await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers = []
        self._started = False

    # ------------------------------------------------------------------
    def submit(self, request: DecisionRequest) -> "asyncio.Future[Decision]":
        """Enqueue one request on its user's shard.

        Returns a future resolving to the :class:`Decision`.  Raises
        :class:`ServiceOverloadedError` when the shard queue is full and
        :class:`ServiceUnavailableError` when not accepting — both
        *before* any queueing, so the caller may safely retry.
        """
        if not self._accepting:
            raise ServiceUnavailableError(
                "authorization service is not accepting requests"
            )
        shard = shard_of(request.user_id, self._n_shards)
        stats = self._stats[shard]
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        try:
            self._queues[shard].put_nowait((request, future))
        except asyncio.QueueFull:
            stats.rejected += 1
            self._perf.incr("server.rejected_overload")
            raise ServiceOverloadedError(
                f"shard {shard} queue is full "
                f"({self._queue_depth} requests pending)",
                retry_after=self._retry_after,
            ) from None
        stats.submitted += 1
        self._perf.incr("server.submitted")
        return future

    async def decide(self, request: DecisionRequest) -> Decision:
        """Submit and await one decision (convenience for in-process use)."""
        return await self.submit(request)

    # ------------------------------------------------------------------
    async def _worker(self, shard: int) -> None:
        queue = self._queues[shard]
        stats = self._stats[shard]
        perf = self._perf
        batch_max = self._batch_max
        window = self._gather_window
        ema = 1.0  # recent batch-size average; >1 means queueing happens
        while True:
            item = await queue.get()
            batch = [item]
            while len(batch) < batch_max:
                try:
                    batch.append(queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            if window > 0.0 and len(batch) < batch_max and ema > _GATHER_EMA_THRESHOLD:
                # Sustained load: linger so requests still in flight
                # through connection handlers join this batch (and this
                # store transaction).  Sleep slices + get_nowait rather
                # than wait_for(queue.get()) — a cancelled get() can
                # drop the item it just dequeued.
                loop = asyncio.get_running_loop()
                deadline = loop.time() + window
                while len(batch) < batch_max:
                    remaining = deadline - loop.time()
                    if remaining <= 0.0:
                        break
                    await asyncio.sleep(
                        _GATHER_SLICE if remaining > _GATHER_SLICE else remaining
                    )
                    while len(batch) < batch_max:
                        try:
                            batch.append(queue.get_nowait())
                        except asyncio.QueueEmpty:
                            break
            ema += 0.25 * (len(batch) - ema)
            stats.batches += 1
            if len(batch) > stats.max_batch:
                stats.max_batch = len(batch)
            perf.incr("server.batches")
            perf.incr("server.batched_requests", len(batch))
            try:
                self._run_batch(batch, stats)
            finally:
                for _ in batch:
                    queue.task_done()

    def _run_batch(
        self,
        batch: list[tuple[DecisionRequest, "asyncio.Future[Decision]"]],
        stats: ShardStats,
    ) -> None:
        """Decide one micro-batch under a single store transaction.

        A failing decision fails only its own future — the worker and
        the rest of the batch carry on (the engine's per-decision
        atomicity plus the store's savepoints guarantee no partial
        state from the failed one).
        """
        engine = self._engine
        sink = self._audit_sink
        perf = self._perf
        timing = perf.enabled
        with engine.store.batch():
            for request, future in batch:
                started = perf.start() if timing else 0.0
                try:
                    decision = engine.check(request)
                except Exception as exc:
                    if not future.cancelled():
                        future.set_exception(exc)
                    continue
                finally:
                    if timing:
                        perf.stop("server.decide", started)
                stats.completed += 1
                perf.incr("server.decided")
                if sink is not None:
                    try:
                        sink(decision)
                    except Exception as exc:
                        # A failed sink (trail I/O error, cluster node
                        # demoted mid-flight) fails this decision only:
                        # the client must not receive an ack the audit
                        # trail does not hold, and the worker must
                        # survive to serve the rest of the shard.
                        if not future.cancelled():
                            future.set_exception(exc)
                        continue
                if not future.cancelled():
                    future.set_result(decision)

"""Crampton's anti-role baseline (paper Section 6, reference [18]).

"Crampton proposes to enforce SoD via an anti-role.  As a role is
associated with a set of permissions, an anti-role is associated with a
set of prohibitions that constitute a blacklist for each user.  Crampton
proposes that implementations should periodically purge the assignments
of sanitized permissions, thus deleting the anti-role effect."

The checker reproduces both halves of the paper's critique:

* prohibitions are *context-blind* — a user who legitimately performs
  conflicting duties in two different business-context instances is
  wrongly blocked (false positives on benign cross-instance work);
* the periodic purge erases history wholesale, so conflicts that span a
  purge boundary are missed — unlike MSoD, whose retained ADI is purged
  per business context exactly when the context terminates.
"""

from __future__ import annotations

from typing import Iterable

from repro.baselines.base import SoDChecker
from repro.core.constraints import Role
from repro.workload.events import STEP_ACCESS, Step


class AntiRoleChecker(SoDChecker):
    """Blacklist-based SoD with periodic wholesale purging."""

    def __init__(
        self,
        conflicting_role_sets: Iterable[frozenset[Role]],
        purge_every: int | None = None,
    ) -> None:
        self._conflict_sets = tuple(frozenset(s) for s in conflicting_role_sets)
        self._purge_every = purge_every
        suffix = f", purge every {purge_every}" if purge_every else ""
        self.name = f"Anti-role{suffix}"
        self._prohibitions: dict[str, set[Role]] = {}  # presented id -> roles
        self._steps_seen = 0

    def reset(self) -> None:
        self._prohibitions.clear()
        self._steps_seen = 0

    def process_step(self, step: Step) -> tuple[bool, str]:
        if step.kind != STEP_ACCESS:
            return False, ""
        self._steps_seen += 1
        if self._purge_every and self._steps_seen % self._purge_every == 0:
            # Periodic sanitisation deletes every anti-role assignment.
            self._prohibitions.clear()
        prohibited = self._prohibitions.get(step.presented_id, set())
        for role in step.roles:
            if role in prohibited:
                return True, (
                    f"anti-role prohibition: {step.presented_id!r} is "
                    f"blacklisted for {role}"
                )
        # Exercising a conflicting role blacklists its counterparts.
        for conflict_set in self._conflict_sets:
            used = conflict_set & set(step.roles)
            if used:
                blacklist = self._prohibitions.setdefault(
                    step.presented_id, set()
                )
                blacklist.update(conflict_set - used)
        return False, ""

"""Comparator SoD mechanisms from the paper's related-work section.

Every baseline the paper positions MSoD against is implemented behind
one interface (:class:`~repro.baselines.base.SoDChecker`) so the
detection-rate bench can run them over identical workloads:

* :class:`~repro.baselines.ansi.AnsiSsdChecker` — ANSI SSD at
  assignment time (per-authority or omniscient view);
* :class:`~repro.baselines.ansi.AnsiDsdChecker` — ANSI DSD at
  activation time;
* :class:`~repro.baselines.anti_role.AntiRoleChecker` — Crampton's
  anti-roles with periodic purge [18];
* :class:`~repro.baselines.bertino.BertinoWorkflowChecker` — Bertino et
  al.'s pre-computed workflow assignments [12];
* :class:`~repro.baselines.sandhu.SandhuTCEChecker` — Sandhu's
  transaction control expressions [4];
* :class:`~repro.baselines.msod_checker.MSoDChecker` — the paper's own
  mechanism, in the same harness.
"""

from repro.baselines.ansi import AnsiDsdChecker, AnsiSsdChecker
from repro.baselines.anti_role import AntiRoleChecker
from repro.baselines.base import SoDChecker
from repro.baselines.bertino import BertinoWorkflowChecker, TaskConstraint
from repro.baselines.gligor import HistoryDSoDChecker, OperationalDSoDChecker
from repro.baselines.msod_checker import MSoDChecker
from repro.baselines.sandhu import (
    SandhuTCEChecker,
    TCEStep,
    TransactionControlExpression,
)

__all__ = [
    "SoDChecker",
    "AnsiSsdChecker",
    "AnsiDsdChecker",
    "AntiRoleChecker",
    "BertinoWorkflowChecker",
    "OperationalDSoDChecker",
    "HistoryDSoDChecker",
    "TaskConstraint",
    "SandhuTCEChecker",
    "TCEStep",
    "TransactionControlExpression",
    "MSoDChecker",
]

"""Bertino et al.'s workflow authorization baseline (Section 6, ref [12]).

Bertino, Ferrari and Atluri enforce SoD in workflow management systems
by computing, *before the workflow starts*, the set of role and user
assignments per task that satisfy all constraints, and checking each
activation against it.  The paper's critique, which this checker
reproduces structurally:

* "the solution is based on a central authority that knows all the
  users, roles and user role assignments" — users unknown to the central
  authority (e.g. holding roles from an external VO authority) bypass
  the pre-computed assignments entirely;
* it "requires prior specification and knowledge of the workflow and
  its tasks" — accesses outside a declared workflow (like Example 1's
  bank audit) carry no constraints at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.baselines.base import SoDChecker
from repro.workload.events import STEP_ACCESS, Step


@dataclass(frozen=True, slots=True)
class TaskConstraint:
    """Constraints on one workflow task, Bertino-style.

    ``must_differ_from`` lists tasks whose executors must all be
    different from this task's executor; ``max_per_user`` caps how many
    times one user may execute this task in one workflow instance.
    """

    operation: str  # task identified by its operation name
    must_differ_from: tuple[str, ...] = ()
    max_per_user: int = 1


class BertinoWorkflowChecker(SoDChecker):
    """Pre-computed workflow assignments with a central user registry."""

    name = "Bertino workflow"

    def __init__(
        self,
        context_type: str,
        constraints: Iterable[TaskConstraint],
        known_users: Iterable[str],
    ) -> None:
        self._context_type = context_type
        self._constraints = {c.operation: c for c in constraints}
        self._known_users = set(known_users)
        # (instance value) -> operation -> list of executing users
        self._executions: dict[str, dict[str, list[str]]] = {}

    def reset(self) -> None:
        self._executions.clear()

    def register_user(self, user_id: str) -> None:
        """Teach the central authority about a user."""
        self._known_users.add(user_id)

    def _instance_of(self, step: Step) -> str | None:
        if step.context_instance is None:
            return None
        for component in step.context_instance:
            if component.ctx_type == self._context_type:
                return component.value
        return None

    def process_step(self, step: Step) -> tuple[bool, str]:
        if step.kind != STEP_ACCESS:
            return False, ""
        instance = self._instance_of(step)
        if instance is None:
            # Not a declared workflow: Bertino's model imposes nothing.
            return False, ""
        constraint = self._constraints.get(step.operation)
        if constraint is None:
            return False, ""
        if step.user_id not in self._known_users:
            # The central authority has never heard of this user: their
            # role assignment is invisible, so the pre-computed valid
            # assignments cannot exclude them.
            return False, ""
        history = self._executions.setdefault(instance, {})
        # Separation from other tasks' executors.
        for other_op in constraint.must_differ_from:
            if step.user_id in history.get(other_op, ()):
                return True, (
                    f"Bertino: {step.user_id!r} already executed "
                    f"{other_op!r} in workflow instance {instance!r}"
                )
        # Per-task repetition cap.
        executions = history.get(step.operation, [])
        if executions.count(step.user_id) >= constraint.max_per_user:
            return True, (
                f"Bertino: {step.user_id!r} already executed "
                f"{step.operation!r} {constraint.max_per_user} time(s) in "
                f"instance {instance!r}"
            )
        history.setdefault(step.operation, []).append(step.user_id)
        return False, ""

"""The common interface every SoD mechanism implements for comparison.

A checker consumes scenario steps in order and may *block* one of them;
a blocked step means the mechanism prevented the (attempted) violation.
Checkers are stateful across scenarios — exactly like a live system —
so the workload generator isolates scenarios through fresh users,
sessions and context instances.
"""

from __future__ import annotations

from repro.workload.events import Scenario, ScenarioOutcome, Step


class SoDChecker:
    """Base class: runs scenarios step by step until a block."""

    name = "abstract"

    def reset(self) -> None:
        """Drop all accumulated state."""

    def process_step(self, step: Step) -> tuple[bool, str]:
        """Return ``(blocked, reason)`` for one step."""
        raise NotImplementedError

    def run_scenario(self, scenario: Scenario) -> ScenarioOutcome:
        """Process steps in order; stop at the first blocked step."""
        for index, step in enumerate(scenario.steps):
            blocked, reason = self.process_step(step)
            if blocked:
                return ScenarioOutcome(
                    scenario=scenario,
                    blocked=True,
                    blocked_step=index,
                    reason=reason,
                )
        return ScenarioOutcome(scenario=scenario, blocked=False)

"""Sandhu's transaction control expressions baseline (Section 6, ref [4]).

Sandhu (ACSAC'88) attaches a *transaction control expression* to each
object: an ordered list of transaction steps, where by default every
step must be executed by a different user (identity-based separation).
A ``same_user`` marker (Sandhu's ditto notation) instead requires the
step to be executed by the same user as the previous step.

The paper's critique, reproduced here: enforcement is per-object and
identity-based, with no notion of roles, business contexts or
cross-object conflicts — so role conflicts that span different target
objects (Example 1's teller/auditor) are invisible to it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.baselines.base import SoDChecker
from repro.workload.events import STEP_ACCESS, Step


@dataclass(frozen=True, slots=True)
class TCEStep:
    """One step of a transaction control expression."""

    operation: str
    same_user: bool = False  # Sandhu's ditto: same executor as previous step


class TransactionControlExpression:
    """An ordered expression applied to every instance of one object."""

    def __init__(self, target: str, steps: Iterable[TCEStep]) -> None:
        self.target = target
        self.steps = tuple(steps)


class SandhuTCEChecker(SoDChecker):
    """Per-object transaction histories with different-user steps."""

    name = "Sandhu TCE"

    def __init__(self, expressions: Iterable[TransactionControlExpression]) -> None:
        self._expressions = {expr.target: expr for expr in expressions}
        # (target, object instance) -> list of (step index, user)
        self._histories: dict[tuple[str, str], list[tuple[int, str]]] = {}

    def reset(self) -> None:
        self._histories.clear()

    def _object_instance(self, step: Step) -> str:
        # The per-instance object is identified by the business-context
        # instance when present (one check per tax-refund process), else
        # the raw target.
        if step.context_instance is not None:
            return str(step.context_instance)
        return step.target

    def process_step(self, step: Step) -> tuple[bool, str]:
        if step.kind != STEP_ACCESS:
            return False, ""
        expression = self._expressions.get(step.target)
        if expression is None:
            return False, ""
        key = (step.target, self._object_instance(step))
        history = self._histories.setdefault(key, [])
        executed_indexes = {index for index, _ in history}
        # The next unexecuted expression step with this operation.
        step_index = next(
            (
                index
                for index, tce_step in enumerate(expression.steps)
                if index not in executed_indexes
                and tce_step.operation == step.operation
            ),
            None,
        )
        if step_index is None:
            # Operation exhausted for this object: the expression only
            # authorises each listed step once.
            if any(
                tce_step.operation == step.operation
                for tce_step in expression.steps
            ):
                return True, (
                    f"TCE: all {step.operation!r} steps already executed on "
                    f"{key[1]!r}"
                )
            return False, ""
        tce_step = expression.steps[step_index]
        if tce_step.same_user:
            if history and history[-1][1] != step.presented_id:
                return True, (
                    f"TCE: step {step_index} requires the same user as the "
                    f"previous step on {key[1]!r}"
                )
        else:
            previous_users = {user for _, user in history}
            if step.presented_id in previous_users:
                return True, (
                    f"TCE: {step.presented_id!r} already executed an earlier "
                    f"step on {key[1]!r}"
                )
        history.append((step_index, step.presented_id))
        return False, ""

"""The ANSI RBAC baselines: SSD at assignment, DSD at activation.

These are the two standard enforcement points (paper Section 2.1) whose
blind spots motivate MSoD:

* :class:`AnsiSsdChecker` blocks a role *assignment* that would give a
  user two conflicting roles — but each authority only sees its own
  assignments, so cross-authority conflicts pass (Section 1).  The
  ``global_view`` flag models a hypothetical omniscient administrator
  for ablation.
* :class:`AnsiDsdChecker` blocks a role *activation* that would make
  conflicting roles simultaneously active in one session — conflicts
  spread over different sessions never trigger it (Section 2.1).
"""

from __future__ import annotations

from typing import Iterable

from repro.baselines.base import SoDChecker
from repro.rbac.constraints import SoDSet
from repro.workload.events import STEP_ACCESS, STEP_ACTIVATE, STEP_ASSIGN, Step


class AnsiSsdChecker(SoDChecker):
    """Assignment-time SSD with per-authority (or global) visibility."""

    def __init__(self, ssd_sets: Iterable[SoDSet], global_view: bool = False) -> None:
        self._ssd = tuple(ssd_sets)
        self._global_view = global_view
        self.name = "ANSI SSD (global)" if global_view else "ANSI SSD"
        # (visibility key, user) -> assigned role values
        self._assigned: dict[tuple[str, str], set[str]] = {}

    def reset(self) -> None:
        self._assigned.clear()

    def process_step(self, step: Step) -> tuple[bool, str]:
        if step.kind != STEP_ASSIGN:
            return False, ""
        view = "*" if self._global_view else step.authority
        key = (view, step.user_id)
        assigned = self._assigned.setdefault(key, set())
        prospective = assigned | {role.value for role in step.roles}
        for constraint in self._ssd:
            if constraint.violated_by(prospective):
                return True, (
                    f"SSD set {constraint.name!r} violated for {step.user_id!r} "
                    f"as seen by {view!r}"
                )
        assigned.update(role.value for role in step.roles)
        return False, ""


class AnsiDsdChecker(SoDChecker):
    """Activation-time DSD over each session's active role set."""

    name = "ANSI DSD"

    def __init__(self, dsd_sets: Iterable[SoDSet]) -> None:
        self._dsd = tuple(dsd_sets)
        self._active: dict[str, set[str]] = {}  # session -> active role values

    def reset(self) -> None:
        self._active.clear()

    def process_step(self, step: Step) -> tuple[bool, str]:
        if step.kind not in (STEP_ACTIVATE, STEP_ACCESS):
            return False, ""
        # Using a role in an access implies it is active in the session.
        active = self._active.setdefault(step.session_id, set())
        prospective = active | {role.value for role in step.roles}
        for constraint in self._dsd:
            if constraint.violated_by(prospective):
                return True, (
                    f"DSD set {constraint.name!r} violated in session "
                    f"{step.session_id!r}"
                )
        active.update(role.value for role in step.roles)
        return False, ""

"""Gligor, Gavrila & Ferraiolo's SoD taxonomy (Section 6, reference [9]).

The paper credits [9] with "an excellent formalization of SoD policies
at the conceptual level" — per-role static/dynamic SoD (the ANSI
checkers), plus *operational* and *history-based* dynamic SoD — while
noting that "business process contexts are not explicitly expressed in
their work" and no enforcement mechanism was given.  These two checkers
make the stronger history-based variants executable so the comparison
bench can show precisely what business contexts add:

* :class:`OperationalDSoDChecker` — no single user may perform **every**
  operation of a sensitive business function, ever (identity-keyed,
  object- and context-blind).
* :class:`HistoryDSoDChecker` — no single user may perform every
  operation of a sensitive combination **upon the same object** over
  time.  The "object" here is the business-context instance, the
  closest analogue available at the enforcement point; the checker is
  still blind to the `*`/`!` scoping and the role dimension that MSoD
  adds.
"""

from __future__ import annotations

from typing import Iterable

from repro.baselines.base import SoDChecker
from repro.workload.events import STEP_ACCESS, Step


class OperationalDSoDChecker(SoDChecker):
    """Blocks the operation completing a sensitive function's op set."""

    def __init__(self, operation_sets: Iterable[frozenset[str]]) -> None:
        self._operation_sets = tuple(frozenset(s) for s in operation_sets)
        if any(len(s) < 2 for s in self._operation_sets):
            raise ValueError("operation sets need at least 2 operations")
        self.name = "Gligor operational DSoD"
        self._performed: dict[str, set[str]] = {}  # presented id -> ops

    def reset(self) -> None:
        self._performed.clear()

    def process_step(self, step: Step) -> tuple[bool, str]:
        if step.kind != STEP_ACCESS:
            return False, ""
        history = self._performed.setdefault(step.presented_id, set())
        prospective = history | {step.operation}
        for operation_set in self._operation_sets:
            if step.operation in operation_set and operation_set <= prospective:
                return True, (
                    f"operational DSoD: {step.presented_id!r} would complete "
                    f"the whole operation set {sorted(operation_set)}"
                )
        history.add(step.operation)
        return False, ""


class HistoryDSoDChecker(SoDChecker):
    """Blocks completing a sensitive op combination on one object."""

    def __init__(self, operation_sets: Iterable[frozenset[str]]) -> None:
        self._operation_sets = tuple(frozenset(s) for s in operation_sets)
        if any(len(s) < 2 for s in self._operation_sets):
            raise ValueError("operation sets need at least 2 operations")
        self.name = "Gligor history DSoD"
        # (presented id, object) -> operations performed
        self._performed: dict[tuple[str, str], set[str]] = {}

    def reset(self) -> None:
        self._performed.clear()

    def _object_of(self, step: Step) -> str:
        return (
            str(step.context_instance)
            if step.context_instance is not None
            else step.target
        )

    def process_step(self, step: Step) -> tuple[bool, str]:
        if step.kind != STEP_ACCESS:
            return False, ""
        key = (step.presented_id, self._object_of(step))
        history = self._performed.setdefault(key, set())
        prospective = history | {step.operation}
        for operation_set in self._operation_sets:
            if step.operation in operation_set and operation_set <= prospective:
                return True, (
                    f"history DSoD: {step.presented_id!r} would complete "
                    f"{sorted(operation_set)} on object {key[1]!r}"
                )
        history.add(step.operation)
        return False, ""

"""The paper's mechanism wrapped in the comparison-checker interface.

The MSoD checker evaluates *access* steps through the Section 4.2 engine.
The identity the retained ADI is keyed on is whatever the PDP sees —
``presented_id`` resolved through an optional
:class:`~repro.vo.federation.IdentityLinker` — faithfully reproducing
the Section 6 federation limitation and its fix.
"""

from __future__ import annotations

from repro.baselines.base import SoDChecker
from repro.core.decision import DecisionRequest
from repro.core.engine import MODE_STRICT, MSoDEngine
from repro.core.policy import MSoDPolicySet
from repro.core.retained_adi import InMemoryRetainedADIStore
from repro.vo.federation import IdentityLinker
from repro.workload.events import STEP_ACCESS, Step


class MSoDChecker(SoDChecker):
    """MMER/MMEP enforcement over a retained ADI."""

    def __init__(
        self,
        policy_set: MSoDPolicySet,
        linker: IdentityLinker | None = None,
        mode: str = MODE_STRICT,
        name: str = "MSoD",
    ) -> None:
        self.name = name
        self._policy_set = policy_set
        self._linker = linker
        self._mode = mode
        self._engine = MSoDEngine(
            policy_set, InMemoryRetainedADIStore(), mode=mode
        )

    def reset(self) -> None:
        self._engine = MSoDEngine(
            self._policy_set, InMemoryRetainedADIStore(), mode=self._mode
        )

    @property
    def engine(self) -> MSoDEngine:
        return self._engine

    def process_step(self, step: Step) -> tuple[bool, str]:
        if step.kind != STEP_ACCESS or step.context_instance is None:
            return False, ""
        identity = (
            self._linker.resolve(step.presented_id)
            if self._linker is not None
            else step.presented_id
        )
        request = DecisionRequest(
            user_id=identity,
            roles=step.roles,
            operation=step.operation,
            target=step.target,
            context_instance=step.context_instance,
            timestamp=step.timestamp,
        )
        decision = self._engine.check(request)
        if decision.denied:
            return True, decision.reason
        return False, ""

"""The PERMIS XML policy format (Figure 4's policy-management subsystem).

Real PERMIS policies are XML documents — subject domains, SOAs, a role
hierarchy, role-assignment rules, target-access rules — created by the
policy-management sub-system, signed by the SOA and published to the
LDAP directory, from which the PDP reads and verifies them at start-up.
This module provides the document format for this reproduction's
:class:`~repro.permis.policy.PermisPolicy`, embedding the paper's
Appendix-A ``<MSoDPolicySet>`` verbatim as the MSoD component
(Section 4.2: "MSoD policies are a component of RBAC policies").

Layout::

    <PermisRBACPolicy OID="...">
      <SOAPolicy>
        <SOA ID="soa1" LDAPDN="cn=SOA,o=bank,c=gb"/>
      </SOAPolicy>
      <RoleHierarchyPolicy>
        <Superior type="employee" value="Manager">
          <Junior type="employee" value="Teller"/>
        </Superior>
      </RoleHierarchyPolicy>
      <RoleAssignmentPolicy>
        <RoleAssignment SOA="soa1" SubjectDomain="o=bank,c=gb"
                        DelegateDepth="1">
          <Role type="employee" value="Teller"/>
        </RoleAssignment>
      </RoleAssignmentPolicy>
      <TargetAccessPolicy>
        <TargetAccess>
          <Role type="employee" value="Teller"/>
          <Privilege operation="handleCash" target="till://main"/>
          <Condition> ... </Condition>          <!-- optional -->
        </TargetAccess>
      </TargetAccessPolicy>
      <MSoDPolicySet> ... </MSoDPolicySet>      <!-- optional, Appendix A -->
    </PermisRBACPolicy>

Conditions serialise recursively: ``<TimeWindow start= end=/>``,
``<EnvEquals key= value=/>``, ``<EnvOneOf key= values=/>`` (values
comma-separated), ``<AllOf>``, ``<AnyOf>``, ``<Not>``.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from xml.dom import minidom

from repro.core.constraints import Privilege, Role
from repro.errors import PolicyParseError
from repro.permis.conditions import (
    AllOf,
    AnyOf,
    Condition,
    EnvEquals,
    EnvOneOf,
    Negation,
    TimeWindow,
)
from repro.permis.policy import PermisPolicy, PermisPolicyBuilder
from repro.xmlpolicy.parser import parse_policy_set_element
from repro.xmlpolicy.writer import policy_set_to_element

ELEM_POLICY = "PermisRBACPolicy"
ATTR_OID = "OID"


# ----------------------------------------------------------------------
# Conditions
# ----------------------------------------------------------------------
def condition_to_element(condition: Condition) -> ET.Element:
    """Serialise a condition tree (used inside <Condition>)."""
    if isinstance(condition, TimeWindow):
        element = ET.Element("TimeWindow")
        element.set("start", repr(condition._start))
        element.set("end", repr(condition._end))
        element.set("dayLength", repr(condition._day_length))
        return element
    if isinstance(condition, EnvEquals):
        element = ET.Element("EnvEquals")
        element.set("key", condition._key)
        element.set("value", condition._value)
        return element
    if isinstance(condition, EnvOneOf):
        element = ET.Element("EnvOneOf")
        element.set("key", condition._key)
        element.set("values", ",".join(sorted(condition._values)))
        return element
    if isinstance(condition, AllOf):
        element = ET.Element("AllOf")
        for child in condition._conditions:
            element.append(condition_to_element(child))
        return element
    if isinstance(condition, AnyOf):
        element = ET.Element("AnyOf")
        for child in condition._conditions:
            element.append(condition_to_element(child))
        return element
    if isinstance(condition, Negation):
        element = ET.Element("Not")
        element.append(condition_to_element(condition._condition))
        return element
    raise PolicyParseError(
        f"condition type {type(condition).__name__} has no XML form"
    )


def condition_from_element(element: ET.Element) -> Condition:
    """Parse a condition tree."""
    tag = element.tag
    if tag == "TimeWindow":
        return TimeWindow(
            float(element.get("start")),
            float(element.get("end")),
            float(element.get("dayLength", "86400")),
        )
    if tag == "EnvEquals":
        return EnvEquals(element.get("key", ""), element.get("value", ""))
    if tag == "EnvOneOf":
        return EnvOneOf(
            element.get("key", ""),
            [value for value in element.get("values", "").split(",") if value],
        )
    if tag == "AllOf":
        return AllOf(*(condition_from_element(child) for child in element))
    if tag == "AnyOf":
        return AnyOf(*(condition_from_element(child) for child in element))
    if tag == "Not":
        children = list(element)
        if len(children) != 1:
            raise PolicyParseError("<Not> needs exactly one child condition")
        return Negation(condition_from_element(children[0]))
    raise PolicyParseError(f"unknown condition element <{tag}>")


# ----------------------------------------------------------------------
# Roles / privileges
# ----------------------------------------------------------------------
def _role_element(role: Role) -> ET.Element:
    element = ET.Element("Role")
    element.set("type", role.role_type)
    element.set("value", role.value)
    return element


def _role_from(element: ET.Element) -> Role:
    role_type = element.get("type")
    value = element.get("value")
    if not role_type or not value:
        raise PolicyParseError("<Role> needs type and value attributes")
    return Role(role_type, value)


def _privilege_element(privilege: Privilege) -> ET.Element:
    element = ET.Element("Privilege")
    element.set("operation", privilege.operation)
    element.set("target", privilege.target)
    return element


def _privilege_from(element: ET.Element) -> Privilege:
    operation = element.get("operation")
    target = element.get("target")
    if not operation or not target:
        raise PolicyParseError(
            "<Privilege> needs operation and target attributes"
        )
    return Privilege(operation, target)


# ----------------------------------------------------------------------
# Writer
# ----------------------------------------------------------------------
def permis_policy_to_element(
    policy: PermisPolicy, oid: str = "1.2.826.0.1.3344810.6.0.0.1"
) -> ET.Element:
    root = ET.Element(ELEM_POLICY)
    root.set(ATTR_OID, oid)

    soa_ids: dict[str, str] = {}
    soa_policy = ET.SubElement(root, "SOAPolicy")
    for rule in policy.assignment_rules:
        if rule.soa_dn not in soa_ids:
            soa_ids[rule.soa_dn] = f"soa{len(soa_ids) + 1}"
            soa = ET.SubElement(soa_policy, "SOA")
            soa.set("ID", soa_ids[rule.soa_dn])
            soa.set("LDAPDN", rule.soa_dn)

    hierarchy_policy = ET.SubElement(root, "RoleHierarchyPolicy")
    for senior, junior in policy.hierarchy_edges():
        superior = ET.SubElement(hierarchy_policy, "Superior")
        superior.set("type", senior.role_type)
        superior.set("value", senior.value)
        junior_elem = ET.SubElement(superior, "Junior")
        junior_elem.set("type", junior.role_type)
        junior_elem.set("value", junior.value)

    assignment_policy = ET.SubElement(root, "RoleAssignmentPolicy")
    for rule in policy.assignment_rules:
        assignment = ET.SubElement(assignment_policy, "RoleAssignment")
        assignment.set("SOA", soa_ids[rule.soa_dn])
        assignment.set("SubjectDomain", rule.subject_domain)
        assignment.set("DelegateDepth", str(rule.max_delegation_depth))
        for role in sorted(rule.roles, key=str):
            assignment.append(_role_element(role))

    access_policy = ET.SubElement(root, "TargetAccessPolicy")
    for rule in policy.access_rules:
        access = ET.SubElement(access_policy, "TargetAccess")
        access.append(_role_element(rule.role))
        for privilege in sorted(rule.privileges, key=str):
            access.append(_privilege_element(privilege))
        if rule.condition is not None:
            condition = ET.SubElement(access, "Condition")
            condition.append(condition_to_element(rule.condition))

    msod = policy.msod_policy_set
    if len(msod):
        root.append(policy_set_to_element(msod))
    return root


def write_permis_policy(
    policy: PermisPolicy,
    oid: str = "1.2.826.0.1.3344810.6.0.0.1",
    pretty: bool = True,
) -> str:
    """Serialise a PERMIS policy (with its MSoD component) to XML."""
    raw = ET.tostring(permis_policy_to_element(policy, oid), encoding="unicode")
    if not pretty:
        return raw
    text = minidom.parseString(raw).toprettyxml(indent="  ")
    return "\n".join(line for line in text.splitlines() if line.strip())


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def parse_permis_policy(text: str, strict_msod: bool = True) -> PermisPolicy:
    """Parse a PERMIS XML policy document into a :class:`PermisPolicy`."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise PolicyParseError(f"not well-formed XML: {exc}") from exc
    return parse_permis_policy_element(root, strict_msod=strict_msod)


def parse_permis_policy_element(
    root: ET.Element, strict_msod: bool = True
) -> PermisPolicy:
    """Parse an already-built ``<PermisRBACPolicy>`` element tree."""
    if root.tag != ELEM_POLICY:
        raise PolicyParseError(
            f"root element must be <{ELEM_POLICY}>, got <{root.tag}>"
        )
    builder = PermisPolicyBuilder()

    soa_dns: dict[str, str] = {}
    soa_policy = root.find("SOAPolicy")
    if soa_policy is not None:
        for soa in soa_policy:
            if soa.tag != "SOA":
                raise PolicyParseError(
                    f"unexpected <{soa.tag}> inside <SOAPolicy>"
                )
            soa_id = soa.get("ID")
            dn = soa.get("LDAPDN")
            if not soa_id or not dn:
                raise PolicyParseError("<SOA> needs ID and LDAPDN attributes")
            if soa_id in soa_dns:
                raise PolicyParseError(f"duplicate SOA ID {soa_id!r}")
            soa_dns[soa_id] = dn

    hierarchy_policy = root.find("RoleHierarchyPolicy")
    if hierarchy_policy is not None:
        for superior in hierarchy_policy:
            if superior.tag != "Superior":
                raise PolicyParseError(
                    f"unexpected <{superior.tag}> inside <RoleHierarchyPolicy>"
                )
            senior = _role_from(superior)
            for junior_elem in superior:
                if junior_elem.tag != "Junior":
                    raise PolicyParseError(
                        f"unexpected <{junior_elem.tag}> inside <Superior>"
                    )
                builder.senior_to(senior, _role_from(junior_elem))

    assignment_policy = root.find("RoleAssignmentPolicy")
    if assignment_policy is not None:
        for assignment in assignment_policy:
            if assignment.tag != "RoleAssignment":
                raise PolicyParseError(
                    f"unexpected <{assignment.tag}> inside "
                    "<RoleAssignmentPolicy>"
                )
            soa_id = assignment.get("SOA")
            if soa_id not in soa_dns:
                raise PolicyParseError(
                    f"<RoleAssignment> references unknown SOA {soa_id!r}"
                )
            domain = assignment.get("SubjectDomain")
            if not domain:
                raise PolicyParseError(
                    "<RoleAssignment> needs a SubjectDomain attribute"
                )
            try:
                depth = int(assignment.get("DelegateDepth", "0"))
            except ValueError as exc:
                raise PolicyParseError(
                    "<RoleAssignment> DelegateDepth must be an integer"
                ) from exc
            roles = [_role_from(role) for role in assignment]
            if not roles:
                raise PolicyParseError(
                    "<RoleAssignment> needs at least one <Role>"
                )
            builder.allow_assignment(
                soa_dns[soa_id], roles, domain, max_delegation_depth=depth
            )

    access_policy = root.find("TargetAccessPolicy")
    if access_policy is not None:
        for access in access_policy:
            if access.tag != "TargetAccess":
                raise PolicyParseError(
                    f"unexpected <{access.tag}> inside <TargetAccessPolicy>"
                )
            role = None
            privileges = []
            condition = None
            for child in access:
                if child.tag == "Role":
                    if role is not None:
                        raise PolicyParseError(
                            "<TargetAccess> may name only one <Role>"
                        )
                    role = _role_from(child)
                elif child.tag == "Privilege":
                    privileges.append(_privilege_from(child))
                elif child.tag == "Condition":
                    nested = list(child)
                    if len(nested) != 1:
                        raise PolicyParseError(
                            "<Condition> needs exactly one child"
                        )
                    condition = condition_from_element(nested[0])
                else:
                    raise PolicyParseError(
                        f"unexpected <{child.tag}> inside <TargetAccess>"
                    )
            if role is None or not privileges:
                raise PolicyParseError(
                    "<TargetAccess> needs a <Role> and at least one "
                    "<Privilege>"
                )
            builder.grant(role, privileges, condition=condition)

    msod_element = root.find("MSoDPolicySet")
    if msod_element is not None:
        builder.with_msod(
            parse_policy_set_element(msod_element, strict=strict_msod)
        )
    return builder.build()

"""Digitally signed role credentials (paper Section 5.1).

PERMIS transports user roles as "digitally signed credentials, encoded
as either SAML assertions [19] or X.509 attribute certificates [20]".
Both encodings are reproduced as dataclasses sharing one abstract base;
signatures are HMAC-SHA256 seals over a canonical payload, keyed by the
issuing Source of Authority (SOA).

Substitution note (see DESIGN.md): the MSoD code paths only care whether
a credential verifies and what (issuer, holder, attribute) triple it
attests.  HMAC seals give the same tamper-evidence and issuer-binding
properties as the paper's PKI signatures for every behaviour exercised
here, without a bignum RSA implementation that would add nothing to the
reproduction.
"""

from __future__ import annotations

import hashlib
import hmac
import itertools
import json
from dataclasses import dataclass, field, replace

from repro.core.constraints import Role
from repro.errors import CredentialError

_SERIAL = itertools.count(1)


def next_serial() -> str:
    return f"cred-{next(_SERIAL):08d}"


@dataclass(frozen=True, slots=True)
class AttributeCredential:
    """A signed attestation that ``holder`` has ``attributes``.

    ``encoding`` distinguishes the two wire formats the paper names;
    both verify identically.
    """

    holder: str  # the holder's LDAP DN
    issuer: str  # the SOA's LDAP DN
    attributes: tuple[Role, ...]
    not_before: float
    not_after: float
    serial: str = field(default_factory=next_serial)
    encoding: str = "x509-ac"
    signature: str = ""

    def __post_init__(self) -> None:
        if not self.holder:
            raise CredentialError("credential holder must be non-empty")
        if not self.issuer:
            raise CredentialError("credential issuer must be non-empty")
        if not self.attributes:
            raise CredentialError("credential must carry at least one attribute")
        if self.not_after < self.not_before:
            raise CredentialError(
                "credential validity ends before it starts "
                f"({self.not_after} < {self.not_before})"
            )
        if self.encoding not in ("x509-ac", "saml"):
            raise CredentialError(f"unknown credential encoding {self.encoding!r}")

    def payload(self) -> bytes:
        """The canonical byte string that is signed."""
        body = {
            "holder": self.holder,
            "issuer": self.issuer,
            "attributes": [[role.role_type, role.value] for role in self.attributes],
            "not_before": self.not_before,
            "not_after": self.not_after,
            "serial": self.serial,
            "encoding": self.encoding,
        }
        return json.dumps(body, sort_keys=True, separators=(",", ":")).encode()

    def is_valid_at(self, when: float) -> bool:
        return self.not_before <= when <= self.not_after

    def with_signature(self, signature: str) -> "AttributeCredential":
        return replace(self, signature=signature)

    def tampered(self, **changes) -> "AttributeCredential":
        """A copy with fields changed but the old signature kept.

        Used by tests and failure-injection benches to produce
        credentials that must fail verification.
        """
        return replace(self, **changes)


def sign_credential(credential: AttributeCredential, key: bytes) -> AttributeCredential:
    """Seal a credential with the issuer's key."""
    if not key:
        raise CredentialError("signing key must be non-empty")
    signature = hmac.new(key, credential.payload(), hashlib.sha256).hexdigest()
    return credential.with_signature(signature)


def verify_signature(credential: AttributeCredential, key: bytes) -> bool:
    """True when the seal matches the payload under the given key."""
    if not credential.signature:
        return False
    expected = hmac.new(key, credential.payload(), hashlib.sha256).hexdigest()
    return hmac.compare_digest(credential.signature, expected)


class TrustStore:
    """Maps trusted SOA DNs to their verification keys."""

    def __init__(self) -> None:
        self._keys: dict[str, bytes] = {}

    def trust(self, issuer_dn: str, key: bytes) -> None:
        if not key:
            raise CredentialError("trusted key must be non-empty")
        self._keys[issuer_dn] = key

    def revoke(self, issuer_dn: str) -> None:
        self._keys.pop(issuer_dn, None)

    def is_trusted(self, issuer_dn: str) -> bool:
        return issuer_dn in self._keys

    def key_for(self, issuer_dn: str) -> bytes:
        key = self._keys.get(issuer_dn)
        if key is None:
            raise CredentialError(f"issuer {issuer_dn!r} is not trusted")
        return key

    def issuers(self) -> frozenset[str]:
        return frozenset(self._keys)

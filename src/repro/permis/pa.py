"""The privilege allocation (PA) sub-system (paper Section 5.1).

A :class:`PrivilegeAllocator` models one Source of Authority: it signs
role credentials for holders and publishes them to an LDAP-like
directory, from which the CVS later pulls them.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.constraints import Role
from repro.errors import CredentialError
from repro.permis.credentials import AttributeCredential, sign_credential
from repro.permis.directory import LdapDirectory, normalize_dn


class PrivilegeAllocator:
    """One SOA that issues and publishes signed role credentials."""

    def __init__(
        self,
        soa_dn: str,
        signing_key: bytes,
        directory: LdapDirectory | None = None,
        encoding: str = "x509-ac",
    ) -> None:
        if not signing_key:
            raise CredentialError("SOA signing key must be non-empty")
        self._soa_dn = normalize_dn(soa_dn)
        self._key = signing_key
        self._directory = directory
        self._encoding = encoding
        self._issued: list[AttributeCredential] = []

    @property
    def soa_dn(self) -> str:
        return self._soa_dn

    @property
    def verification_key(self) -> bytes:
        """The key a trust store needs to verify this SOA's credentials."""
        return self._key

    @property
    def issued(self) -> tuple[AttributeCredential, ...]:
        return tuple(self._issued)

    def issue(
        self,
        holder_dn: str,
        roles: Iterable[Role],
        not_before: float,
        not_after: float,
        publish: bool = True,
    ) -> AttributeCredential:
        """Sign a credential for ``holder_dn`` carrying ``roles``."""
        credential = AttributeCredential(
            holder=normalize_dn(holder_dn),
            issuer=self._soa_dn,
            attributes=tuple(roles),
            not_before=not_before,
            not_after=not_after,
            encoding=self._encoding,
        )
        credential = sign_credential(credential, self._key)
        self._issued.append(credential)
        if publish and self._directory is not None:
            self._directory.publish_credential(credential.holder, credential)
        return credential

    def revoke(self, credential: AttributeCredential) -> None:
        """Withdraw a published credential from the directory."""
        if credential not in self._issued:
            raise CredentialError("credential was not issued by this SOA")
        self._issued.remove(credential)
        if self._directory is not None:
            self._directory.revoke_credential(credential.holder, credential)

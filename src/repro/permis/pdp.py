"""The PERMIS CVS/PDP sub-system (paper Section 5, Figure 4).

:class:`PermisPDP` reproduces the full decision pipeline:

1. the CVS validates the user's credentials (pushed with the request, or
   pulled from the LDAP-like directory) and extracts the valid roles;
2. the PDP performs its normal RBAC check against the target-access
   policy (with role-hierarchy inheritance);
3. on an interim grant, the Section 4.2 MSoD algorithm runs over the
   retained ADI;
4. the request and response are logged to the secure audit trail, with
   the committed retained-ADI mutation attached so the store can be
   recovered at the next start-up (Section 5.2).

"By adding the business context instance to the list of environmental
parameters that are already passed to the PERMIS PDP, we have not needed
to alter the Java API" — correspondingly, :meth:`PermisPDP.decision`
takes the context instance as one extra keyword argument.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping

from repro.audit.recovery import decision_event_payload, recover_retained_adi
from repro.audit.trail import EVENT_ADMIN, EVENT_DECISION, AuditTrailManager
from repro.core.admin import RetainedADIManagementPort
from repro.core.constraints import Role
from repro.core.context import ContextName
from repro.core.decision import Decision, DecisionRequest, Effect
from repro.core.engine import MODE_STRICT, MSoDEngine
from repro.core.retained_adi import InMemoryRetainedADIStore, RetainedADIStore
from repro.framework.pdp import PolicyDecisionPoint
from repro.obs.trace import NOOP_TRACER, DecisionTracer
from repro.perf import NOOP, PerfRecorder
from repro.permis.credentials import AttributeCredential, TrustStore
from repro.permis.cvs import CredentialValidationService
from repro.permis.directory import LdapDirectory, normalize_dn
from repro.permis.policy import PermisPolicy


class PermisPDP(PolicyDecisionPoint):
    """The PERMIS decision point with MSoD support."""

    def __init__(
        self,
        policy: PermisPolicy,
        trust_store: TrustStore,
        directory: LdapDirectory | None = None,
        store: RetainedADIStore | None = None,
        audit: AuditTrailManager | None = None,
        clock: Callable[[], float] | None = None,
        mode: str = MODE_STRICT,
        perf: PerfRecorder | None = None,
        tracer: DecisionTracer | None = None,
    ) -> None:
        self._policy = policy
        self._cvs = CredentialValidationService(policy, trust_store, directory)
        self._owns_store = store is None
        self._store = store if store is not None else InMemoryRetainedADIStore()
        self._perf = perf if perf is not None else NOOP
        self._tracer = tracer if tracer is not None else NOOP_TRACER
        self._engine = MSoDEngine(
            policy.msod_policy_set,
            self._store,
            mode=mode,
            perf=self._perf,
            tracer=self._tracer,
        )
        self._audit = audit
        self._clock = clock if clock is not None else (lambda: 0.0)
        self._management_port = RetainedADIManagementPort(self._store)

    # ------------------------------------------------------------------
    @property
    def cvs(self) -> CredentialValidationService:
        return self._cvs

    @property
    def policy(self) -> PermisPolicy:
        return self._policy

    @property
    def msod_engine(self) -> MSoDEngine:
        return self._engine

    @property
    def retained_adi(self) -> RetainedADIStore:
        return self._store

    @property
    def perf(self) -> PerfRecorder:
        return self._perf

    @property
    def tracer(self) -> DecisionTracer:
        return self._tracer

    def close(self) -> None:
        """Release the retained-ADI store if this PDP created it.

        A store handed in by the caller (e.g. one shared with a
        recovery pipeline) stays open — whoever constructed it owns its
        lifetime.  Idempotent either way.
        """
        if self._owns_store:
            self._store.close()

    @property
    def management_port(self) -> RetainedADIManagementPort:
        """The Section 4.3 management port over this PDP's retained ADI.

        Access is itself RBAC-protected: callers present roles, and by
        default only ``RetainedADIController`` may purge or inspect.
        Management operations performed through the port are logged to
        the audit trail via :meth:`log_admin_event`.
        """
        return self._management_port

    def log_admin_event(self, operation: str, detail: str, at: float) -> None:
        """Record a management-port action in the secure audit trail."""
        if self._audit is None:
            return
        self._audit.append(
            EVENT_ADMIN, at, {"operation": operation, "detail": detail}
        )

    # ------------------------------------------------------------------
    @classmethod
    def startup(
        cls,
        policy: PermisPolicy,
        trust_store: TrustStore,
        audit: AuditTrailManager,
        directory: LdapDirectory | None = None,
        last_n_trails: int | None = None,
        since: float = 0.0,
        clock: Callable[[], float] | None = None,
        mode: str = MODE_STRICT,
    ) -> "PermisPDP":
        """Initialise a PDP, recovering its retained ADI from the trails.

        Section 5.2: "At start up, the PDP reads in its policy, and then
        processes the last n audit trails starting from time t ...  Once
        its retained ADI is recovered to memory, the PDP is ready to
        start making access control decisions again."
        """
        store = InMemoryRetainedADIStore()
        recover_retained_adi(
            audit,
            policy.msod_policy_set,
            store,
            last_n_trails=last_n_trails,
            since=since,
        )
        return cls(
            policy,
            trust_store,
            directory=directory,
            store=store,
            audit=audit,
            clock=clock,
            mode=mode,
        )

    # ------------------------------------------------------------------
    @classmethod
    def from_directory(
        cls,
        policy_dn: str,
        trust_store: TrustStore,
        directory: LdapDirectory,
        audit: AuditTrailManager | None = None,
        store: RetainedADIStore | None = None,
        clock: Callable[[], float] | None = None,
        mode: str = MODE_STRICT,
        strict_msod: bool = True,
    ) -> "PermisPDP":
        """Bootstrap a PDP from the SOA's *signed* policy in the directory.

        Real PERMIS PDPs read their XML policy from the SOA's LDAP entry
        and verify its signature before trusting a single rule; an
        unverifiable policy aborts start-up
        (:class:`~repro.errors.CredentialError`).
        """
        from repro.permis.policy_store import load_policy

        policy = load_policy(
            directory, trust_store, policy_dn, strict_msod=strict_msod
        )
        return cls(
            policy,
            trust_store,
            directory=directory,
            store=store,
            audit=audit,
            clock=clock,
            mode=mode,
        )

    # ------------------------------------------------------------------
    def decision(
        self,
        holder_dn: str,
        operation: str,
        target: str,
        context_instance: ContextName,
        credentials: Iterable[AttributeCredential] | None = None,
        roles: Iterable[Role] | None = None,
        environment: Mapping[str, str] | None = None,
        at: float | None = None,
    ) -> Decision:
        """Run the full CVS → RBAC → MSoD pipeline for one request.

        Either ``credentials`` (push mode), ``roles`` (pre-validated,
        e.g. by an upstream CVS) or neither (pull mode — the CVS fetches
        from the directory) may be supplied.
        """
        perf = self._perf
        timing = perf.enabled
        tracer = self._tracer
        tracing = tracer.enabled
        perf.incr("permis.requests")
        when = self._clock() if at is None else at
        holder = normalize_dn(holder_dn)
        token = None
        if roles is None:
            cvs_started = perf.start() if timing else 0.0
            trace_cvs_started = tracer.start() if tracing else 0.0
            validation = self._cvs.validate(holder, credentials, at=when)
            valid_roles = validation.valid_roles
            if timing:
                perf.stop("permis.cvs", cvs_started)
            cvs_elapsed = (
                tracer.start() - trace_cvs_started if tracing else 0.0
            )
        else:
            valid_roles = frozenset(roles)
            cvs_elapsed = 0.0

        request = DecisionRequest(
            user_id=holder,
            roles=tuple(sorted(valid_roles, key=str)),
            operation=operation,
            target=target,
            context_instance=context_instance,
            timestamp=when,
            environment=dict(environment or {}),
        )
        if tracing:
            # The request object does not exist until the CVS has run,
            # so open the trace backdated to when validation began and
            # record the CVS span against that start.
            token = tracer.begin(request, backdate=cvs_elapsed)
            if roles is None:
                tracer.span("pdp.cvs", token.started)

        if not valid_roles:
            perf.incr("permis.cvs_denies")
            decision = Decision(
                effect=Effect.DENY,
                request=request,
                reason="CVS: no valid roles for holder",
            )
        else:
            rbac_started = perf.start() if timing else 0.0
            trace_rbac_started = tracer.start() if tracing else 0.0
            permitted = self._policy.permits(
                valid_roles, request.privilege, request.environment, when
            )
            if timing:
                perf.stop("permis.rbac", rbac_started)
            if tracing:
                tracer.span("pdp.rbac", trace_rbac_started)
            if not permitted:
                perf.incr("permis.rbac_denies")
                decision = Decision(
                    effect=Effect.DENY,
                    request=request,
                    reason=(
                        f"RBAC: no valid role grants {operation!r} on {target!r}"
                    ),
                )
            else:
                decision = self._engine.check(request)

        audit_started = perf.start() if timing else 0.0
        trace_audit_started = tracer.start() if tracing else 0.0
        self._log(decision)
        if timing:
            perf.stop("permis.audit", audit_started)
        if tracing:
            tracer.span("pdp.audit", trace_audit_started)
            decision = tracer.finish(token, decision)
        return decision

    def decide(self, request: DecisionRequest) -> Decision:
        """ISO-framework entry point: roles are taken as pre-validated."""
        return self.decision(
            request.user_id,
            request.operation,
            request.target,
            request.context_instance,
            roles=request.roles,
            environment=request.environment,
            at=request.timestamp,
        )

    # ------------------------------------------------------------------
    def _log(self, decision: Decision) -> None:
        """Every request and response is logged (Section 5.2)."""
        if self._audit is None:
            return
        self._audit.append(
            EVENT_DECISION,
            decision.request.timestamp,
            decision_event_payload(decision),
        )

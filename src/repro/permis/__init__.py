"""A PERMIS-like Privilege Management Infrastructure (Section 5, Fig. 4).

Three sub-systems, as the paper describes: privilege allocation
(:class:`~repro.permis.pa.PrivilegeAllocator`), policy management
(:class:`~repro.permis.policy.PermisPolicyBuilder`), and the CVS/PDP
(:class:`~repro.permis.cvs.CredentialValidationService`,
:class:`~repro.permis.pdp.PermisPDP`).
"""

from repro.permis.analyzer import (
    SEVERITY_ERROR,
    SEVERITY_INFO,
    SEVERITY_WARNING,
    Finding,
    analyze_msod_policy_set,
    analyze_policy,
)
from repro.permis.conditions import (
    AllOf,
    Always,
    AnyOf,
    Condition,
    EnvEquals,
    EnvOneOf,
    Negation,
    TimeWindow,
)
from repro.permis.credentials import (
    AttributeCredential,
    TrustStore,
    sign_credential,
    verify_signature,
)
from repro.permis.cvs import (
    CredentialValidationService,
    RejectedCredential,
    ValidationResult,
)
from repro.permis.directory import (
    SCOPE_BASE,
    SCOPE_ONE,
    SCOPE_SUBTREE,
    DirectoryEntry,
    LdapDirectory,
    dn_is_under,
    normalize_dn,
)
from repro.permis.pa import PrivilegeAllocator
from repro.permis.pdp import PermisPDP
from repro.permis.policy_store import (
    POLICY_ATTRIBUTE,
    SignedPolicy,
    load_policy,
    publish_policy,
    sign_policy_xml,
    verify_signed_policy,
)
from repro.permis.xml import (
    parse_permis_policy,
    write_permis_policy,
)
from repro.permis.policy import (
    PermisPolicy,
    PermisPolicyBuilder,
    RoleAssignmentRule,
    TargetAccessRule,
)

__all__ = [
    "analyze_msod_policy_set",
    "analyze_policy",
    "Finding",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "SEVERITY_INFO",
    "Condition",
    "Always",
    "AllOf",
    "AnyOf",
    "Negation",
    "EnvEquals",
    "EnvOneOf",
    "TimeWindow",
    "AttributeCredential",
    "TrustStore",
    "sign_credential",
    "verify_signature",
    "LdapDirectory",
    "DirectoryEntry",
    "normalize_dn",
    "dn_is_under",
    "SCOPE_BASE",
    "SCOPE_ONE",
    "SCOPE_SUBTREE",
    "PrivilegeAllocator",
    "CredentialValidationService",
    "ValidationResult",
    "RejectedCredential",
    "PermisPolicy",
    "PermisPolicyBuilder",
    "RoleAssignmentRule",
    "TargetAccessRule",
    "PermisPDP",
    "write_permis_policy",
    "parse_permis_policy",
    "SignedPolicy",
    "sign_policy_xml",
    "verify_signed_policy",
    "publish_policy",
    "load_policy",
    "POLICY_ATTRIBUTE",
]

"""Static analysis of PERMIS policies and their MSoD component.

The paper notes that "the policy writer also needs to know what the
business contexts are in order to construct a correct policy" — and in
practice MSoD policies can be *silently ineffective*: an MMER naming a
role no SOA may assign never fires; an MMEP naming a privilege no role
is granted can never be exercised (nor violated); a business context
whose last step is not grantable can never terminate, so its retained
ADI grows forever (the Section-4.3 problem).

:func:`analyze_policy` cross-references the RBAC policy with its MSoD
component and reports findings in three severities:

* ``error`` — the constraint cannot work as written;
* ``warning`` — the constraint works but has an operational hazard
  (e.g. unbounded history growth);
* ``info`` — notable but harmless facts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.constraints import Privilege
from repro.core.policy import MSoDPolicy, MSoDPolicySet
from repro.permis.policy import PermisPolicy

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"
SEVERITY_INFO = "info"


@dataclass(frozen=True, slots=True)
class Finding:
    """One analysis result."""

    severity: str
    policy_id: str
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.policy_id}: {self.message}"


def analyze_policy(policy: PermisPolicy) -> list[Finding]:
    """Lint a PERMIS policy together with its MSoD component."""
    findings: list[Finding] = []
    assignable_roles = frozenset(
        role for rule in policy.assignment_rules for role in rule.roles
    )
    grantable_privileges = frozenset(
        privilege
        for rule in policy.access_rules
        for privilege in rule.privileges
    )

    for msod in policy.msod_policy_set:
        findings.extend(
            _analyze_msod_policy(
                msod, policy, assignable_roles, grantable_privileges
            )
        )

    findings.extend(_analyze_rbac_layer(policy))
    return findings


def _analyze_msod_policy(
    msod: MSoDPolicy,
    policy: PermisPolicy,
    assignable_roles,
    grantable_privileges,
) -> list[Finding]:
    findings: list[Finding] = []
    pid = msod.policy_id

    # --- MMER roles must be assignable to ever conflict. -------------
    for mmer in msod.mmers:
        dead_roles = [
            role for role in mmer.roles if role not in assignable_roles
        ]
        if len(mmer.roles) - len(dead_roles) < mmer.forbidden_cardinality:
            findings.append(
                Finding(
                    SEVERITY_ERROR,
                    pid,
                    f"MMER {mmer!r} can never fire: only "
                    f"{len(mmer.roles) - len(dead_roles)} of its roles are "
                    f"assignable by any SOA, but {mmer.forbidden_cardinality}"
                    " are needed for a conflict",
                )
            )
        elif dead_roles:
            findings.append(
                Finding(
                    SEVERITY_WARNING,
                    pid,
                    "MMER names roles no SOA may assign: "
                    f"{sorted(map(str, dead_roles))}",
                )
            )

    # --- MMEP privileges must be grantable to ever be exercised. -----
    for mmep in msod.mmeps:
        distinct = set(mmep.privileges)
        dead = [p for p in distinct if p not in grantable_privileges]
        if dead and len(distinct) - len(dead) == 0:
            findings.append(
                Finding(
                    SEVERITY_ERROR,
                    pid,
                    f"MMEP {mmep!r} is dead: none of its privileges is "
                    "granted to any role",
                )
            )
        elif dead:
            findings.append(
                Finding(
                    SEVERITY_WARNING,
                    pid,
                    "MMEP names privileges granted to no role: "
                    f"{sorted(map(str, dead))}",
                )
            )

    # --- Lifecycle hazards. -------------------------------------------
    if msod.last_step is None:
        findings.append(
            Finding(
                SEVERITY_WARNING,
                pid,
                "no last step: retained ADI for this context only shrinks "
                "through the management port (Section 4.3 growth hazard)",
            )
        )
    else:
        last_privilege = Privilege(
            msod.last_step.operation, msod.last_step.target
        )
        if last_privilege not in grantable_privileges:
            findings.append(
                Finding(
                    SEVERITY_ERROR,
                    pid,
                    f"last step {msod.last_step} is granted to no role: the "
                    "business context can never terminate",
                )
            )
    if msod.first_step is not None:
        first_privilege = Privilege(
            msod.first_step.operation, msod.first_step.target
        )
        if first_privilege not in grantable_privileges:
            findings.append(
                Finding(
                    SEVERITY_ERROR,
                    pid,
                    f"first step {msod.first_step} is granted to no role: "
                    "enforcement for this context can never start",
                )
            )

    # --- Scope sanity. --------------------------------------------------
    if msod.business_context.is_root:
        findings.append(
            Finding(
                SEVERITY_INFO,
                pid,
                "policy is scoped to the universal context: it applies to "
                "every access request",
            )
        )
    return findings


def analyze_msod_policy_set(policy_set: MSoDPolicySet) -> list[Finding]:
    """Lint a bare MSoD policy set without its RBAC companion.

    :meth:`repro.core.engine.MSoDEngine.swap_policy` validates
    hot-reloaded sets through this entry point: the cross-reference
    checks of :func:`analyze_policy` need the surrounding PERMIS policy,
    but the lifecycle and scope hazards below are intrinsic to the MSoD
    set itself.  Structural errors (duplicate ids, empty constraints,
    bad cardinalities) are already raised by the policy model at
    construction time, so findings here are warnings and infos.
    """
    findings: list[Finding] = []
    for msod in policy_set:
        pid = msod.policy_id
        if msod.last_step is None:
            findings.append(
                Finding(
                    SEVERITY_WARNING,
                    pid,
                    "no last step: retained ADI for this context only "
                    "shrinks through the management port (Section 4.3 "
                    "growth hazard)",
                )
            )
        elif msod.first_step == msod.last_step:
            findings.append(
                Finding(
                    SEVERITY_WARNING,
                    pid,
                    f"first and last step are both {msod.last_step}: every "
                    "context instance terminates on the request that starts "
                    "it, so history never accumulates across sessions",
                )
            )
        if msod.business_context.is_root:
            findings.append(
                Finding(
                    SEVERITY_INFO,
                    pid,
                    "policy is scoped to the universal context: it applies "
                    "to every access request",
                )
            )
    return findings


def _analyze_rbac_layer(policy: PermisPolicy) -> list[Finding]:
    findings: list[Finding] = []
    assignable = frozenset(
        role for rule in policy.assignment_rules for role in rule.roles
    )
    # A role is reachable when some SOA may assign it directly or may
    # assign any *transitive* senior of it: close the assignable set
    # downward over the full hierarchy, not just one hop.
    reachable = policy.authorized_roles(assignable) if assignable else assignable
    for rule in policy.access_rules:
        if policy.assignment_rules and rule.role not in assignable:
            if rule.role not in reachable:
                findings.append(
                    Finding(
                        SEVERITY_WARNING,
                        "rbac",
                        f"target-access rule for {rule.role} is unreachable: "
                        "no SOA may assign the role (directly or via a "
                        "senior)",
                    )
                )
    # Overlapping MSoD policy scopes are legal (all matched policies
    # apply) but worth surfacing.
    policies = policy.msod_policy_set.policies
    for index, first in enumerate(policies):
        for second in policies[index + 1:]:
            first_ctx, second_ctx = first.business_context, second.business_context
            if first_ctx.is_equal_or_subordinate_to(
                second_ctx
            ) or second_ctx.is_equal_or_subordinate_to(first_ctx):
                findings.append(
                    Finding(
                        SEVERITY_INFO,
                        first.policy_id,
                        f"scope overlaps policy {second.policy_id!r}: both "
                        "apply to requests in the narrower context",
                    )
                )
    return findings

"""The PERMIS RBAC policy (paper Sections 5.1-5.2).

A PERMIS policy tells the CVS which Sources of Authority (SOAs) may
assign which roles to which subjects, and tells the PDP which privileges
each role confers.  The MSoD policy set (Section 3) rides along as a
component of the RBAC policy: "MSoD policies are a component of RBAC
policies.  When a PDP first initialises, it must read in the RBAC policy
including the MSoD component" (Section 4.2).

The policy is built programmatically with :class:`PermisPolicyBuilder`;
the MSoD component can be loaded from Appendix-A XML via
:mod:`repro.xmlpolicy`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.core.constraints import Privilege, Role
from repro.core.policy import MSoDPolicySet
from repro.errors import PolicyError
from repro.permis.conditions import Condition
from repro.permis.directory import dn_is_under, normalize_dn
from repro.rbac.hierarchy import RoleHierarchy


def _role_key(role: Role) -> str:
    return f"{role.role_type}:{role.value}"


@dataclass(frozen=True, slots=True)
class RoleAssignmentRule:
    """Authorises one SOA to assign a set of roles within a subject domain.

    ``max_delegation_depth`` is how many times holders may re-delegate
    the roles downstream of the SOA (0 = no delegation, the default).
    """

    soa_dn: str
    roles: frozenset[Role]
    subject_domain: str  # base DN of the domain
    max_delegation_depth: int = 0

    def permits(self, issuer_dn: str, holder_dn: str, role: Role) -> bool:
        return (
            normalize_dn(issuer_dn) == normalize_dn(self.soa_dn)
            and role in self.roles
            and dn_is_under(holder_dn, self.subject_domain)
        )

    def permits_delegated(
        self, holder_dn: str, role: Role, depth: int
    ) -> bool:
        """May a chain rooted at this SOA carry ``role`` to ``holder_dn``
        through ``depth`` delegation steps?"""
        return (
            role in self.roles
            and dn_is_under(holder_dn, self.subject_domain)
            and 0 < depth <= self.max_delegation_depth
        )


@dataclass(frozen=True, slots=True)
class TargetAccessRule:
    """Grants a set of privileges to a role (the PA relation).

    ``condition`` is an optional environmental IF-clause; the grant only
    applies when it evaluates true for the request's environment and
    timestamp (PERMIS-style conditions, Section 4.1's contextual input).
    """

    role: Role
    privileges: frozenset[Privilege]
    condition: "Condition | None" = None


class PermisPolicy:
    """An immutable, fully validated PERMIS policy."""

    def __init__(
        self,
        assignment_rules: Iterable[RoleAssignmentRule],
        access_rules: Iterable[TargetAccessRule],
        hierarchy: RoleHierarchy,
        role_index: Mapping[str, Role],
        msod: MSoDPolicySet,
    ) -> None:
        self._assignment_rules = tuple(assignment_rules)
        self._access_rules = tuple(access_rules)
        self._hierarchy = hierarchy
        self._role_index = dict(role_index)
        self._msod = msod
        self._grants: dict[Role, frozenset[Privilege]] = {}
        for rule in self._access_rules:
            existing = self._grants.get(rule.role, frozenset())
            self._grants[rule.role] = existing | rule.privileges

    # ------------------------------------------------------------------
    @property
    def msod_policy_set(self) -> MSoDPolicySet:
        return self._msod

    @property
    def assignment_rules(self) -> tuple[RoleAssignmentRule, ...]:
        return self._assignment_rules

    @property
    def access_rules(self) -> tuple[TargetAccessRule, ...]:
        return self._access_rules

    def known_roles(self) -> frozenset[Role]:
        return frozenset(self._role_index.values())

    def hierarchy_edges(self) -> tuple[tuple[Role, Role], ...]:
        """All immediate (senior, junior) role pairs, sorted for
        deterministic serialisation."""
        edges = []
        for key, role in self._role_index.items():
            for junior_key in self._hierarchy.immediate_juniors(key):
                edges.append((role, self._role_index[junior_key]))
        return tuple(
            sorted(edges, key=lambda pair: (str(pair[0]), str(pair[1])))
        )

    # ------------------------------------------------------------------
    def assignment_permitted(
        self, issuer_dn: str, holder_dn: str, role: Role
    ) -> bool:
        """May this SOA assign this role to this holder?  (CVS check.)"""
        return any(
            rule.permits(issuer_dn, holder_dn, role)
            for rule in self._assignment_rules
        )

    def delegation_permitted(
        self, soa_dn: str, holder_dn: str, role: Role, depth: int
    ) -> bool:
        """May a delegation chain of ``depth`` steps rooted at ``soa_dn``
        carry ``role`` to ``holder_dn``?"""
        normalized = normalize_dn(soa_dn)
        return any(
            normalize_dn(rule.soa_dn) == normalized
            and rule.permits_delegated(holder_dn, role, depth)
            for rule in self._assignment_rules
        )

    def authorized_roles(self, roles: Iterable[Role]) -> frozenset[Role]:
        """Close a validated role set downward over the role hierarchy."""
        keys = [_role_key(role) for role in roles if _role_key(role) in
                self._role_index]
        closed = self._hierarchy.authorized_roles(keys) if keys else frozenset()
        result = {self._role_index[key] for key in closed}
        # Roles outside the hierarchy still stand for themselves.
        result.update(role for role in roles)
        return frozenset(result)

    def privileges_of(self, roles: Iterable[Role]) -> frozenset[Privilege]:
        """All privileges conferrable by the roles (hierarchy-closed),
        ignoring conditions — a review function, not an access check."""
        privileges: set[Privilege] = set()
        for role in self.authorized_roles(roles):
            privileges |= self._grants.get(role, frozenset())
        return frozenset(privileges)

    def permits(
        self,
        roles: Iterable[Role],
        privilege: Privilege,
        environment: Mapping[str, str] | None = None,
        at: float = 0.0,
    ) -> bool:
        """The PDP's "normal checking against the RBAC policy".

        A rule with a condition only grants when the condition holds for
        the request's environment and timestamp.
        """
        environment = environment if environment is not None else {}
        authorized = self.authorized_roles(roles)
        for rule in self._access_rules:
            if rule.role not in authorized:
                continue
            if privilege not in rule.privileges:
                continue
            if rule.condition is None or rule.condition.evaluate(
                environment, at
            ):
                return True
        return False


class PermisPolicyBuilder:
    """Fluent construction of a :class:`PermisPolicy`."""

    def __init__(self) -> None:
        self._assignment_rules: list[RoleAssignmentRule] = []
        self._access_rules: list[TargetAccessRule] = []
        self._hierarchy = RoleHierarchy()
        self._role_index: dict[str, Role] = {}
        self._msod = MSoDPolicySet()

    def role(self, role: Role) -> "PermisPolicyBuilder":
        """Declare a role (needed before hierarchy edges mention it)."""
        key = _role_key(role)
        if key not in self._role_index:
            self._role_index[key] = role
            self._hierarchy.add_role(key)
        return self

    def senior_to(self, senior: Role, junior: Role) -> "PermisPolicyBuilder":
        """Declare ``senior`` inherits all privileges of ``junior``."""
        self.role(senior)
        self.role(junior)
        self._hierarchy.add_inheritance(_role_key(senior), _role_key(junior))
        return self

    def allow_assignment(
        self,
        soa_dn: str,
        roles: Iterable[Role],
        subject_domain: str,
        max_delegation_depth: int = 0,
    ) -> "PermisPolicyBuilder":
        role_set = frozenset(roles)
        if not role_set:
            raise PolicyError("assignment rule needs at least one role")
        if max_delegation_depth < 0:
            raise PolicyError("max_delegation_depth must be >= 0")
        for role in role_set:
            self.role(role)
        self._assignment_rules.append(
            RoleAssignmentRule(
                normalize_dn(soa_dn),
                role_set,
                normalize_dn(subject_domain),
                max_delegation_depth,
            )
        )
        return self

    def grant(
        self,
        role: Role,
        privileges: Iterable[Privilege],
        condition: Condition | None = None,
    ) -> "PermisPolicyBuilder":
        privilege_set = frozenset(privileges)
        if not privilege_set:
            raise PolicyError("target access rule needs at least one privilege")
        self.role(role)
        self._access_rules.append(
            TargetAccessRule(role, privilege_set, condition)
        )
        return self

    def with_msod(self, msod: MSoDPolicySet) -> "PermisPolicyBuilder":
        self._msod = msod
        return self

    def build(self) -> PermisPolicy:
        return PermisPolicy(
            assignment_rules=self._assignment_rules,
            access_rules=self._access_rules,
            hierarchy=self._hierarchy,
            role_index=self._role_index,
            msod=self._msod,
        )

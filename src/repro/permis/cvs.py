"""The Credential Validation Service (paper Section 5.1, Figure 4).

"The function of the CVS is to validate these credentials and extract
the valid roles and attributes from them, so that the PDP can make an
access control decision."

A credential yields its roles only when *all* of the following hold:

1. the issuer is in the trust store and the signature verifies under the
   issuer's key;
2. the credential names the requesting holder;
3. the evaluation time falls within the credential's validity period;
4. the policy's role-assignment rules permit this issuer to assign this
   role to this holder (per-role — a credential carrying one authorised
   and one unauthorised role yields only the authorised one).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.constraints import Role
from repro.permis.credentials import (
    AttributeCredential,
    TrustStore,
    verify_signature,
)
from repro.permis.directory import LdapDirectory, normalize_dn
from repro.permis.policy import PermisPolicy


@dataclass(frozen=True, slots=True)
class RejectedCredential:
    """Why a presented credential (or one of its roles) was discarded."""

    credential: AttributeCredential
    reason: str
    role: Role | None = None


@dataclass(frozen=True, slots=True)
class ValidationResult:
    """The CVS output: valid roles plus a rejection report."""

    holder_dn: str
    valid_roles: frozenset[Role]
    rejections: tuple[RejectedCredential, ...]

    @property
    def all_valid(self) -> bool:
        return not self.rejections


class CredentialValidationService:
    """Validates credentials against a trust store and a PERMIS policy."""

    def __init__(
        self,
        policy: PermisPolicy,
        trust_store: TrustStore,
        directory: LdapDirectory | None = None,
    ) -> None:
        self._policy = policy
        self._trust = trust_store
        self._directory = directory

    @property
    def policy(self) -> PermisPolicy:
        return self._policy

    @property
    def trust_store(self) -> TrustStore:
        return self._trust

    # ------------------------------------------------------------------
    def pull_credentials(self, holder_dn: str) -> tuple[AttributeCredential, ...]:
        """Fetch the holder's published credentials from the directory.

        PERMIS operates in *pull* mode when the user does not push
        credentials with the request.
        """
        if self._directory is None:
            return ()
        return tuple(
            credential
            for credential in self._directory.credentials_of(holder_dn)
            if isinstance(credential, AttributeCredential)
        )

    def validate(
        self,
        holder_dn: str,
        credentials: Iterable[AttributeCredential] | None = None,
        at: float = 0.0,
    ) -> ValidationResult:
        """Validate pushed credentials, or pull from the directory."""
        holder = normalize_dn(holder_dn)
        if credentials is None:
            credentials = self.pull_credentials(holder)
        valid_roles: set[Role] = set()
        rejections: list[RejectedCredential] = []
        for credential in credentials:
            rejection = self._check_envelope(credential, holder, at)
            if rejection is not None:
                rejections.append(rejection)
                continue
            for role in credential.attributes:
                if self._policy.assignment_permitted(
                    credential.issuer, holder, role
                ):
                    valid_roles.add(role)
                else:
                    rejections.append(
                        RejectedCredential(
                            credential,
                            "role assignment not permitted by policy",
                            role=role,
                        )
                    )
        return ValidationResult(
            holder_dn=holder,
            valid_roles=frozenset(valid_roles),
            rejections=tuple(rejections),
        )

    # ------------------------------------------------------------------
    #: Directory attribute under which a subject's verification key is
    #: published (stands in for the user's PKI certificate).
    SUBJECT_KEY_ATTRIBUTE = "userSigningKey"

    def validate_delegation_chain(
        self,
        holder_dn: str,
        chain: Sequence[AttributeCredential],
        at: float = 0.0,
    ) -> ValidationResult:
        """Validate a delegation-of-authority chain (PERMIS DoA).

        ``chain[0]`` must be issued by a trusted SOA; each subsequent
        credential must be issued by the previous credential's holder
        (verified against the key published under that holder's
        directory entry), carry a subset of the previous credential's
        roles, and sit inside its validity window.  The chain's depth
        must be allowed by the policy's ``max_delegation_depth`` for the
        root SOA, and the final credential must name ``holder_dn``.
        """
        holder = normalize_dn(holder_dn)
        chain = list(chain)
        if not chain:
            return ValidationResult(holder, frozenset(), ())

        def reject(credential, reason, role=None):
            return ValidationResult(
                holder,
                frozenset(),
                (RejectedCredential(credential, reason, role=role),),
            )

        root = chain[0]
        if not self._trust.is_trusted(root.issuer):
            return reject(root, "chain root issuer is not a trusted SOA")
        if not verify_signature(root, self._trust.key_for(root.issuer)):
            return reject(root, "chain root signature does not verify")
        if not root.is_valid_at(at):
            return reject(root, f"chain root not valid at time {at}")

        for parent, child in zip(chain, chain[1:]):
            if normalize_dn(child.issuer) != normalize_dn(parent.holder):
                return reject(
                    child,
                    "delegation break: issuer is not the previous holder",
                )
            issuer_key = self._subject_key(child.issuer)
            if issuer_key is None:
                return reject(
                    child, f"no published key for delegator {child.issuer!r}"
                )
            if not verify_signature(child, issuer_key):
                return reject(child, "delegated signature does not verify")
            if not set(child.attributes) <= set(parent.attributes):
                return reject(
                    child, "delegation escalates roles beyond the parent's"
                )
            if (
                child.not_before < parent.not_before
                or child.not_after > parent.not_after
            ):
                return reject(
                    child, "delegated validity exceeds the parent's window"
                )
            if not child.is_valid_at(at):
                return reject(child, f"delegated credential not valid at {at}")

        final = chain[-1]
        if normalize_dn(final.holder) != holder:
            return reject(final, f"chain does not terminate at {holder!r}")

        depth = len(chain) - 1
        valid_roles: set[Role] = set()
        rejections: list[RejectedCredential] = []
        for role in final.attributes:
            if depth == 0:
                permitted = self._policy.assignment_permitted(
                    root.issuer, holder, role
                )
            else:
                permitted = self._policy.delegation_permitted(
                    root.issuer, holder, role, depth
                )
            if permitted:
                valid_roles.add(role)
            else:
                rejections.append(
                    RejectedCredential(
                        final,
                        f"delegation of {role} to depth {depth} not "
                        "permitted by policy",
                        role=role,
                    )
                )
        return ValidationResult(holder, frozenset(valid_roles), tuple(rejections))

    def _subject_key(self, subject_dn: str) -> bytes | None:
        """Look up a delegator's verification key in the directory."""
        if self._directory is None:
            return None
        if subject_dn not in self._directory:
            return None
        values = self._directory.get_entry(subject_dn).values(
            self.SUBJECT_KEY_ATTRIBUTE
        )
        for value in values:
            if isinstance(value, bytes):
                return value
        return None

    # ------------------------------------------------------------------
    def _check_envelope(
        self, credential: AttributeCredential, holder: str, at: float
    ) -> RejectedCredential | None:
        if normalize_dn(credential.holder) != holder:
            return RejectedCredential(
                credential, f"credential holder is not {holder!r}"
            )
        if not self._trust.is_trusted(credential.issuer):
            return RejectedCredential(credential, "issuer is not a trusted SOA")
        if not verify_signature(credential, self._trust.key_for(credential.issuer)):
            return RejectedCredential(credential, "signature does not verify")
        if not credential.is_valid_at(at):
            return RejectedCredential(
                credential,
                f"credential not valid at time {at} "
                f"(validity {credential.not_before}..{credential.not_after})",
            )
        return None

"""Signed policy storage: PERMIS policies live in the directory.

In PERMIS the SOA's XML policy is itself embedded in a signed X.509
attribute certificate and published in the SOA's LDAP entry; the PDP
pulls it at start-up and verifies the signature before trusting a single
rule.  This module reproduces that loop with the same HMAC substitution
used for role credentials (see DESIGN.md).
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

from repro.errors import CredentialError
from repro.permis.credentials import TrustStore
from repro.permis.directory import LdapDirectory, normalize_dn
from repro.permis.policy import PermisPolicy
from repro.permis.xml import parse_permis_policy, write_permis_policy

#: Directory attribute holding the SOA's signed policy.
POLICY_ATTRIBUTE = "pmiXMLPolicy"


@dataclass(frozen=True, slots=True)
class SignedPolicy:
    """An XML policy document sealed by its issuing SOA."""

    issuer: str  # SOA DN
    xml: str
    signature: str

    def payload(self) -> bytes:
        return b"|".join([self.issuer.encode(), self.xml.encode()])


def sign_policy_xml(issuer_dn: str, xml: str, key: bytes) -> SignedPolicy:
    """Seal a policy document with the SOA's key."""
    if not key:
        raise CredentialError("policy signing key must be non-empty")
    issuer = normalize_dn(issuer_dn)
    signature = hmac.new(
        key, b"|".join([issuer.encode(), xml.encode()]), hashlib.sha256
    ).hexdigest()
    return SignedPolicy(issuer=issuer, xml=xml, signature=signature)


def verify_signed_policy(signed: SignedPolicy, trust: TrustStore) -> bool:
    """True when the seal verifies under the trusted key of its issuer."""
    if not trust.is_trusted(signed.issuer):
        return False
    expected = hmac.new(
        trust.key_for(signed.issuer), signed.payload(), hashlib.sha256
    ).hexdigest()
    return hmac.compare_digest(signed.signature, expected)


def publish_policy(
    directory: LdapDirectory,
    issuer_dn: str,
    policy: PermisPolicy,
    key: bytes,
    policy_dn: str | None = None,
) -> SignedPolicy:
    """Serialise, sign and publish a policy under the SOA's entry.

    Returns the published :class:`SignedPolicy`.  A previously published
    policy under the same entry is replaced (one current policy per SOA).
    """
    signed = sign_policy_xml(issuer_dn, write_permis_policy(policy), key)
    entry = directory.ensure_entry(
        policy_dn if policy_dn is not None else issuer_dn
    )
    for existing in entry.values(POLICY_ATTRIBUTE):
        entry.remove_value(POLICY_ATTRIBUTE, existing)
    entry.add_value(POLICY_ATTRIBUTE, signed)
    return signed


def load_policy(
    directory: LdapDirectory,
    trust: TrustStore,
    policy_dn: str,
    strict_msod: bool = True,
) -> PermisPolicy:
    """Fetch, verify and parse the signed policy at ``policy_dn``.

    Raises :class:`~repro.errors.CredentialError` when no policy is
    published or the seal does not verify — a PDP must refuse to start
    on an unverifiable policy.
    """
    entry = directory.get_entry(policy_dn)
    candidates = [
        value
        for value in entry.values(POLICY_ATTRIBUTE)
        if isinstance(value, SignedPolicy)
    ]
    if not candidates:
        raise CredentialError(f"no signed policy published at {policy_dn!r}")
    signed = candidates[-1]
    if not verify_signed_policy(signed, trust):
        raise CredentialError(
            f"policy at {policy_dn!r} failed signature verification"
        )
    return parse_permis_policy(signed.xml, strict_msod=strict_msod)

"""An in-memory LDAP-like directory (paper Section 5.1).

"User's roles and attributes are typically stored in one or more LDAP
directories."  This module reproduces the slice of LDAP semantics the
PERMIS CVS needs: entries addressed by distinguished name (DN),
multi-valued attributes, base/one-level/subtree search scopes, and
simple ``attr=value`` equality filters.

DNs are comma-separated RDN sequences written most-specific-first, e.g.
``cn=alice,ou=staff,o=bank,c=gb``; entry B is *under* entry A when A's
RDN sequence is a suffix of B's.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import DirectoryError

SCOPE_BASE = "base"
SCOPE_ONE = "one"
SCOPE_SUBTREE = "subtree"

_SCOPES = frozenset({SCOPE_BASE, SCOPE_ONE, SCOPE_SUBTREE})


def normalize_dn(dn: str) -> str:
    """Canonicalise a DN: trim whitespace, lower-case attribute types."""
    if not dn or not dn.strip():
        raise DirectoryError("DN must be non-empty")
    rdns = []
    for rdn in dn.split(","):
        rdn = rdn.strip()
        if not rdn:
            raise DirectoryError(f"DN {dn!r} has an empty RDN")
        attr, sep, value = rdn.partition("=")
        if not sep or not attr.strip() or not value.strip():
            raise DirectoryError(f"RDN {rdn!r} is not of the form attr=value")
        rdns.append(f"{attr.strip().lower()}={value.strip()}")
    return ",".join(rdns)


def dn_is_under(dn: str, base: str) -> bool:
    """True when ``dn`` equals ``base`` or sits anywhere below it."""
    dn_rdns = normalize_dn(dn).split(",")
    base_rdns = normalize_dn(base).split(",")
    if len(base_rdns) > len(dn_rdns):
        return False
    return dn_rdns[len(dn_rdns) - len(base_rdns):] == base_rdns


class DirectoryEntry:
    """One directory entry: a DN plus multi-valued attributes."""

    __slots__ = ("_dn", "_attributes")

    def __init__(self, dn: str) -> None:
        self._dn = normalize_dn(dn)
        self._attributes: dict[str, list[object]] = {}

    @property
    def dn(self) -> str:
        return self._dn

    def add_value(self, attribute: str, value: object) -> None:
        self._attributes.setdefault(attribute.lower(), []).append(value)

    def remove_value(self, attribute: str, value: object) -> None:
        values = self._attributes.get(attribute.lower())
        if not values or value not in values:
            raise DirectoryError(
                f"{self._dn}: attribute {attribute!r} has no such value"
            )
        values.remove(value)
        if not values:
            del self._attributes[attribute.lower()]

    def values(self, attribute: str) -> tuple[object, ...]:
        return tuple(self._attributes.get(attribute.lower(), ()))

    def attributes(self) -> dict[str, tuple[object, ...]]:
        return {name: tuple(values) for name, values in self._attributes.items()}

    def matches_filter(self, attribute: str, value: object) -> bool:
        return value in self._attributes.get(attribute.lower(), ())


class LdapDirectory:
    """A DN-addressed store of :class:`DirectoryEntry` objects."""

    #: The attribute under which PERMIS stores role credentials.
    CREDENTIAL_ATTRIBUTE = "attributecertificateattribute"

    def __init__(self) -> None:
        self._entries: dict[str, DirectoryEntry] = {}

    def add_entry(self, dn: str) -> DirectoryEntry:
        normalized = normalize_dn(dn)
        if normalized in self._entries:
            raise DirectoryError(f"entry {normalized!r} already exists")
        entry = DirectoryEntry(normalized)
        self._entries[normalized] = entry
        return entry

    def get_entry(self, dn: str) -> DirectoryEntry:
        entry = self._entries.get(normalize_dn(dn))
        if entry is None:
            raise DirectoryError(f"no entry {dn!r}")
        return entry

    def ensure_entry(self, dn: str) -> DirectoryEntry:
        normalized = normalize_dn(dn)
        entry = self._entries.get(normalized)
        return entry if entry is not None else self.add_entry(normalized)

    def delete_entry(self, dn: str) -> None:
        normalized = normalize_dn(dn)
        if normalized not in self._entries:
            raise DirectoryError(f"no entry {dn!r}")
        del self._entries[normalized]

    def entries(self) -> Iterator[DirectoryEntry]:
        return iter(list(self._entries.values()))

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, dn: str) -> bool:
        try:
            return normalize_dn(dn) in self._entries
        except DirectoryError:
            return False

    # ------------------------------------------------------------------
    def search(
        self,
        base_dn: str,
        scope: str = SCOPE_SUBTREE,
        attribute: str | None = None,
        value: object | None = None,
    ) -> list[DirectoryEntry]:
        """LDAP-style search with an optional equality filter."""
        if scope not in _SCOPES:
            raise DirectoryError(f"unknown search scope {scope!r}")
        base = normalize_dn(base_dn)
        base_depth = len(base.split(","))
        results = []
        for entry in self._entries.values():
            if not dn_is_under(entry.dn, base):
                continue
            depth = len(entry.dn.split(","))
            if scope == SCOPE_BASE and depth != base_depth:
                continue
            if scope == SCOPE_ONE and depth != base_depth + 1:
                continue
            if attribute is not None and not entry.matches_filter(attribute, value):
                continue
            results.append(entry)
        return sorted(results, key=lambda entry: entry.dn)

    # ------------------------------------------------------------------
    def publish_credential(self, holder_dn: str, credential: object) -> None:
        """Attach a credential to the holder's entry (PA sub-system)."""
        self.ensure_entry(holder_dn).add_value(self.CREDENTIAL_ATTRIBUTE, credential)

    def credentials_of(self, holder_dn: str) -> tuple[object, ...]:
        """All credentials published under the holder's entry."""
        if holder_dn not in self:
            return ()
        return self.get_entry(holder_dn).values(self.CREDENTIAL_ATTRIBUTE)

    def revoke_credential(self, holder_dn: str, credential: object) -> None:
        self.get_entry(holder_dn).remove_value(
            self.CREDENTIAL_ATTRIBUTE, credential
        )

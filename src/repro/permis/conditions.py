"""Environmental conditions on target-access rules.

Section 4.1 lists "any environmental or contextual information such as
the time of day" among the PDP's inputs.  PERMIS target-access policies
can attach IF-conditions to granted actions; this module provides a
small, composable condition algebra evaluated against the decision
request's environment and timestamp.
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import PolicyError


class Condition:
    """A predicate over (environment, time).  Subclasses override
    :meth:`evaluate`; instances compose with ``&``, ``|`` and ``~``."""

    def evaluate(self, environment: Mapping[str, str], at: float) -> bool:
        raise NotImplementedError

    def __and__(self, other: "Condition") -> "Condition":
        return AllOf(self, other)

    def __or__(self, other: "Condition") -> "Condition":
        return AnyOf(self, other)

    def __invert__(self) -> "Condition":
        return Negation(self)


class Always(Condition):
    """The vacuous condition (a rule without an IF-clause)."""

    def evaluate(self, environment: Mapping[str, str], at: float) -> bool:
        return True

    def __repr__(self) -> str:
        return "Always()"


class AllOf(Condition):
    """Conjunction: every sub-condition must hold."""

    def __init__(self, *conditions: Condition) -> None:
        if not conditions:
            raise PolicyError("AllOf needs at least one condition")
        self._conditions = conditions

    def evaluate(self, environment: Mapping[str, str], at: float) -> bool:
        return all(c.evaluate(environment, at) for c in self._conditions)

    def __repr__(self) -> str:
        return f"AllOf({', '.join(map(repr, self._conditions))})"


class AnyOf(Condition):
    """Disjunction: at least one sub-condition must hold."""

    def __init__(self, *conditions: Condition) -> None:
        if not conditions:
            raise PolicyError("AnyOf needs at least one condition")
        self._conditions = conditions

    def evaluate(self, environment: Mapping[str, str], at: float) -> bool:
        return any(c.evaluate(environment, at) for c in self._conditions)

    def __repr__(self) -> str:
        return f"AnyOf({', '.join(map(repr, self._conditions))})"


class Negation(Condition):
    """Logical complement of a condition."""

    def __init__(self, condition: Condition) -> None:
        self._condition = condition

    def evaluate(self, environment: Mapping[str, str], at: float) -> bool:
        return not self._condition.evaluate(environment, at)

    def __repr__(self) -> str:
        return f"~{self._condition!r}"


class EnvEquals(Condition):
    """Requires an environment entry to equal a value exactly."""

    def __init__(self, key: str, value: str) -> None:
        if not key:
            raise PolicyError("EnvEquals needs a non-empty key")
        self._key = key
        self._value = value

    def evaluate(self, environment: Mapping[str, str], at: float) -> bool:
        return environment.get(self._key) == self._value

    def __repr__(self) -> str:
        return f"EnvEquals({self._key!r}, {self._value!r})"


class EnvOneOf(Condition):
    """Requires an environment entry to be one of several values."""

    def __init__(self, key: str, values) -> None:
        if not key:
            raise PolicyError("EnvOneOf needs a non-empty key")
        self._key = key
        self._values = frozenset(values)
        if not self._values:
            raise PolicyError("EnvOneOf needs at least one value")

    def evaluate(self, environment: Mapping[str, str], at: float) -> bool:
        return environment.get(self._key) in self._values

    def __repr__(self) -> str:
        return f"EnvOneOf({self._key!r}, {sorted(self._values)!r})"


class TimeWindow(Condition):
    """The classic time-of-day restriction.

    The timestamp is reduced modulo ``day_length`` (86 400 s by
    default); the window is ``[start, end)`` and may wrap midnight
    (``start > end``).
    """

    def __init__(
        self, start: float, end: float, day_length: float = 86_400.0
    ) -> None:
        if day_length <= 0:
            raise PolicyError("day_length must be positive")
        if not (0 <= start < day_length and 0 <= end < day_length):
            raise PolicyError("window bounds must lie within the day")
        self._start = float(start)
        self._end = float(end)
        self._day_length = float(day_length)

    def evaluate(self, environment: Mapping[str, str], at: float) -> bool:
        moment = at % self._day_length
        if self._start <= self._end:
            return self._start <= moment < self._end
        return moment >= self._start or moment < self._end

    def __repr__(self) -> str:
        return f"TimeWindow({self._start}, {self._end})"

"""Policy verification & safe-rollout pipeline.

Three stages turn hot-reload from merely-atomic into production-safe:

1. :mod:`repro.verify.static` — structured static analysis of an MSoD
   policy set (machine-readable findings with stable codes);
2. :mod:`repro.verify.whatif` — differential replay of a recorded audit
   trail under a candidate set, reporting flipped decisions;
3. :mod:`repro.verify.gate` — the rollout gate combining both, wired
   into ``policy reload --verify`` and the cluster canary.
"""

from repro.verify.gate import GateResult, evaluate_gate
from repro.verify.static import (
    SEVERITY_ERROR,
    SEVERITY_INFO,
    SEVERITY_WARNING,
    VerifyFinding,
    VerifyReport,
    analyze_policy_set,
    render_findings,
)
from repro.verify.whatif import (
    DecisionFlip,
    WhatIfReport,
    decision_request_from_payload,
    what_if_replay,
)

__all__ = [
    "GateResult",
    "evaluate_gate",
    "SEVERITY_ERROR",
    "SEVERITY_INFO",
    "SEVERITY_WARNING",
    "VerifyFinding",
    "VerifyReport",
    "analyze_policy_set",
    "render_findings",
    "DecisionFlip",
    "WhatIfReport",
    "decision_request_from_payload",
    "what_if_replay",
]

"""The rollout gate (stage 3): static analysis + what-if as a swap gate.

``policy reload --verify`` (and the cluster canary) funnel through
:func:`evaluate_gate`: run the static analyzer over the candidate set
and — when a recorded trail is available — the differential what-if
replay, then refuse the rollout on error-severity findings or on more
decision flips than the operator budgeted (``max_flips``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Optional

from repro.core.policy import MSoDPolicySet
from repro.verify.static import VerifyReport, analyze_policy_set
from repro.verify.whatif import WhatIfReport, what_if_replay

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.audit.trail import AuditTrailManager
    from repro.permis.policy import PermisPolicy
    from repro.rbac.constraints import SsdConstraint


@dataclass(frozen=True, slots=True)
class GateResult:
    """The verdict of one verification-gated rollout attempt."""

    static: VerifyReport
    whatif: WhatIfReport | None
    max_flips: int
    ok: bool
    reasons: tuple[str, ...]

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "max_flips": self.max_flips,
            "reasons": list(self.reasons),
            "static": self.static.to_dict(),
            "whatif": self.whatif.to_dict() if self.whatif else None,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "GateResult":
        whatif = data.get("whatif")
        return cls(
            static=VerifyReport.from_dict(data.get("static", {})),
            whatif=WhatIfReport.from_dict(whatif) if whatif else None,
            max_flips=int(data.get("max_flips", 0)),
            ok=bool(data.get("ok", False)),
            reasons=tuple(str(r) for r in data.get("reasons", ())),
        )


def evaluate_gate(
    candidate_set: MSoDPolicySet,
    *,
    permis: "PermisPolicy | None" = None,
    ssd: Iterable["SsdConstraint"] = (),
    trails: "AuditTrailManager | None" = None,
    max_flips: int = 0,
    last_n_trails: int | None = None,
    since: float = 0.0,
    policy_resolver: Optional[
        Callable[[int], MSoDPolicySet | None]
    ] = None,
) -> GateResult:
    """Run the verification gate over a candidate policy set.

    Static analysis always runs; the what-if replay runs only when a
    recorded ``trails`` directory is supplied.  The gate fails on any
    error-severity static finding and on strictly more than
    ``max_flips`` flipped decisions.
    """
    static = analyze_policy_set(candidate_set, permis=permis, ssd=ssd)
    reasons: list[str] = []
    if not static.ok:
        reasons.extend(str(finding) for finding in static.errors)
    whatif: WhatIfReport | None = None
    if trails is not None:
        whatif = what_if_replay(
            trails,
            candidate_set,
            last_n_trails=last_n_trails,
            since=since,
            policy_resolver=policy_resolver,
        )
        if whatif.flip_count > max_flips:
            reasons.append(
                f"what-if replay flips {whatif.flip_count} recorded "
                f"decisions (budget {max_flips}): "
                + "; ".join(str(flip) for flip in whatif.flips[:5])
            )
    return GateResult(
        static=static,
        whatif=whatif,
        max_flips=max_flips,
        ok=not reasons,
        reasons=tuple(reasons),
    )

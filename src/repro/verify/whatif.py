"""Differential what-if replay (stage 2 of the verification pipeline).

A recorded audit trail is the ground truth of what the production PDP
decided.  Replaying its decision stream through a fresh engine loaded
with a *candidate* policy set answers the operator's question before a
hot reload: **which past decisions would have gone the other way?**

The replay is sequential and self-contained: the candidate engine
starts from an empty retained-ADI store (or one pre-seeded through the
epoch-aware :func:`~repro.audit.recovery.recover_retained_adi`
machinery, see ``seed_events``) and accumulates its *own* history as it
re-decides each recorded request in trail order.  Management purges
recorded in the trail replay against the candidate store too, so
context terminations line up.

The result is deterministic: trails are read in sealed order, the
engine is single-threaded, and the stores are exact — the same trail
and candidate produce bit-identical :class:`WhatIfReport` objects
whether the replay store is in-memory or SQLite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.audit.recovery import recover_retained_adi
from repro.audit.trail import EVENT_DECISION, EVENT_PURGE, AuditTrailManager
from repro.core.context import ContextName
from repro.core.decision import DecisionRequest
from repro.core.engine import MODE_STRICT, MSoDEngine
from repro.core.policy import MSoDPolicySet
from repro.core.policy_epoch import policy_set_digest
from repro.core.retained_adi import InMemoryRetainedADIStore, RetainedADIStore
from repro.errors import AuditTrailError


def decision_request_from_payload(payload: dict) -> DecisionRequest:
    """Reconstruct the request half of a recorded decision event.

    The inverse of the ``request`` sub-dict written by
    :func:`~repro.audit.recovery.decision_event_payload`.  The trail
    does not record the environmental inputs (they are not part of the
    retained ADI), so the reconstructed request carries an empty
    environment — condition-gated RBAC grants happen *before* the MSoD
    step and are already folded into the recorded effect.
    """
    from repro.core.constraints import Role

    request = payload.get("request")
    if not isinstance(request, dict):
        raise AuditTrailError("decision event payload has no request")
    return DecisionRequest(
        user_id=str(request["user_id"]),
        roles=tuple(
            Role(str(role_type), str(value))
            for role_type, value in request.get("roles", ())
        ),
        operation=str(request["operation"]),
        target=str(request["target"]),
        context_instance=ContextName.parse(str(request["context_instance"])),
        timestamp=float(request.get("timestamp", 0.0)),
        request_id=str(request.get("request_id", "")),
    )


@dataclass(frozen=True, slots=True)
class DecisionFlip:
    """One recorded decision the candidate set would decide differently."""

    request_id: str
    user_id: str
    operation: str
    target: str
    context_instance: str
    timestamp: float
    recorded_effect: str
    replayed_effect: str
    recorded_reason: str
    replayed_reason: str
    replayed_policy_id: str
    replayed_constraint: str

    def to_dict(self) -> dict:
        return {
            "request_id": self.request_id,
            "user_id": self.user_id,
            "operation": self.operation,
            "target": self.target,
            "context_instance": self.context_instance,
            "timestamp": self.timestamp,
            "recorded_effect": self.recorded_effect,
            "replayed_effect": self.replayed_effect,
            "recorded_reason": self.recorded_reason,
            "replayed_reason": self.replayed_reason,
            "replayed_policy_id": self.replayed_policy_id,
            "replayed_constraint": self.replayed_constraint,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DecisionFlip":
        return cls(
            request_id=str(data.get("request_id", "")),
            user_id=str(data.get("user_id", "")),
            operation=str(data.get("operation", "")),
            target=str(data.get("target", "")),
            context_instance=str(data.get("context_instance", "")),
            timestamp=float(data.get("timestamp", 0.0)),
            recorded_effect=str(data.get("recorded_effect", "")),
            replayed_effect=str(data.get("replayed_effect", "")),
            recorded_reason=str(data.get("recorded_reason", "")),
            replayed_reason=str(data.get("replayed_reason", "")),
            replayed_policy_id=str(data.get("replayed_policy_id", "")),
            replayed_constraint=str(data.get("replayed_constraint", "")),
        )

    def __str__(self) -> str:
        return (
            f"{self.recorded_effect}->{self.replayed_effect} "
            f"{self.user_id} {self.operation}@{self.target} "
            f"[{self.context_instance}] ({self.replayed_reason})"
        )


@dataclass(frozen=True, slots=True)
class WhatIfReport:
    """The outcome of one differential replay."""

    candidate_digest: str
    events_scanned: int
    decisions_replayed: int
    seeded_events: int
    flips: tuple[DecisionFlip, ...]
    # Exact flip total; may exceed ``len(flips)`` when detail was capped.
    flip_count: int = 0

    @property
    def grant_to_deny(self) -> int:
        return sum(
            1 for flip in self.flips if flip.replayed_effect == "deny"
        )

    @property
    def deny_to_grant(self) -> int:
        return sum(
            1 for flip in self.flips if flip.replayed_effect == "grant"
        )

    def to_dict(self) -> dict:
        return {
            "candidate_digest": self.candidate_digest,
            "events_scanned": self.events_scanned,
            "decisions_replayed": self.decisions_replayed,
            "seeded_events": self.seeded_events,
            "flips": [flip.to_dict() for flip in self.flips],
            "flip_count": self.flip_count,
            "grant_to_deny": self.grant_to_deny,
            "deny_to_grant": self.deny_to_grant,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WhatIfReport":
        flips = data.get("flips", [])
        if not isinstance(flips, list):
            raise TypeError("what-if report flips must be a list")
        details = tuple(DecisionFlip.from_dict(item) for item in flips)
        return cls(
            candidate_digest=str(data.get("candidate_digest", "")),
            events_scanned=int(data.get("events_scanned", 0)),
            decisions_replayed=int(data.get("decisions_replayed", 0)),
            seeded_events=int(data.get("seeded_events", 0)),
            flips=details,
            flip_count=int(data.get("flip_count", len(details))),
        )


def what_if_replay(
    trails: AuditTrailManager,
    candidate_set: MSoDPolicySet,
    store: RetainedADIStore | None = None,
    *,
    last_n_trails: int | None = None,
    since: float = 0.0,
    seed_events: int = 0,
    max_flips_recorded: int = 1000,
    mode: str = MODE_STRICT,
    policy_resolver: Optional[
        Callable[[int], MSoDPolicySet | None]
    ] = None,
) -> WhatIfReport:
    """Replay a recorded decision stream under a candidate policy set.

    Parameters
    ----------
    store:
        The retained-ADI store backing the replay engine (fresh
        in-memory store by default).  Must start empty unless it holds
        deliberately pre-seeded state.
    seed_events:
        Replay the first N trail events through the epoch-aware
        :func:`~repro.audit.recovery.recover_retained_adi` machinery
        instead of re-deciding them: their recorded ADI mutations are
        applied verbatim (under the policy epoch that produced them,
        when ``policy_resolver`` can resolve it) and only the events
        *after* the seed window are compared differentially.
    max_flips_recorded:
        Cap on the per-flip detail retained in the report (counts are
        always exact).
    """
    if store is None:
        store = InMemoryRetainedADIStore()
    if seed_events > 0:
        recover_retained_adi(
            trails,
            candidate_set,
            store,
            last_n_trails=last_n_trails,
            since=since,
            max_events=seed_events,
            policy_resolver=policy_resolver,
        )
    engine = MSoDEngine(candidate_set, store, mode=mode)
    events_scanned = 0
    decisions_replayed = 0
    flips: list[DecisionFlip] = []
    flip_count = 0
    for event in trails.events(last_n_trails=last_n_trails, since=since):
        events_scanned += 1
        if events_scanned <= seed_events:
            continue
        if event.event_type == EVENT_PURGE:
            store.purge_context(ContextName.parse(event.payload["context"]))
            continue
        if event.event_type != EVENT_DECISION:
            continue
        payload = event.payload
        request = decision_request_from_payload(payload)
        replayed = engine.check(request)
        decisions_replayed += 1
        recorded_effect = str(payload.get("effect", ""))
        if replayed.effect == recorded_effect:
            continue
        flip_count += 1
        if len(flips) >= max_flips_recorded:
            continue
        violation = replayed.violation
        flips.append(
            DecisionFlip(
                request_id=request.request_id,
                user_id=request.user_id,
                operation=request.operation,
                target=request.target,
                context_instance=str(request.context_instance),
                timestamp=request.timestamp,
                recorded_effect=recorded_effect,
                replayed_effect=replayed.effect,
                recorded_reason=str(payload.get("reason", "")),
                replayed_reason=replayed.reason,
                replayed_policy_id=(
                    violation.policy_id
                    if violation is not None
                    else ";".join(replayed.matched_policy_ids)
                ),
                replayed_constraint=(
                    violation.constraint_repr if violation is not None else ""
                ),
            )
        )
    return WhatIfReport(
        candidate_digest=policy_set_digest(candidate_set),
        events_scanned=events_scanned,
        decisions_replayed=decisions_replayed,
        seeded_events=min(max(seed_events, 0), events_scanned),
        flips=tuple(flips),
        flip_count=flip_count,
    )

"""Static verification of MSoD policy sets (stage 1 of the pipeline).

The paper warns that "the policy writer also needs to know what the
business contexts are in order to construct a correct policy" — and a
well-formed set can still be semantically broken: a constraint whose
cardinality is unreachable, a constraint subsumed by a stricter sibling,
a policy whose scope is shadowed by a stricter ancestor.  This module
promotes the :mod:`repro.permis.analyzer` linter into a structured pass
producing machine-readable findings, each carrying a stable ``code``, a
``severity``, the ``policy_id`` it concerns, and a human ``detail``.

Severities follow the analyzer convention:

* ``error`` — the set must not be deployed (hot-reload gates refuse it);
* ``warning`` — deployable but operationally hazardous;
* ``info`` — notable but harmless.

The pass runs over a bare :class:`~repro.core.policy.MSoDPolicySet`;
when the surrounding PERMIS policy is supplied the reachability checks
(assignable roles, grantable privileges, both closed over the transitive
role hierarchy) run as well, and SSD constraint sets may be supplied to
detect MMERs that static separation already covers.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.core.constraints import (
    MMCD,
    MMEP,
    MMER,
    POLICY_EXPORT_PRIVILEGE,
    POLICY_RELOAD_PRIVILEGE,
    AdminBoundary,
    Privilege,
    Role,
    count_history_matches,
)
from repro.core.policy import MSoDPolicy, MSoDPolicySet

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.permis.policy import PermisPolicy
    from repro.rbac.constraints import SsdConstraint

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"
SEVERITY_INFO = "info"

_SEVERITIES = (SEVERITY_ERROR, SEVERITY_WARNING, SEVERITY_INFO)

# Finding codes, grouped by stage.  Stable identifiers: tooling and the
# rollout gate key off these, not the prose details.
CONSTRAINT_DUPLICATE = "CONSTRAINT_DUPLICATE"
POLICY_DUPLICATE = "POLICY_DUPLICATE"
MMER_REDUNDANT = "MMER_REDUNDANT"
MMEP_REDUNDANT = "MMEP_REDUNDANT"
SCOPE_SHADOWED = "SCOPE_SHADOWED"
SCOPE_UNIVERSAL = "SCOPE_UNIVERSAL"
SCOPE_OVERLAP = "SCOPE_OVERLAP"
LIFECYCLE_NO_LAST_STEP = "LIFECYCLE_NO_LAST_STEP"
LIFECYCLE_SELF_TERMINATING = "LIFECYCLE_SELF_TERMINATING"
MMER_UNSATISFIABLE = "MMER_UNSATISFIABLE"
MMER_DEAD_ROLES = "MMER_DEAD_ROLES"
MMEP_UNSATISFIABLE = "MMEP_UNSATISFIABLE"
MMEP_DEAD_PRIVILEGES = "MMEP_DEAD_PRIVILEGES"
FIRST_STEP_UNGRANTABLE = "FIRST_STEP_UNGRANTABLE"
LAST_STEP_UNGRANTABLE = "LAST_STEP_UNGRANTABLE"
MMER_COVERED_BY_SSD = "MMER_COVERED_BY_SSD"
RBAC_UNREACHABLE_RULE = "RBAC_UNREACHABLE_RULE"
MMCD_UNSATISFIABLE = "MMCD_UNSATISFIABLE"
MMCD_CONFLICTS_MMER = "MMCD_CONFLICTS_MMER"
ADMIN_BOUNDARY_UNGUARDED = "ADMIN_BOUNDARY_UNGUARDED"


@dataclass(frozen=True, slots=True)
class VerifyFinding:
    """One machine-readable verification result."""

    code: str
    severity: str
    policy_id: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.code} {self.policy_id}: {self.detail}"

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "severity": self.severity,
            "policy_id": self.policy_id,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "VerifyFinding":
        return cls(
            code=str(data["code"]),
            severity=str(data["severity"]),
            policy_id=str(data["policy_id"]),
            detail=str(data["detail"]),
        )


@dataclass(frozen=True, slots=True)
class VerifyReport:
    """All findings from one static pass, in deterministic order."""

    findings: tuple[VerifyFinding, ...]

    @property
    def errors(self) -> tuple[VerifyFinding, ...]:
        return tuple(f for f in self.findings if f.severity == SEVERITY_ERROR)

    @property
    def warnings(self) -> tuple[VerifyFinding, ...]:
        return tuple(f for f in self.findings if f.severity == SEVERITY_WARNING)

    @property
    def infos(self) -> tuple[VerifyFinding, ...]:
        return tuple(f for f in self.findings if f.severity == SEVERITY_INFO)

    @property
    def ok(self) -> bool:
        """True when no error-severity finding is present."""
        return not self.errors

    def counts_by_severity(self) -> dict[str, int]:
        counts = {severity: 0 for severity in _SEVERITIES}
        for finding in self.findings:
            counts[finding.severity] = counts.get(finding.severity, 0) + 1
        return counts

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "counts": self.counts_by_severity(),
            "findings": [finding.to_dict() for finding in self.findings],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "VerifyReport":
        findings = data.get("findings", [])
        if not isinstance(findings, list):
            raise TypeError("verify report findings must be a list")
        return cls(
            findings=tuple(VerifyFinding.from_dict(item) for item in findings)
        )


def analyze_policy_set(
    policy_set: MSoDPolicySet,
    *,
    permis: "PermisPolicy | None" = None,
    ssd: Iterable["SsdConstraint"] = (),
) -> VerifyReport:
    """Run the full static pass over an MSoD policy set.

    ``permis`` enables the cross-reference checks against the RBAC layer
    (role assignability and privilege grantability, closed over the
    transitive role hierarchy).  ``ssd`` supplies static
    separation-of-duty sets whose coverage of an MMER makes the MMER
    dead weight.
    """
    findings: list[VerifyFinding] = []
    for policy in policy_set:
        findings.extend(_intra_policy_findings(policy))
    findings.extend(_cross_policy_findings(policy_set))
    findings.extend(_mmcd_findings(policy_set))
    findings.extend(_admin_boundary_findings(policy_set))
    if ssd:
        findings.extend(_ssd_findings(policy_set, tuple(ssd)))
    if permis is not None:
        findings.extend(_permis_findings(policy_set, permis))
        findings.extend(_mmcd_permis_findings(policy_set, permis, tuple(ssd)))
        findings.extend(_rbac_layer_findings(permis))
    return VerifyReport(findings=tuple(findings))


def render_findings(report: VerifyReport) -> tuple[str, ...]:
    """The report's findings as display strings (for ``PolicySwapReport``)."""
    return tuple(str(finding) for finding in report.findings)


# ----------------------------------------------------------------------
# Intra-policy checks (bare set, no companion needed).
# ----------------------------------------------------------------------
def _intra_policy_findings(policy: MSoDPolicy) -> list[VerifyFinding]:
    findings: list[VerifyFinding] = []
    pid = policy.policy_id

    findings.extend(
        _duplicate_constraints(pid, policy.mmers, "MMER")
    )
    findings.extend(
        _duplicate_constraints(pid, policy.mmeps, "MMEP")
    )
    findings.extend(
        _duplicate_constraints(pid, policy.extra_constraints, "extension")
    )

    # Redundancy: a constraint implied by a strictly stricter sibling.
    # MMER A is implied by B when roles(A) ⊆ roles(B) and m(B) <= m(A):
    # any history violating A necessarily violates B first.
    for index, mmer in enumerate(policy.mmers):
        for other_index, other in enumerate(policy.mmers):
            if other_index == index or mmer == other:
                continue
            if _mmer_implied_by(mmer, other):
                findings.append(
                    VerifyFinding(
                        MMER_REDUNDANT,
                        SEVERITY_WARNING,
                        pid,
                        f"{mmer!r} is implied by stricter sibling {other!r}"
                        " and can never be the binding constraint",
                    )
                )
                break
    for index, mmep in enumerate(policy.mmeps):
        for other_index, other in enumerate(policy.mmeps):
            if other_index == index or mmep == other:
                continue
            if _mmep_implied_by(mmep, other):
                findings.append(
                    VerifyFinding(
                        MMEP_REDUNDANT,
                        SEVERITY_WARNING,
                        pid,
                        f"{mmep!r} is implied by stricter sibling {other!r}"
                        " and can never be the binding constraint",
                    )
                )
                break

    # Lifecycle hazards (the Section 4.3 growth problem).
    if policy.last_step is None:
        findings.append(
            VerifyFinding(
                LIFECYCLE_NO_LAST_STEP,
                SEVERITY_WARNING,
                pid,
                "no last step: retained ADI for this context only shrinks "
                "through the management port (Section 4.3 growth hazard)",
            )
        )
    elif policy.first_step == policy.last_step:
        findings.append(
            VerifyFinding(
                LIFECYCLE_SELF_TERMINATING,
                SEVERITY_WARNING,
                pid,
                f"first and last step are both {policy.last_step}: every "
                "context instance terminates on the request that starts it, "
                "so history never accumulates across sessions",
            )
        )

    if policy.business_context.is_root:
        findings.append(
            VerifyFinding(
                SCOPE_UNIVERSAL,
                SEVERITY_INFO,
                pid,
                "policy is scoped to the universal context: it applies to "
                "every access request",
            )
        )
    return findings


def _duplicate_constraints(
    pid: str, constraints: tuple, kind: str
) -> list[VerifyFinding]:
    """Exact duplicates (modulo ordering) within one policy are errors:
    a repeated constraint is always an authoring mistake — the copy can
    never change a decision."""
    findings: list[VerifyFinding] = []
    reported: set[int] = set()
    for index, constraint in enumerate(constraints):
        if index in reported:
            continue
        for other_index in range(index + 1, len(constraints)):
            if constraints[other_index] == constraint:
                reported.add(other_index)
                findings.append(
                    VerifyFinding(
                        CONSTRAINT_DUPLICATE,
                        SEVERITY_ERROR,
                        pid,
                        f"duplicate {kind} constraint {constraint!r} "
                        "(listed more than once, modulo ordering)",
                    )
                )
                break
    return findings


def _mmer_implied_by(mmer: MMER, other: MMER) -> bool:
    return (
        set(mmer.roles) <= set(other.roles)
        and other.forbidden_cardinality <= mmer.forbidden_cardinality
    )


def _mmep_implied_by(mmep: MMEP, other: MMEP) -> bool:
    ours, theirs = Counter(mmep.privileges), Counter(other.privileges)
    return (
        all(theirs[priv] >= count for priv, count in ours.items())
        and other.forbidden_cardinality <= mmep.forbidden_cardinality
    )


# ----------------------------------------------------------------------
# Cross-policy checks: duplicates, shadowed scopes, overlaps.
# ----------------------------------------------------------------------
def _same_steps(first: MSoDPolicy, second: MSoDPolicy) -> bool:
    return (
        first.first_step == second.first_step
        and first.last_step == second.last_step
    )


def _constraints_equal(first: MSoDPolicy, second: MSoDPolicy) -> bool:
    return (
        set(first.mmers) == set(second.mmers)
        and set(first.mmeps) == set(second.mmeps)
        and set(first.extra_constraints) == set(second.extra_constraints)
    )


def _constraints_implied(inner: MSoDPolicy, outer: MSoDPolicy) -> bool:
    """Every constraint of ``inner`` is implied by some ``outer`` one."""
    return (
        all(
            any(_mmer_implied_by(mmer, other) for other in outer.mmers)
            for mmer in inner.mmers
        )
        and all(
            any(_mmep_implied_by(mmep, other) for other in outer.mmeps)
            for mmep in inner.mmeps
        )
        # Extension kinds have no implication lattice: only an exact
        # copy in the ancestor shadows them.
        and all(
            extra in outer.extra_constraints
            for extra in inner.extra_constraints
        )
    )


def _cross_policy_findings(policy_set: MSoDPolicySet) -> list[VerifyFinding]:
    findings: list[VerifyFinding] = []
    policies = policy_set.policies
    shadow_reported: set[str] = set()
    for index, policy in enumerate(policies):
        for other in policies[index + 1:]:
            # Semantic duplicates.  The policy model already rejects
            # duplicate *ids*, so these are distinct ids carrying the
            # same context, steps and constraint sets.
            if (
                policy.business_context == other.business_context
                and _same_steps(policy, other)
                and _constraints_equal(policy, other)
            ):
                findings.append(
                    VerifyFinding(
                        POLICY_DUPLICATE,
                        SEVERITY_ERROR,
                        other.policy_id,
                        f"duplicate of policy {policy.policy_id!r}: same "
                        "business context, steps and constraints",
                    )
                )
                continue
            if policy.business_context == other.business_context:
                findings.append(
                    VerifyFinding(
                        SCOPE_OVERLAP,
                        SEVERITY_INFO,
                        policy.policy_id,
                        f"scope overlaps policy {other.policy_id!r}: both "
                        "apply to requests in the narrower context",
                    )
                )
                continue
            for inner, outer in ((policy, other), (other, policy)):
                if inner.policy_id in shadow_reported:
                    continue
                if not inner.business_context.is_equal_or_subordinate_to(
                    outer.business_context
                ):
                    continue
                # ``inner`` sits under a strictly-wider ancestor scope.
                # If the ancestor's constraints are at least as strict
                # over the same enforcement window, the subordinate
                # policy can never be the binding decision.
                if _same_steps(inner, outer) and _constraints_implied(
                    inner, outer
                ):
                    shadow_reported.add(inner.policy_id)
                    findings.append(
                        VerifyFinding(
                            SCOPE_SHADOWED,
                            SEVERITY_WARNING,
                            inner.policy_id,
                            "scope is subsumed by stricter ancestor policy "
                            f"{outer.policy_id!r}: every request it matches "
                            "is already decided by the ancestor's "
                            "constraints",
                        )
                    )
                else:
                    findings.append(
                        VerifyFinding(
                            SCOPE_OVERLAP,
                            SEVERITY_INFO,
                            inner.policy_id,
                            f"scope overlaps policy {outer.policy_id!r}: "
                            "both apply to requests in the narrower context",
                        )
                    )
    return findings


# ----------------------------------------------------------------------
# Extension kinds: combination-of-duty satisfiability, admin boundaries.
# ----------------------------------------------------------------------
def _scopes_overlap(first: MSoDPolicy, second: MSoDPolicy) -> bool:
    """True when some concrete instance can match both policies."""
    return first.business_context.is_equal_or_subordinate_to(
        second.business_context
    ) or second.business_context.is_equal_or_subordinate_to(
        first.business_context
    )


def _mmcd_findings(policy_set: MSoDPolicySet) -> list[VerifyFinding]:
    """MMCD bound sets a single user can provably never complete.

    A combination-of-duty set requires *one* user to perform every
    bound step within a context instance; an MMEP over an overlapping
    scope forbids one user exercising ``m`` of its privileges there.
    When completing the bound set alone would already trip the MMEP,
    the MMCD is unsatisfiable: either the duty set can never finish, or
    finishing it is always denied.
    """
    findings: list[VerifyFinding] = []
    policies = policy_set.policies
    for policy in policies:
        for mmcd in (
            c for c in policy.extra_constraints if isinstance(c, MMCD)
        ):
            # One completed duty set = one exercise of each bound step.
            completion = Counter(mmcd.privileges)
            for other in policies:
                if not _scopes_overlap(policy, other):
                    continue
                for mmep in other.mmeps:
                    overlap = count_history_matches(
                        Counter(mmep.privileges), completion
                    )
                    if overlap >= mmep.forbidden_cardinality:
                        findings.append(
                            VerifyFinding(
                                MMCD_UNSATISFIABLE,
                                SEVERITY_ERROR,
                                policy.policy_id,
                                f"{mmcd!r} can never be completed by one "
                                f"user: finishing the bound set exercises "
                                f"{overlap} of the privileges in {mmep!r} "
                                f"(policy {other.policy_id!r}, overlapping "
                                "scope), reaching its forbidden cardinality "
                                f"{mmep.forbidden_cardinality}",
                            )
                        )
    return findings


def _admin_boundary_findings(
    policy_set: MSoDPolicySet,
) -> list[VerifyFinding]:
    """Partial coverage of the canonical policy-store privileges.

    Only fires on sets that already use admin boundaries: guarding
    ``policy-reload`` but leaving ``policy-export`` open (or vice
    versa) lets an operational principal launder state through the
    unguarded half of the administrative surface.
    """
    findings: list[VerifyFinding] = []
    guarded: set[Privilege] = set()
    boundary_policies: list[str] = []
    for policy in policy_set:
        for constraint in policy.extra_constraints:
            if isinstance(constraint, AdminBoundary):
                guarded.update(constraint.privileges)
                boundary_policies.append(policy.policy_id)
    if not guarded:
        return findings
    canonical = (POLICY_RELOAD_PRIVILEGE, POLICY_EXPORT_PRIVILEGE)
    missing = [priv for priv in canonical if priv not in guarded]
    if missing and len(missing) < len(canonical):
        findings.append(
            VerifyFinding(
                ADMIN_BOUNDARY_UNGUARDED,
                SEVERITY_WARNING,
                boundary_policies[0],
                "admin boundaries guard only part of the policy-store "
                "surface: "
                f"{', '.join(str(priv) for priv in missing)} "
                "remain unguarded while "
                f"{', '.join(str(p) for p in canonical if p in guarded)} "
                "is protected",
            )
        )
    return findings


def _mmcd_permis_findings(
    policy_set: MSoDPolicySet,
    permis: "PermisPolicy",
    ssd: tuple["SsdConstraint", ...],
) -> list[VerifyFinding]:
    """MMCD satisfiability against the RBAC layer and MMER/SSD overlap.

    A bound set is completable only if one user can (over time) hold a
    granting role for *every* bound step.  Enumerate the role choices
    (one granting role per step, capped to stay cheap); if every choice
    trips an MMER of an overlapping policy or a static SSD set, no user
    can legally finish the duty — the binding conflicts with exclusion.
    """
    findings: list[VerifyFinding] = []
    policies = policy_set.policies
    for policy in policies:
        mmers_in_scope = [
            mmer
            for other in policies
            if _scopes_overlap(policy, other)
            for mmer in other.mmers
        ]
        for mmcd in (
            c for c in policy.extra_constraints if isinstance(c, MMCD)
        ):
            granting: list[frozenset[Role]] = []
            dead: list[Privilege] = []
            for privilege in mmcd.privileges:
                roles = _granting_roles(permis, privilege)
                if not roles:
                    dead.append(privilege)
                granting.append(roles)
            if dead:
                findings.append(
                    VerifyFinding(
                        MMCD_UNSATISFIABLE,
                        SEVERITY_ERROR,
                        policy.policy_id,
                        f"{mmcd!r} can never be completed: bound step(s) "
                        f"{sorted(str(p) for p in dead)} are granted to no "
                        "role, so no user can perform them",
                    )
                )
                continue
            if not mmers_in_scope and not ssd:
                continue
            conflict = _all_role_choices_conflict(
                granting, mmers_in_scope, ssd
            )
            if conflict is not None:
                findings.append(
                    VerifyFinding(
                        MMCD_CONFLICTS_MMER,
                        SEVERITY_ERROR,
                        policy.policy_id,
                        f"{mmcd!r} conflicts with exclusion constraints: "
                        "every role combination able to perform the bound "
                        f"set violates {conflict}, so no single user can "
                        "legally complete the duty",
                    )
                )
    return findings


def _granting_roles(
    permis: "PermisPolicy", privilege: Privilege
) -> frozenset[Role]:
    """Assignable roles whose granted privileges include ``privilege``."""
    roles = set()
    for role in _assignable_roles(permis):
        if privilege in permis.privileges_of(frozenset((role,))):
            roles.add(role)
    return frozenset(roles)


_MMCD_CHOICE_CAP = 1024


def _all_role_choices_conflict(
    granting: list[frozenset[Role]],
    mmers: list[MMER],
    ssd: tuple["SsdConstraint", ...],
) -> str | None:
    """If every granting-role choice trips a constraint, name one.

    Returns ``None`` when some choice is conflict-free, when there is
    nothing to conflict with, or when the choice space exceeds the
    enumeration cap (soundness: never report an error we did not
    prove).
    """
    total = 1
    for roles in granting:
        total *= len(roles)
        if total > _MMCD_CHOICE_CAP:
            return None
    witness: str | None = None

    def conflicts(held: frozenset[Role]) -> str | None:
        for mmer in mmers:
            if len(held & set(mmer.roles)) >= mmer.forbidden_cardinality:
                return repr(mmer)
        held_names = {str(role) for role in held}
        for constraint in ssd:
            if len(held_names & constraint.roles) >= constraint.cardinality:
                return f"SSD set {constraint.name!r}"
        return None

    def walk(index: int, held: frozenset[Role]) -> bool:
        """True when some completion of this prefix is conflict-free."""
        nonlocal witness
        if index == len(granting):
            found = conflicts(held)
            if found is None:
                return True
            witness = found
            return False
        for role in sorted(granting[index], key=str):
            if walk(index + 1, held | {role}):
                return True
        return False

    if walk(0, frozenset()):
        return None
    return witness


# ----------------------------------------------------------------------
# SSD coverage: MMER sets static separation already forbids.
# ----------------------------------------------------------------------
def _ssd_findings(
    policy_set: MSoDPolicySet, ssd: tuple["SsdConstraint", ...]
) -> list[VerifyFinding]:
    findings: list[VerifyFinding] = []
    for policy in policy_set:
        for mmer in policy.mmers:
            role_names = {str(role) for role in mmer.roles}
            for constraint in ssd:
                if (
                    role_names <= constraint.roles
                    and constraint.cardinality <= mmer.forbidden_cardinality
                ):
                    findings.append(
                        VerifyFinding(
                            MMER_COVERED_BY_SSD,
                            SEVERITY_WARNING,
                            policy.policy_id,
                            f"{mmer!r} is fully covered by static SSD set "
                            f"{constraint.name!r} (cardinality "
                            f"{constraint.cardinality}): assignment-time "
                            "separation already forbids the conflict",
                        )
                    )
                    break
    return findings


# ----------------------------------------------------------------------
# PERMIS cross-reference: reachability over the transitive hierarchy.
# ----------------------------------------------------------------------
def _assignable_roles(permis: "PermisPolicy") -> frozenset[Role]:
    """Roles a user can end up holding: every role some SOA may assign,
    closed *downward* over the transitive role hierarchy (holding a
    senior role confers all its juniors)."""
    base = frozenset(
        role for rule in permis.assignment_rules for role in rule.roles
    )
    return permis.authorized_roles(base) if base else base


def _permis_findings(
    policy_set: MSoDPolicySet, permis: "PermisPolicy"
) -> list[VerifyFinding]:
    findings: list[VerifyFinding] = []
    assignable = _assignable_roles(permis)
    grantable = permis.privileges_of(assignable)
    for policy in policy_set:
        pid = policy.policy_id
        for mmer in policy.mmers:
            dead = [role for role in mmer.roles if role not in assignable]
            reachable = len(mmer.roles) - len(dead)
            if reachable < mmer.forbidden_cardinality:
                findings.append(
                    VerifyFinding(
                        MMER_UNSATISFIABLE,
                        SEVERITY_ERROR,
                        pid,
                        f"{mmer!r} can never fire: only {reachable} of its "
                        "roles are assignable (directly or via a senior "
                        f"role), but {mmer.forbidden_cardinality} are "
                        "needed for a conflict",
                    )
                )
            elif dead:
                findings.append(
                    VerifyFinding(
                        MMER_DEAD_ROLES,
                        SEVERITY_WARNING,
                        pid,
                        "MMER names roles no SOA may assign (even via the "
                        f"hierarchy): {sorted(map(str, dead))}",
                    )
                )
        for mmep in policy.mmeps:
            counts = Counter(mmep.privileges)
            dead = sorted(
                str(priv) for priv in counts if priv not in grantable
            )
            reachable = sum(
                count
                for priv, count in counts.items()
                if priv in grantable
            )
            if reachable < mmep.forbidden_cardinality:
                findings.append(
                    VerifyFinding(
                        MMEP_UNSATISFIABLE,
                        SEVERITY_ERROR,
                        pid,
                        f"{mmep!r} can never fire: at most {reachable} "
                        "exercises of its privileges are grantable, but "
                        f"{mmep.forbidden_cardinality} are needed for a "
                        "conflict",
                    )
                )
            elif dead:
                findings.append(
                    VerifyFinding(
                        MMEP_DEAD_PRIVILEGES,
                        SEVERITY_WARNING,
                        pid,
                        f"MMEP names privileges granted to no role: {dead}",
                    )
                )
        if policy.first_step is not None:
            first = Privilege(
                policy.first_step.operation, policy.first_step.target
            )
            if first not in grantable:
                findings.append(
                    VerifyFinding(
                        FIRST_STEP_UNGRANTABLE,
                        SEVERITY_ERROR,
                        pid,
                        f"first step {policy.first_step} is granted to no "
                        "role: enforcement for this context can never start",
                    )
                )
        if policy.last_step is not None:
            last = Privilege(
                policy.last_step.operation, policy.last_step.target
            )
            if last not in grantable:
                findings.append(
                    VerifyFinding(
                        LAST_STEP_UNGRANTABLE,
                        SEVERITY_ERROR,
                        pid,
                        f"last step {policy.last_step} is granted to no "
                        "role: the business context can never terminate",
                    )
                )
    return findings


def _rbac_layer_findings(permis: "PermisPolicy") -> list[VerifyFinding]:
    findings: list[VerifyFinding] = []
    if not permis.assignment_rules:
        return findings
    assignable = _assignable_roles(permis)
    for rule in permis.access_rules:
        if rule.role not in assignable:
            findings.append(
                VerifyFinding(
                    RBAC_UNREACHABLE_RULE,
                    SEVERITY_WARNING,
                    "rbac",
                    f"target-access rule for {rule.role} is unreachable: "
                    "no SOA may assign the role (directly or via any "
                    "transitive senior)",
                )
            )
    return findings

"""The two MSoD policies published in Section 3, as canonical XML.

These are the paper's own worked policies — bank cash processing
(Example 1, MMER) and the tax-refund process (Example 2, MMEP) — used by
tests, benches and the runnable examples.  The XML is as printed in the
paper, modulo typographic quote normalisation and closing the
``MSoDPolicy`` element of the second policy (the paper's listing
self-closes it by typo).
"""

from __future__ import annotations

from repro.core.policy import MSoDPolicySet
from repro.xmlpolicy.parser import parse_policy_set

BANK_POLICY_XML = """\
<MSoDPolicySet>
  <MSoDPolicy BusinessContext="Branch=*, Period=!">
    <!-- policy applies for each instance of period across all
         branches of the bank -->
    <LastStep operation="CommitAudit"
              targetURI="http://audit.location.com/audit"/>
    <MMER ForbiddenCardinality="2">
      <Role type="employee" value="Teller"/>
      <Role type="employee" value="Auditor"/>
    </MMER>
  </MSoDPolicy>
</MSoDPolicySet>
"""

TAX_REFUND_POLICY_XML = """\
<MSoDPolicySet>
  <MSoDPolicy BusinessContext="TaxOffice=!, taxRefundProcess=!">
    <!-- policy applies for each instance of taxRefundProcess
         in each tax office -->
    <FirstStep operation="prepareCheck"
               targetURI="http://www.myTaxOffice.com/Check"/>
    <LastStep operation="confirmCheck"
              targetURI="http://secret.location.com/audit"/>
    <MMEP ForbiddenCardinality="2">
      <Operation value="prepareCheck"
                 target="http://www.myTaxOffice.com/Check"/>
      <Operation value="confirmCheck"
                 target="http://secret.location.com/audit"/>
    </MMEP>
    <MMEP ForbiddenCardinality="2">
      <Operation value="approve/disapproveCheck"
                 target="http://www.myTaxOffice.com/Check"/>
      <Operation value="approve/disapproveCheck"
                 target="http://www.myTaxOffice.com/Check"/>
      <Operation value="combineResults"
                 target="http://secret.location.com/results"/>
    </MMEP>
  </MSoDPolicy>
</MSoDPolicySet>
"""

COMBINED_POLICY_XML = """\
<MSoDPolicySet>
  <MSoDPolicy BusinessContext="Branch=*, Period=!">
    <LastStep operation="CommitAudit"
              targetURI="http://audit.location.com/audit"/>
    <MMER ForbiddenCardinality="2">
      <Role type="employee" value="Teller"/>
      <Role type="employee" value="Auditor"/>
    </MMER>
  </MSoDPolicy>
  <MSoDPolicy BusinessContext="TaxOffice=!, taxRefundProcess=!">
    <FirstStep operation="prepareCheck"
               targetURI="http://www.myTaxOffice.com/Check"/>
    <LastStep operation="confirmCheck"
              targetURI="http://secret.location.com/audit"/>
    <MMEP ForbiddenCardinality="2">
      <Operation value="prepareCheck"
                 target="http://www.myTaxOffice.com/Check"/>
      <Operation value="confirmCheck"
                 target="http://secret.location.com/audit"/>
    </MMEP>
    <MMEP ForbiddenCardinality="2">
      <Operation value="approve/disapproveCheck"
                 target="http://www.myTaxOffice.com/Check"/>
      <Operation value="approve/disapproveCheck"
                 target="http://www.myTaxOffice.com/Check"/>
      <Operation value="combineResults"
                 target="http://secret.location.com/results"/>
    </MMEP>
  </MSoDPolicy>
</MSoDPolicySet>
"""


def bank_policy_set() -> MSoDPolicySet:
    """The Example-1 (bank cash processing) policy set."""
    return parse_policy_set(BANK_POLICY_XML)


def tax_refund_policy_set() -> MSoDPolicySet:
    """The Example-2 (tax refund) policy set."""
    return parse_policy_set(TAX_REFUND_POLICY_XML)


def combined_policy_set() -> MSoDPolicySet:
    """Both Section-3 policies in one set, as the paper prints them."""
    return parse_policy_set(COMBINED_POLICY_XML)

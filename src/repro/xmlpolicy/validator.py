"""Structural validation of MSoD policy documents.

Unlike the parser (which raises on the first problem), the validator
walks the whole document and returns *every* problem found, making it
suitable for the policy-management subsystem of Figure 4 (policy authors
get a complete report in one pass).
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

from repro.core.context import ContextName
from repro.errors import ContextNameError
from repro.xmlpolicy import schema as S


def validate_policy_document(text: str, strict: bool = True) -> list[str]:
    """Return a list of problems; an empty list means the document is valid."""
    problems: list[str] = []
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        return [f"not well-formed XML: {exc}"]

    if root.tag != S.ELEM_POLICY_SET:
        problems.append(
            f"root element must be <{S.ELEM_POLICY_SET}>, got <{root.tag}>"
        )
        return problems

    policies = list(root)
    if not policies:
        problems.append(f"<{S.ELEM_POLICY_SET}> contains no policies")
    for index, policy in enumerate(policies):
        where = f"policy #{index + 1}"
        if policy.tag != S.ELEM_POLICY:
            problems.append(f"{where}: unexpected element <{policy.tag}>")
            continue
        problems.extend(_validate_policy(policy, where, strict))
    return problems


def _attr_problems(element: ET.Element, names: list[str], where: str) -> list[str]:
    return [
        f"{where}: <{element.tag}> is missing attribute {name!r}"
        for name in names
        if element.get(name) is None
    ]


def _validate_policy(policy: ET.Element, where: str, strict: bool) -> list[str]:
    problems: list[str] = []
    context_text = policy.get(S.ATTR_BUSINESS_CONTEXT)
    if context_text is None:
        problems.append(f"{where}: missing BusinessContext attribute")
    else:
        try:
            ContextName.parse(context_text)
        except ContextNameError as exc:
            problems.append(f"{where}: bad BusinessContext: {exc}")

    first_steps = [c for c in policy if c.tag == S.ELEM_FIRST_STEP]
    last_steps = [c for c in policy if c.tag == S.ELEM_LAST_STEP]
    mmers = [c for c in policy if c.tag == S.ELEM_MMER]
    mmeps = [c for c in policy if c.tag == S.ELEM_MMEP]
    mmcds = [c for c in policy if c.tag == S.ELEM_MMCD]
    boundaries = [c for c in policy if c.tag == S.ELEM_ADMIN_BOUNDARY]
    known = set(first_steps + last_steps + mmers + mmeps + mmcds + boundaries)
    for child in policy:
        if child not in known:
            problems.append(f"{where}: unexpected element <{child.tag}>")

    if len(first_steps) > 1:
        problems.append(f"{where}: more than one <{S.ELEM_FIRST_STEP}>")
    if len(last_steps) > 1:
        problems.append(f"{where}: more than one <{S.ELEM_LAST_STEP}>")
    for step in first_steps + last_steps:
        problems.extend(
            _attr_problems(step, [S.ATTR_STEP_OPERATION, S.ATTR_STEP_TARGET], where)
        )

    if not mmers and not mmeps and not mmcds and not boundaries:
        problems.append(f"{where}: needs at least one MMER or MMEP")
    families = sum(1 for f in (mmers, mmeps, mmcds, boundaries) if f)
    if strict and families > 1:
        problems.append(
            f"{where}: Appendix A allows either MMERs or MMEPs, not both"
            " (one constraint family per policy)"
        )

    for mmer in mmers:
        problems.extend(_validate_cardinality(mmer, len(list(mmer)), where))
        roles = list(mmer)
        if len(roles) < 2:
            problems.append(f"{where}: MMER needs at least two <Role> children")
        for role in roles:
            if role.tag != S.ELEM_ROLE:
                problems.append(
                    f"{where}: MMER contains unexpected <{role.tag}>"
                )
            else:
                problems.extend(
                    _attr_problems(
                        role, [S.ATTR_ROLE_TYPE, S.ATTR_ROLE_VALUE], where
                    )
                )

    for mmep in mmeps:
        problems.extend(_validate_cardinality(mmep, len(list(mmep)), where))
        privileges = list(mmep)
        if len(privileges) < 2:
            problems.append(
                f"{where}: MMEP needs at least two privilege children"
            )
        for privilege in privileges:
            if privilege.tag == S.ELEM_PRIVILEGE:
                problems.extend(
                    _attr_problems(
                        privilege,
                        [S.ATTR_PRIV_OPERATION, S.ATTR_PRIV_TARGET],
                        where,
                    )
                )
            elif privilege.tag == S.ELEM_OPERATION:
                problems.extend(
                    _attr_problems(
                        privilege,
                        [S.ATTR_OPERATION_VALUE, S.ATTR_PRIV_TARGET],
                        where,
                    )
                )
            else:
                problems.append(
                    f"{where}: MMEP contains unexpected <{privilege.tag}>"
                )

    for mmcd in mmcds:
        privileges = list(mmcd)
        if len(privileges) < 2:
            problems.append(
                f"{where}: MMCD needs at least two privilege children"
            )
        problems.extend(_privilege_child_problems(privileges, "MMCD", where))

    for boundary in boundaries:
        if boundary.get(S.ATTR_BOUNDARY) is None:
            problems.append(
                f"{where}: <{S.ELEM_ADMIN_BOUNDARY}> is missing "
                f"attribute {S.ATTR_BOUNDARY!r}"
            )
        privileges = list(boundary)
        if not privileges:
            problems.append(
                f"{where}: AdminBoundary needs at least one privilege child"
            )
        problems.extend(
            _privilege_child_problems(privileges, "AdminBoundary", where)
        )
    return problems


def _privilege_child_problems(
    privileges: list[ET.Element], parent: str, where: str
) -> list[str]:
    problems: list[str] = []
    for privilege in privileges:
        if privilege.tag == S.ELEM_PRIVILEGE:
            problems.extend(
                _attr_problems(
                    privilege,
                    [S.ATTR_PRIV_OPERATION, S.ATTR_PRIV_TARGET],
                    where,
                )
            )
        elif privilege.tag == S.ELEM_OPERATION:
            problems.extend(
                _attr_problems(
                    privilege,
                    [S.ATTR_OPERATION_VALUE, S.ATTR_PRIV_TARGET],
                    where,
                )
            )
        else:
            problems.append(
                f"{where}: {parent} contains unexpected <{privilege.tag}>"
            )
    return problems


def _validate_cardinality(element: ET.Element, size: int, where: str) -> list[str]:
    raw = element.get(S.ATTR_FORBIDDEN_CARDINALITY)
    if raw is None:
        return [f"{where}: <{element.tag}> is missing ForbiddenCardinality"]
    try:
        cardinality = int(raw)
    except ValueError:
        return [
            f"{where}: <{element.tag}> ForbiddenCardinality {raw!r} "
            "is not an integer"
        ]
    if size and not 1 < cardinality <= size:
        return [
            f"{where}: <{element.tag}> ForbiddenCardinality {cardinality} "
            f"must satisfy 1 < m <= {size}"
        ]
    return []

"""The Appendix-A XML MSoD policy language: parse, write, validate.

* :func:`~repro.xmlpolicy.parser.parse_policy_set` — XML → model.
* :func:`~repro.xmlpolicy.writer.write_policy_set` — model → XML.
* :func:`~repro.xmlpolicy.validator.validate_policy_document` —
  whole-document structural validation with a complete problem report.
* :mod:`repro.xmlpolicy.examples` — the paper's two Section-3 policies.
"""

from repro.xmlpolicy.examples import (
    BANK_POLICY_XML,
    COMBINED_POLICY_XML,
    TAX_REFUND_POLICY_XML,
    bank_policy_set,
    combined_policy_set,
    tax_refund_policy_set,
)
from repro.xmlpolicy.dsl import compile_policy_set, decompile_policy_set
from repro.xmlpolicy.parser import (
    parse_policy_set,
    parse_policy_set_element,
    parse_policy_set_file,
)
from repro.xmlpolicy.validator import validate_policy_document
from repro.xmlpolicy.writer import (
    policy_set_to_element,
    write_policy_set,
    write_policy_set_file,
)

__all__ = [
    "compile_policy_set",
    "decompile_policy_set",
    "parse_policy_set",
    "parse_policy_set_file",
    "parse_policy_set_element",
    "write_policy_set",
    "write_policy_set_file",
    "policy_set_to_element",
    "validate_policy_document",
    "BANK_POLICY_XML",
    "TAX_REFUND_POLICY_XML",
    "COMBINED_POLICY_XML",
    "bank_policy_set",
    "tax_refund_policy_set",
    "combined_policy_set",
]

"""Parse MSoD XML policies into the :mod:`repro.core` policy model.

The parser accepts the Appendix-A document structure, including the
Section 3 spelling of privileges (``<Operation value=... target=.../>``)
alongside the schema spelling (``<Privilege operation=... target=.../>``),
plus the extension constraint kinds ``<MMCD>`` (combination of duty) and
``<AdminBoundary Boundary=...>`` (self-protecting admin boundary).

By default the parser is *strict* about the Appendix-A ``xs:choice``,
generalised to the pluggable kinds: one policy carries constraints of
exactly one family (MMER, MMEP, MMCD or AdminBoundary).  Pass
``strict=False`` to allow mixed policies (a useful generalisation the
in-memory model supports).
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import IO

from repro.core.constraints import (
    MMCD,
    MMEP,
    MMER,
    AdminBoundary,
    MultiSessionConstraint,
    Privilege,
    Role,
)
from repro.core.context import ContextName
from repro.core.policy import MSoDPolicy, MSoDPolicySet, Step
from repro.errors import ContextNameError, ConstraintError, PolicyError, PolicyParseError
from repro.xmlpolicy import schema as S


def parse_policy_set(source: str | IO[str], strict: bool = True) -> MSoDPolicySet:
    """Parse an MSoD policy set from an XML string or file-like object.

    Raises :class:`~repro.errors.PolicyParseError` with a precise message
    on any structural or semantic problem.
    """
    text = source if isinstance(source, str) else source.read()
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise PolicyParseError(f"not well-formed XML: {exc}") from exc
    return parse_policy_set_element(root, strict=strict)


def parse_policy_set_file(path: str, strict: bool = True) -> MSoDPolicySet:
    """Parse an MSoD policy set from a file on disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_policy_set(handle, strict=strict)


def parse_policy_set_element(root: ET.Element, strict: bool = True) -> MSoDPolicySet:
    """Parse an already-built ``<MSoDPolicySet>`` element tree."""
    if root.tag != S.ELEM_POLICY_SET:
        raise PolicyParseError(
            f"root element must be <{S.ELEM_POLICY_SET}>, got <{root.tag}>"
        )
    policies = []
    for index, child in enumerate(root):
        if child.tag != S.ELEM_POLICY:
            raise PolicyParseError(
                f"unexpected element <{child.tag}> inside <{S.ELEM_POLICY_SET}>"
            )
        policies.append(_parse_policy(child, index, strict))
    if not policies:
        raise PolicyParseError(
            f"<{S.ELEM_POLICY_SET}> must contain at least one <{S.ELEM_POLICY}>"
        )
    try:
        return MSoDPolicySet(policies)
    except PolicyError as exc:
        raise PolicyParseError(str(exc)) from exc


def _require_attr(element: ET.Element, name: str) -> str:
    value = element.get(name)
    if value is None:
        raise PolicyParseError(
            f"<{element.tag}> is missing required attribute {name!r}"
        )
    return value


def _parse_policy(element: ET.Element, index: int, strict: bool) -> MSoDPolicy:
    context_text = _require_attr(element, S.ATTR_BUSINESS_CONTEXT)
    try:
        context = ContextName.parse(context_text)
    except ContextNameError as exc:
        raise PolicyParseError(
            f"policy #{index + 1}: bad BusinessContext {context_text!r}: {exc}"
        ) from exc

    policy_id = element.get(S.ATTR_POLICY_ID)
    first_step = None
    last_step = None
    mmers: list[MMER] = []
    mmeps: list[MMEP] = []
    extras: list[MultiSessionConstraint] = []

    for child in element:
        if child.tag == S.ELEM_FIRST_STEP:
            if first_step is not None:
                raise PolicyParseError(
                    f"policy #{index + 1}: multiple <{S.ELEM_FIRST_STEP}> elements"
                )
            first_step = _parse_step(child)
        elif child.tag == S.ELEM_LAST_STEP:
            if last_step is not None:
                raise PolicyParseError(
                    f"policy #{index + 1}: multiple <{S.ELEM_LAST_STEP}> elements"
                )
            last_step = _parse_step(child)
        elif child.tag == S.ELEM_MMER:
            mmers.append(_parse_mmer(child, index))
        elif child.tag == S.ELEM_MMEP:
            mmeps.append(_parse_mmep(child, index))
        elif child.tag == S.ELEM_MMCD:
            extras.append(_parse_mmcd(child, index))
        elif child.tag == S.ELEM_ADMIN_BOUNDARY:
            extras.append(_parse_admin_boundary(child, index))
        else:
            raise PolicyParseError(
                f"policy #{index + 1}: unexpected element <{child.tag}>"
            )

    families = sum(
        1
        for family in (
            mmers,
            mmeps,
            [c for c in extras if isinstance(c, MMCD)],
            [c for c in extras if isinstance(c, AdminBoundary)],
        )
        if family
    )
    if strict and families > 1:
        raise PolicyParseError(
            f"policy #{index + 1}: one policy carries either MMER or MMEP "
            "or MMCD or AdminBoundary constraints, not a mixture "
            "(pass strict=False to relax)"
        )
    try:
        return MSoDPolicy(
            business_context=context,
            mmers=mmers,
            mmeps=mmeps,
            first_step=first_step,
            last_step=last_step,
            policy_id=policy_id,
            constraints=extras,
        )
    except PolicyError as exc:
        raise PolicyParseError(f"policy #{index + 1}: {exc}") from exc


def _parse_step(element: ET.Element) -> Step:
    operation = _require_attr(element, S.ATTR_STEP_OPERATION)
    target = _require_attr(element, S.ATTR_STEP_TARGET)
    try:
        return Step(operation, target)
    except PolicyError as exc:
        raise PolicyParseError(f"bad <{element.tag}>: {exc}") from exc


def _parse_cardinality(element: ET.Element) -> int:
    raw = _require_attr(element, S.ATTR_FORBIDDEN_CARDINALITY)
    try:
        return int(raw)
    except ValueError as exc:
        raise PolicyParseError(
            f"<{element.tag}> ForbiddenCardinality {raw!r} is not an integer"
        ) from exc


def _parse_mmer(element: ET.Element, index: int) -> MMER:
    cardinality = _parse_cardinality(element)
    roles = []
    for child in element:
        if child.tag != S.ELEM_ROLE:
            raise PolicyParseError(
                f"policy #{index + 1}: <{S.ELEM_MMER}> may only contain "
                f"<{S.ELEM_ROLE}> elements, got <{child.tag}>"
            )
        role_type = _require_attr(child, S.ATTR_ROLE_TYPE)
        value = _require_attr(child, S.ATTR_ROLE_VALUE)
        try:
            roles.append(Role(role_type, value))
        except ConstraintError as exc:
            raise PolicyParseError(f"policy #{index + 1}: bad Role: {exc}") from exc
    try:
        return MMER(roles, cardinality)
    except ConstraintError as exc:
        raise PolicyParseError(f"policy #{index + 1}: bad MMER: {exc}") from exc


def _parse_privilege(
    element: ET.Element, index: int, parent: str = S.ELEM_MMEP
) -> Privilege:
    if element.tag == S.ELEM_PRIVILEGE:
        operation = _require_attr(element, S.ATTR_PRIV_OPERATION)
    elif element.tag == S.ELEM_OPERATION:
        operation = _require_attr(element, S.ATTR_OPERATION_VALUE)
    else:
        raise PolicyParseError(
            f"policy #{index + 1}: <{parent}> may only contain "
            f"<{S.ELEM_PRIVILEGE}> or <{S.ELEM_OPERATION}> elements, "
            f"got <{element.tag}>"
        )
    target = _require_attr(element, S.ATTR_PRIV_TARGET)
    try:
        return Privilege(operation, target)
    except ConstraintError as exc:
        raise PolicyParseError(f"policy #{index + 1}: bad privilege: {exc}") from exc


def _parse_mmep(element: ET.Element, index: int) -> MMEP:
    cardinality = _parse_cardinality(element)
    privileges = [_parse_privilege(child, index) for child in element]
    try:
        return MMEP(privileges, cardinality)
    except ConstraintError as exc:
        raise PolicyParseError(f"policy #{index + 1}: bad MMEP: {exc}") from exc


def _parse_mmcd(element: ET.Element, index: int) -> MMCD:
    # Same privilege spellings as MMEP; no cardinality — a bound set
    # binds as a whole.
    privileges = [
        _parse_privilege(child, index, S.ELEM_MMCD) for child in element
    ]
    try:
        return MMCD(privileges)
    except ConstraintError as exc:
        raise PolicyParseError(f"policy #{index + 1}: bad MMCD: {exc}") from exc


def _parse_admin_boundary(element: ET.Element, index: int) -> AdminBoundary:
    boundary = _require_attr(element, S.ATTR_BOUNDARY)
    privileges = [
        _parse_privilege(child, index, S.ELEM_ADMIN_BOUNDARY)
        for child in element
    ]
    try:
        return AdminBoundary(boundary, privileges)
    except ConstraintError as exc:
        raise PolicyParseError(
            f"policy #{index + 1}: bad AdminBoundary: {exc}"
        ) from exc

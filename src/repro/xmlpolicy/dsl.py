"""A human-friendly authoring DSL for MSoD policies.

The Appendix-A XML is the interchange format; this module adds the
compact text form policy authors actually want to write, compiling to
the same in-memory model (and therefore to the XML).  Example::

    # Example 1 — bank cash processing
    policy bank within "Branch=*, Period=!":
        last step CommitAudit on http://audit.location.com/audit
        mutually exclusive roles limit 2:
            employee:Teller, employee:Auditor

    # Example 2 — tax refund
    policy tax within "TaxOffice=!, taxRefundProcess=!":
        first step prepareCheck on http://www.myTaxOffice.com/Check
        last step confirmCheck on http://secret.location.com/audit
        mutually exclusive privileges limit 2:
            prepareCheck on http://www.myTaxOffice.com/Check,
            confirmCheck on http://secret.location.com/audit

Grammar (line-oriented; ``#`` starts a comment; commas separate items,
which may wrap onto continuation lines):

* ``policy <id> within "<business context>":`` opens a policy block;
  the universal context is ``within ""``.
* ``first step <operation> on <target>`` / ``last step ...`` —
  lifecycle steps (at most one of each).
* ``mutually exclusive roles limit <m>:`` followed by a
  comma-separated list of ``type:value`` roles — an MMER.
* ``mutually exclusive privileges limit <m>:`` followed by a
  comma-separated list of ``operation on target`` — an MMEP (the same
  privilege may be listed repeatedly, per Section 2.4).
* ``combination of duty:`` followed by a comma-separated list of
  ``operation on target`` — an MMCD bound set (all listed steps must
  be performed by the same user per context instance).
* ``admin boundary "<label>":`` followed by a comma-separated list of
  ``operation on target`` — an AdminBoundary guarding administrative
  privileges with SoD over the PDP's own state.

:func:`compile_policy_set` parses the DSL; :func:`decompile_policy_set`
renders any policy set back into it; the round trip is property-tested.
:func:`parse_constraint_repr` round-trips any constraint's ``repr()``
back into the constraint object.
"""

from __future__ import annotations

import ast
import re

from repro.core.constraints import (
    MMCD,
    MMEP,
    MMER,
    AdminBoundary,
    MultiSessionConstraint,
    Privilege,
    Role,
)
from repro.core.context import ContextName
from repro.core.policy import MSoDPolicy, MSoDPolicySet, Step
from repro.errors import (
    ConstraintError,
    ContextNameError,
    PolicyError,
    PolicyParseError,
)


class _Block:
    """One policy block being assembled during parsing."""

    def __init__(self, policy_id: str, context: ContextName, line_no: int):
        self.policy_id = policy_id
        self.context = context
        self.line_no = line_no
        self.first_step: Step | None = None
        self.last_step: Step | None = None
        self.mmers: list[MMER] = []
        self.mmeps: list[MMEP] = []
        self.extras: list[MultiSessionConstraint] = []

    def build(self) -> MSoDPolicy:
        try:
            return MSoDPolicy(
                business_context=self.context,
                mmers=self.mmers,
                mmeps=self.mmeps,
                first_step=self.first_step,
                last_step=self.last_step,
                policy_id=self.policy_id,
                constraints=self.extras,
            )
        except PolicyError as exc:
            raise PolicyParseError(
                f"line {self.line_no}: policy {self.policy_id!r}: {exc}"
            ) from exc


def _fail(line_no: int, message: str) -> PolicyParseError:
    return PolicyParseError(f"line {line_no}: {message}")


def _strip_comment(line: str) -> str:
    position = line.find("#")
    return line if position < 0 else line[:position]


def _parse_step(rest: str, line_no: int) -> Step:
    operation, sep, target = rest.partition(" on ")
    if not sep or not operation.strip() or not target.strip():
        raise _fail(line_no, "expected '<operation> on <target>'")
    try:
        return Step(operation.strip(), target.strip())
    except PolicyError as exc:
        raise _fail(line_no, str(exc)) from exc


def _parse_role(token: str, line_no: int) -> Role:
    role_type, sep, value = token.partition(":")
    if not sep:
        raise _fail(line_no, f"role {token!r} must be of the form type:value")
    try:
        return Role(role_type.strip(), value.strip())
    except ConstraintError as exc:
        raise _fail(line_no, str(exc)) from exc


def _parse_privilege(token: str, line_no: int) -> Privilege:
    operation, sep, target = token.partition(" on ")
    if not sep:
        raise _fail(
            line_no, f"privilege {token!r} must be '<operation> on <target>'"
        )
    try:
        return Privilege(operation.strip(), target.strip())
    except ConstraintError as exc:
        raise _fail(line_no, str(exc)) from exc


def compile_policy_set(text: str) -> MSoDPolicySet:
    """Compile DSL text into an :class:`MSoDPolicySet`."""
    policies: list[MSoDPolicy] = []
    block: _Block | None = None
    # (kind, payload, line): payload is the limit for roles/privileges,
    # the boundary label for 'boundary', None for 'duty'.
    pending: tuple[str, object, int] | None = None
    pending_items: list[str] = []

    def flush_pending() -> None:
        nonlocal pending, pending_items
        if pending is None:
            return
        kind, payload, line_no = pending
        items = [item.strip() for item in pending_items if item.strip()]
        if not items:
            raise _fail(line_no, f"'{kind}' list is empty")
        try:
            if kind == "roles":
                block.mmers.append(
                    MMER([_parse_role(item, line_no) for item in items], payload)
                )
            elif kind == "privileges":
                block.mmeps.append(
                    MMEP(
                        [_parse_privilege(item, line_no) for item in items],
                        payload,
                    )
                )
            elif kind == "duty":
                block.extras.append(
                    MMCD([_parse_privilege(item, line_no) for item in items])
                )
            else:
                block.extras.append(
                    AdminBoundary(
                        payload,
                        [_parse_privilege(item, line_no) for item in items],
                    )
                )
        except ConstraintError as exc:
            raise _fail(line_no, str(exc)) from exc
        pending = None
        pending_items = []

    for line_no, raw_line in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw_line).rstrip()
        if not line.strip():
            continue
        stripped = line.strip()

        if stripped.startswith("policy "):
            flush_pending()
            if block is not None:
                policies.append(block.build())
            rest = stripped[len("policy "):]
            if not rest.endswith(":"):
                raise _fail(line_no, "policy header must end with ':'")
            rest = rest[:-1].strip()
            name, sep, context_part = rest.partition(" within ")
            if not sep:
                raise _fail(
                    line_no, "expected 'policy <id> within \"<context>\":'"
                )
            context_text = context_part.strip()
            if not (
                len(context_text) >= 2
                and context_text[0] == '"'
                and context_text[-1] == '"'
            ):
                raise _fail(line_no, "business context must be double-quoted")
            try:
                context = ContextName.parse(context_text[1:-1])
            except ContextNameError as exc:
                raise _fail(line_no, str(exc)) from exc
            if not name.strip():
                raise _fail(line_no, "policy needs an identifier")
            block = _Block(name.strip(), context, line_no)
            continue

        if block is None:
            raise _fail(line_no, f"statement outside a policy block: {stripped!r}")

        if stripped.startswith("first step "):
            flush_pending()
            if block.first_step is not None:
                raise _fail(line_no, "duplicate 'first step'")
            block.first_step = _parse_step(stripped[len("first step "):], line_no)
        elif stripped.startswith("last step "):
            flush_pending()
            if block.last_step is not None:
                raise _fail(line_no, "duplicate 'last step'")
            block.last_step = _parse_step(stripped[len("last step "):], line_no)
        elif stripped.startswith("mutually exclusive "):
            flush_pending()
            rest = stripped[len("mutually exclusive "):]
            kind, sep, limit_part = rest.partition(" limit ")
            kind = kind.strip()
            if kind not in ("roles", "privileges") or not sep:
                raise _fail(
                    line_no,
                    "expected 'mutually exclusive roles|privileges "
                    "limit <m>:'",
                )
            limit_part = limit_part.strip()
            if not limit_part.endswith(":"):
                raise _fail(line_no, "constraint header must end with ':'")
            try:
                limit = int(limit_part[:-1].strip())
            except ValueError as exc:
                raise _fail(line_no, "limit must be an integer") from exc
            pending = (kind, limit, line_no)
            pending_items = []
        elif stripped.startswith("combination of duty"):
            flush_pending()
            rest = stripped[len("combination of duty"):].strip()
            if rest != ":":
                raise _fail(line_no, "expected 'combination of duty:'")
            pending = ("duty", None, line_no)
            pending_items = []
        elif stripped.startswith("admin boundary "):
            flush_pending()
            rest = stripped[len("admin boundary "):].strip()
            if not rest.endswith(":"):
                raise _fail(line_no, "constraint header must end with ':'")
            label_text = rest[:-1].strip()
            if not (
                len(label_text) >= 2
                and label_text[0] == '"'
                and label_text[-1] == '"'
            ):
                raise _fail(
                    line_no, "admin boundary label must be double-quoted"
                )
            label = label_text[1:-1]
            if not label:
                raise _fail(line_no, "admin boundary label must be non-empty")
            pending = ("boundary", label, line_no)
            pending_items = []
        elif pending is not None:
            # Continuation of a constraint's item list.
            pending_items.extend(
                item for item in stripped.split(",") if item.strip()
            )
        else:
            raise _fail(line_no, f"unrecognised statement: {stripped!r}")

    flush_pending()
    if block is not None:
        policies.append(block.build())
    if not policies:
        raise PolicyParseError("no policies found in DSL input")
    try:
        return MSoDPolicySet(policies)
    except PolicyError as exc:
        raise PolicyParseError(str(exc)) from exc


def decompile_policy_set(policy_set: MSoDPolicySet) -> str:
    """Render a policy set as DSL text (compiles back to an equivalent set)."""
    lines: list[str] = []
    for policy in policy_set:
        lines.append(
            f'policy {policy.policy_id} within "{policy.business_context}":'
        )
        if policy.first_step is not None:
            lines.append(
                f"    first step {policy.first_step.operation} "
                f"on {policy.first_step.target}"
            )
        if policy.last_step is not None:
            lines.append(
                f"    last step {policy.last_step.operation} "
                f"on {policy.last_step.target}"
            )
        for mmer in policy.mmers:
            lines.append(
                "    mutually exclusive roles "
                f"limit {mmer.forbidden_cardinality}:"
            )
            lines.append(
                "        "
                + ", ".join(
                    f"{role.role_type}:{role.value}"
                    for role in sorted(mmer.roles, key=str)
                )
            )
        for mmep in policy.mmeps:
            lines.append(
                "    mutually exclusive privileges "
                f"limit {mmep.forbidden_cardinality}:"
            )
            lines.append(
                "        "
                + ", ".join(
                    f"{privilege.operation} on {privilege.target}"
                    for privilege in mmep.privileges
                )
            )
        for constraint in policy.extra_constraints:
            if isinstance(constraint, MMCD):
                lines.append("    combination of duty:")
                lines.append(
                    "        "
                    + ", ".join(
                        f"{privilege.operation} on {privilege.target}"
                        for privilege in constraint.privileges
                    )
                )
            elif isinstance(constraint, AdminBoundary):
                lines.append(
                    f'    admin boundary "{constraint.boundary}":'
                )
                lines.append(
                    "        "
                    + ", ".join(
                        f"{privilege.operation} on {privilege.target}"
                        for privilege in constraint.privileges
                    )
                )
            else:
                raise PolicyError(
                    "no DSL serialisation for constraint kind "
                    f"{constraint.kind!r}"
                )
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


_REPR_PATTERN = re.compile(
    r"^(?P<cls>MMER|MMEP|MMCD|AdminBoundary)\((?P<body>.*)\)$", re.DOTALL
)


def _split_member_list(body: str, what: str) -> list[str]:
    if not (body.startswith("{") and body.endswith("}")):
        raise PolicyParseError(f"{what} members must be brace-enclosed")
    inner = body[1:-1].strip()
    if not inner:
        return []
    return [token.strip() for token in inner.split(",")]


def _role_from_str(token: str) -> Role:
    role_type, sep, value = token.partition(":")
    if not sep:
        raise PolicyParseError(f"role {token!r} must be of the form type:value")
    return Role(role_type, value)


def _privilege_from_str(token: str) -> Privilege:
    operation, sep, target = token.partition("@")
    if not sep:
        raise PolicyParseError(
            f"privilege {token!r} must be of the form operation@target"
        )
    return Privilege(operation, target)


def parse_constraint_repr(text: str) -> MultiSessionConstraint:
    """Parse a constraint's ``repr()`` back into the constraint.

    Every constraint kind's ``repr`` (the form embedded in violation
    payloads and audit records, e.g. ``MMER({employee:Teller,
    employee:Auditor}, m=2)``) round-trips through this parser:
    ``parse_constraint_repr(repr(c)) == c``.  MMEP reprs preserve
    duplicate privileges — the multiset idiom of Section 2.4 survives
    the trip.
    """
    match = _REPR_PATTERN.match(text.strip())
    if match is None:
        raise PolicyParseError(f"unrecognised constraint repr: {text!r}")
    cls = match.group("cls")
    body = match.group("body").strip()
    try:
        if cls == "AdminBoundary":
            # Body is "<label-literal>, {members}": the label is a
            # Python string literal (the repr of the boundary label).
            split_at = body.rfind(", {")
            if split_at < 0:
                raise PolicyParseError(
                    f"unrecognised AdminBoundary repr: {text!r}"
                )
            label = ast.literal_eval(body[:split_at])
            if not isinstance(label, str):
                raise PolicyParseError(
                    f"AdminBoundary label must be a string: {text!r}"
                )
            members = _split_member_list(
                body[split_at + 2:].strip(), "AdminBoundary"
            )
            return AdminBoundary(
                label, [_privilege_from_str(token) for token in members]
            )
        if cls == "MMCD":
            members = _split_member_list(body, "MMCD")
            return MMCD([_privilege_from_str(token) for token in members])
        # MMER / MMEP: "{members}, m=<cardinality>".
        members_part, sep, m_part = body.rpartition(", m=")
        if not sep:
            raise PolicyParseError(
                f"{cls} repr must end with ', m=<cardinality>': {text!r}"
            )
        cardinality = int(m_part.strip())
        members = _split_member_list(members_part.strip(), cls)
        if cls == "MMER":
            return MMER(
                [_role_from_str(token) for token in members], cardinality
            )
        return MMEP(
            [_privilege_from_str(token) for token in members], cardinality
        )
    except (ConstraintError, ValueError, SyntaxError) as exc:
        raise PolicyParseError(
            f"bad constraint repr {text!r}: {exc}"
        ) from exc

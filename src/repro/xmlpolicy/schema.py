"""Element and attribute names of the Appendix-A MSoD policy schema.

The Section 3 worked examples render a privilege as
``<Operation value="..." target="..."/>`` while the Appendix A schema
names the element ``<Privilege operation="..." target="..."/>``; the
parser accepts both spellings and the writer emits the schema form.
"""

from __future__ import annotations

ELEM_POLICY_SET = "MSoDPolicySet"
ELEM_POLICY = "MSoDPolicy"
ELEM_FIRST_STEP = "FirstStep"
ELEM_LAST_STEP = "LastStep"
ELEM_MMER = "MMER"
ELEM_MMEP = "MMEP"
#: Multi-session combination of duty (extension kind; not Appendix A).
ELEM_MMCD = "MMCD"
#: Self-protecting administrative boundary (extension kind).
ELEM_ADMIN_BOUNDARY = "AdminBoundary"
ELEM_ROLE = "Role"
ELEM_PRIVILEGE = "Privilege"
#: Section-3 spelling of a privilege inside an MMEP.
ELEM_OPERATION = "Operation"

ATTR_BUSINESS_CONTEXT = "BusinessContext"
ATTR_FORBIDDEN_CARDINALITY = "ForbiddenCardinality"
#: Label of an <AdminBoundary> constraint.
ATTR_BOUNDARY = "Boundary"
ATTR_STEP_OPERATION = "operation"
ATTR_STEP_TARGET = "targetURI"
ATTR_ROLE_TYPE = "type"
ATTR_ROLE_VALUE = "value"
ATTR_PRIV_OPERATION = "operation"
ATTR_PRIV_TARGET = "target"
#: Section-3 spelling: <Operation value="..." target="..."/>.
ATTR_OPERATION_VALUE = "value"

#: Optional identifier attribute (an extension; absent from Appendix A).
ATTR_POLICY_ID = "PolicyId"

#: The verbatim XML Schema of Appendix A, kept for reference and for the
#: documentation tests that assert our validator agrees with it on the
#: paper's two example policies.
APPENDIX_A_XSD = """\
<?xml version="1.0" ?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema"
           elementFormDefault="qualified">
  <xs:element name="MSoDPolicySet">
    <xs:complexType>
      <xs:sequence>
        <xs:element maxOccurs="unbounded" ref="MSoDPolicy"/>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
  <xs:element name="MSoDPolicy">
    <xs:complexType>
      <xs:sequence>
        <xs:element ref="FirstStep" minOccurs="0"/>
        <xs:element ref="LastStep" minOccurs="0"/>
        <xs:choice>
          <xs:element maxOccurs="unbounded" ref="MMER"/>
          <xs:element maxOccurs="unbounded" ref="MMEP"/>
        </xs:choice>
      </xs:sequence>
      <xs:attribute name="BusinessContext" use="required" type="xs:NCName"/>
    </xs:complexType>
  </xs:element>
  <xs:element name="FirstStep">
    <xs:complexType>
      <xs:attribute name="operation" use="required" type="xs:NCName"/>
      <xs:attribute name="targetURI" use="required" type="xs:anyURI"/>
    </xs:complexType>
  </xs:element>
  <xs:element name="LastStep">
    <xs:complexType>
      <xs:attribute name="operation" use="required" type="xs:NCName"/>
      <xs:attribute name="targetURI" use="required" type="xs:anyURI"/>
    </xs:complexType>
  </xs:element>
  <xs:element name="MMER">
    <xs:complexType>
      <xs:sequence>
        <xs:element maxOccurs="unbounded" minOccurs="2" ref="Role"/>
      </xs:sequence>
      <xs:attribute name="ForbiddenCardinality" use="required" type="xs:integer"/>
    </xs:complexType>
  </xs:element>
  <xs:element name="Role">
    <xs:complexType>
      <xs:attribute name="type" use="required" type="xs:NCName"/>
      <xs:attribute name="value" use="required" type="xs:NCName"/>
    </xs:complexType>
  </xs:element>
  <xs:element name="MMEP">
    <xs:complexType>
      <xs:sequence>
        <xs:element maxOccurs="unbounded" ref="Privilege"/>
      </xs:sequence>
      <xs:attribute name="ForbiddenCardinality" use="required" type="xs:integer"/>
    </xs:complexType>
  </xs:element>
  <xs:element name="Privilege">
    <xs:complexType>
      <xs:attribute name="target" use="required" type="xs:anyURI"/>
      <xs:attribute name="operation" use="required" type="xs:NCName"/>
    </xs:complexType>
  </xs:element>
</xs:schema>
"""

"""Serialise the in-memory MSoD policy model back to Appendix-A XML.

``parse(write(policy_set))`` round-trips to an equivalent policy set;
the round-trip property is exercised by hypothesis tests.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from xml.dom import minidom

from repro.core.constraints import MMCD, AdminBoundary
from repro.core.policy import MSoDPolicy, MSoDPolicySet, Step
from repro.errors import PolicyError
from repro.xmlpolicy import schema as S


def policy_set_to_element(policy_set: MSoDPolicySet) -> ET.Element:
    """Build the ``<MSoDPolicySet>`` element tree for a policy set."""
    root = ET.Element(S.ELEM_POLICY_SET)
    for policy in policy_set:
        root.append(_policy_to_element(policy))
    return root


def write_policy_set(policy_set: MSoDPolicySet, pretty: bool = True) -> str:
    """Serialise a policy set to an XML string."""
    root = policy_set_to_element(policy_set)
    raw = ET.tostring(root, encoding="unicode")
    if not pretty:
        return raw
    reparsed = minidom.parseString(raw)
    pretty_text = reparsed.toprettyxml(indent="  ")
    # minidom prepends an XML declaration; keep it, drop blank lines.
    return "\n".join(line for line in pretty_text.splitlines() if line.strip())


def write_policy_set_file(
    policy_set: MSoDPolicySet, path: str, pretty: bool = True
) -> None:
    """Serialise a policy set to an XML file on disk."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(write_policy_set(policy_set, pretty=pretty))
        handle.write("\n")


def _policy_to_element(policy: MSoDPolicy) -> ET.Element:
    element = ET.Element(S.ELEM_POLICY)
    element.set(S.ATTR_BUSINESS_CONTEXT, str(policy.business_context))
    element.set(S.ATTR_POLICY_ID, policy.policy_id)
    if policy.first_step is not None:
        element.append(_step_to_element(policy.first_step, S.ELEM_FIRST_STEP))
    if policy.last_step is not None:
        element.append(_step_to_element(policy.last_step, S.ELEM_LAST_STEP))
    for mmer in policy.mmers:
        mmer_elem = ET.SubElement(element, S.ELEM_MMER)
        mmer_elem.set(S.ATTR_FORBIDDEN_CARDINALITY, str(mmer.forbidden_cardinality))
        for role in mmer.roles:
            role_elem = ET.SubElement(mmer_elem, S.ELEM_ROLE)
            role_elem.set(S.ATTR_ROLE_TYPE, role.role_type)
            role_elem.set(S.ATTR_ROLE_VALUE, role.value)
    for mmep in policy.mmeps:
        mmep_elem = ET.SubElement(element, S.ELEM_MMEP)
        mmep_elem.set(S.ATTR_FORBIDDEN_CARDINALITY, str(mmep.forbidden_cardinality))
        for privilege in mmep.privileges:
            priv_elem = ET.SubElement(mmep_elem, S.ELEM_PRIVILEGE)
            priv_elem.set(S.ATTR_PRIV_OPERATION, privilege.operation)
            priv_elem.set(S.ATTR_PRIV_TARGET, privilege.target)
    for constraint in policy.extra_constraints:
        if isinstance(constraint, MMCD):
            mmcd_elem = ET.SubElement(element, S.ELEM_MMCD)
            for privilege in constraint.privileges:
                priv_elem = ET.SubElement(mmcd_elem, S.ELEM_PRIVILEGE)
                priv_elem.set(S.ATTR_PRIV_OPERATION, privilege.operation)
                priv_elem.set(S.ATTR_PRIV_TARGET, privilege.target)
        elif isinstance(constraint, AdminBoundary):
            boundary_elem = ET.SubElement(element, S.ELEM_ADMIN_BOUNDARY)
            boundary_elem.set(S.ATTR_BOUNDARY, constraint.boundary)
            for privilege in constraint.privileges:
                priv_elem = ET.SubElement(boundary_elem, S.ELEM_PRIVILEGE)
                priv_elem.set(S.ATTR_PRIV_OPERATION, privilege.operation)
                priv_elem.set(S.ATTR_PRIV_TARGET, privilege.target)
        else:
            raise PolicyError(
                "no XML serialisation for constraint kind "
                f"{constraint.kind!r}"
            )
    return element


def _step_to_element(step: Step, tag: str) -> ET.Element:
    element = ET.Element(tag)
    element.set(S.ATTR_STEP_OPERATION, step.operation)
    element.set(S.ATTR_STEP_TARGET, step.target)
    return element

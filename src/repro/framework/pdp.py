"""The ADF / Policy Decision Point side of the ISO framework (Figure 3).

:class:`PolicyDecisionPoint` is the interface every PDP in this
repository implements (the reference PDP here, the PERMIS PDP in
:mod:`repro.permis.pdp`).  :class:`ReferenceRBACMSoDPDP` is the minimal
composition the paper describes in Section 4.2: "The PDP first performs
its normal checking against the RBAC policy, and if the interim result
is grant, then the PDP will further perform the [MSoD] algorithm."
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.core.constraints import Privilege, Role
from repro.core.decision import Decision, DecisionRequest, Effect
from repro.core.engine import MSoDEngine
from repro.obs.trace import DecisionTracer
from repro.perf import NOOP, PerfRecorder


class PolicyDecisionPoint:
    """Abstract ADF: turns a decision request into a decision.

    Every PDP — in-process reference, PERMIS, remote client — shares
    one lifecycle: a :meth:`perf` recorder to observe it, a
    :meth:`close` to release whatever it holds (connections, store
    handles; a no-op by default), and context-manager support built on
    both, so callers never special-case which implementation they got::

        with open_pdp(policy, store="sqlite:adi.db") as pdp:
            decision = pdp.decide(request)
    """

    def decide(self, request: DecisionRequest) -> Decision:
        raise NotImplementedError

    # -- policy management (uniform across local/remote/cluster) -------
    def policy_version(self):
        """The :class:`~repro.core.policy_epoch.PolicyVersion` in force.

        Every concrete PDP that enforces an MSoD policy set reports the
        epoch + content digest its decisions are currently made under;
        PDPs without a reloadable policy (pure RBAC stubs) may leave
        this unimplemented.
        """
        raise NotImplementedError

    def reload_policy(self, policy):
        """Atomically swap the enforced policy set (zero downtime).

        ``policy`` is the same source union :func:`repro.api.open_pdp`
        accepts — an :class:`~repro.core.policy.MSoDPolicySet`, a path,
        or an XML string.  Returns a
        :class:`~repro.core.policy_epoch.PolicySwapReport`; reloading a
        semantically identical set is a detected no-op.
        """
        raise NotImplementedError

    @property
    def perf(self) -> PerfRecorder:
        """The recorder observing this PDP (``NOOP`` unless attached)."""
        return NOOP

    def close(self) -> None:
        """Release resources owned by this PDP.  Idempotent; no-op here."""

    def __enter__(self) -> "PolicyDecisionPoint":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class RoleTargetAccessPolicy:
    """A plain RBAC target-access policy: role → set of privileges.

    This is the "normal checking against the RBAC policy" that precedes
    the MSoD algorithm.  (The PERMIS subsystem has a richer version with
    subject/target domains; this one is the framework-level reference.)
    """

    def __init__(self, grants: Mapping[Role, Iterable[Privilege]]) -> None:
        self._grants: dict[Role, frozenset[Privilege]] = {
            role: frozenset(privileges) for role, privileges in grants.items()
        }

    def permits(self, roles: Iterable[Role], privilege: Privilege) -> bool:
        """True when any presented role is granted the privilege."""
        return any(
            privilege in self._grants.get(role, frozenset()) for role in roles
        )

    def privileges_of(self, role: Role) -> frozenset[Privilege]:
        return self._grants.get(role, frozenset())

    def roles(self) -> frozenset[Role]:
        return frozenset(self._grants)


class ReferenceRBACMSoDPDP(PolicyDecisionPoint):
    """RBAC interim check, then the Section 4.2 MSoD algorithm."""

    def __init__(
        self,
        access_policy: RoleTargetAccessPolicy,
        msod_engine: MSoDEngine,
        perf: PerfRecorder | None = None,
        tracer: DecisionTracer | None = None,
    ) -> None:
        self._access_policy = access_policy
        self._msod = msod_engine
        self._perf = perf if perf is not None else NOOP
        # Default to the engine's tracer so the PDP's RBAC span and the
        # engine's MSoD spans land in one per-decision trace.
        self._tracer = tracer if tracer is not None else msod_engine.tracer

    @property
    def msod_engine(self) -> MSoDEngine:
        return self._msod

    def policy_version(self):
        return self._msod.policy_version()

    def reload_policy(self, policy):
        from repro.api import load_policy_source

        return self._msod.swap_policy(load_policy_source(policy))

    @property
    def access_policy(self) -> RoleTargetAccessPolicy:
        return self._access_policy

    @property
    def perf(self) -> PerfRecorder:
        return self._perf

    @property
    def tracer(self) -> DecisionTracer:
        return self._tracer

    def decide(self, request: DecisionRequest) -> Decision:
        perf = self._perf
        timing = perf.enabled
        tracer = self._tracer
        tracing = tracer.enabled
        token = tracer.begin(request) if tracing else None
        started = perf.start() if timing else 0.0
        rbac_started = tracer.start() if tracing else 0.0
        perf.incr("pdp.requests")
        if not self._access_policy.permits(request.roles, request.privilege):
            perf.incr("pdp.rbac_denies")
            if timing:
                perf.stop("pdp.rbac", started)
            if tracing:
                tracer.span("pdp.rbac", rbac_started)
            # Stamp the MSoD engine's active version even though the
            # deny short-circuited before MSoD evaluation: the audit
            # trail records which policy regime was in force.
            version = self._msod.policy_version()
            decision = Decision(
                effect=Effect.DENY,
                request=request,
                reason=(
                    "RBAC: no presented role grants "
                    f"{request.operation!r} on {request.target!r}"
                ),
                policy_epoch=version.epoch,
                policy_digest=version.digest,
            )
            return tracer.finish(token, decision) if tracing else decision
        if timing:
            perf.stop("pdp.rbac", started)
        if tracing:
            tracer.span("pdp.rbac", rbac_started)
        # Interim grant — now the MSoD set of policies (Section 4.2).
        decision = self._msod.check(request)
        return tracer.finish(token, decision) if tracing else decision

"""The ADF / Policy Decision Point side of the ISO framework (Figure 3).

:class:`PolicyDecisionPoint` is the interface every PDP in this
repository implements (the reference PDP here, the PERMIS PDP in
:mod:`repro.permis.pdp`).  :class:`ReferenceRBACMSoDPDP` is the minimal
composition the paper describes in Section 4.2: "The PDP first performs
its normal checking against the RBAC policy, and if the interim result
is grant, then the PDP will further perform the [MSoD] algorithm."
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.core.constraints import Privilege, Role
from repro.core.decision import Decision, DecisionRequest, Effect
from repro.core.engine import MSoDEngine
from repro.perf import NOOP, PerfRecorder


class PolicyDecisionPoint:
    """Abstract ADF: turns a decision request into a decision."""

    def decide(self, request: DecisionRequest) -> Decision:
        raise NotImplementedError


class RoleTargetAccessPolicy:
    """A plain RBAC target-access policy: role → set of privileges.

    This is the "normal checking against the RBAC policy" that precedes
    the MSoD algorithm.  (The PERMIS subsystem has a richer version with
    subject/target domains; this one is the framework-level reference.)
    """

    def __init__(self, grants: Mapping[Role, Iterable[Privilege]]) -> None:
        self._grants: dict[Role, frozenset[Privilege]] = {
            role: frozenset(privileges) for role, privileges in grants.items()
        }

    def permits(self, roles: Iterable[Role], privilege: Privilege) -> bool:
        """True when any presented role is granted the privilege."""
        return any(
            privilege in self._grants.get(role, frozenset()) for role in roles
        )

    def privileges_of(self, role: Role) -> frozenset[Privilege]:
        return self._grants.get(role, frozenset())

    def roles(self) -> frozenset[Role]:
        return frozenset(self._grants)


class ReferenceRBACMSoDPDP(PolicyDecisionPoint):
    """RBAC interim check, then the Section 4.2 MSoD algorithm."""

    def __init__(
        self,
        access_policy: RoleTargetAccessPolicy,
        msod_engine: MSoDEngine,
        perf: PerfRecorder | None = None,
    ) -> None:
        self._access_policy = access_policy
        self._msod = msod_engine
        self._perf = perf if perf is not None else NOOP

    @property
    def msod_engine(self) -> MSoDEngine:
        return self._msod

    @property
    def access_policy(self) -> RoleTargetAccessPolicy:
        return self._access_policy

    @property
    def perf(self) -> PerfRecorder:
        return self._perf

    def decide(self, request: DecisionRequest) -> Decision:
        perf = self._perf
        timing = perf.enabled
        started = perf.start() if timing else 0.0
        perf.incr("pdp.requests")
        if not self._access_policy.permits(request.roles, request.privilege):
            perf.incr("pdp.rbac_denies")
            if timing:
                perf.stop("pdp.rbac", started)
            return Decision(
                effect=Effect.DENY,
                request=request,
                reason=(
                    "RBAC: no presented role grants "
                    f"{request.operation!r} on {request.target!r}"
                ),
            )
        if timing:
            perf.stop("pdp.rbac", started)
        # Interim grant — now the MSoD set of policies (Section 4.2).
        return self._msod.check(request)

"""The AEF / Policy Enforcement Point side of the ISO framework.

"The PEP, being part of the application, is easily able to identify the
business context instance of each user request" (Section 4.1).  The PEP
here binds an application clock and an optional audit sink, assembles
the five parameter sets of Section 4.1 into a
:class:`~repro.core.decision.DecisionRequest`, submits it to a PDP, and
enforces the outcome.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping

from repro.core.constraints import Role
from repro.core.context import ContextName
from repro.core.decision import Decision, DecisionRequest
from repro.errors import PDPUnavailableError, ReproError
from repro.framework.pdp import PolicyDecisionPoint


class AccessDeniedError(ReproError):
    """Raised by :meth:`PolicyEnforcementPoint.enforce` on a deny."""

    def __init__(self, decision: Decision) -> None:
        super().__init__(str(decision))
        self.decision = decision


class PolicyEnforcementPoint:
    """An AEF bound to one PDP.

    Parameters
    ----------
    pdp:
        The decision point to consult.
    clock:
        A zero-argument callable yielding the current time; injectable
        for deterministic tests and benchmarks.
    audit_sink:
        Optional callable receiving every :class:`Decision` made through
        this PEP (the PERMIS PDP wires this to the secure audit trail).
    """

    def __init__(
        self,
        pdp: PolicyDecisionPoint,
        clock: Callable[[], float],
        audit_sink: Callable[[Decision], None] | None = None,
    ) -> None:
        self._pdp = pdp
        self._clock = clock
        self._audit_sink = audit_sink

    @property
    def pdp(self) -> PolicyDecisionPoint:
        return self._pdp

    def request_decision(
        self,
        user_id: str,
        roles: Iterable[Role],
        operation: str,
        target: str,
        context_instance: ContextName,
        environment: Mapping[str, str] | None = None,
    ) -> Decision:
        """Build the Section-4.1 parameter set, decide, and audit.

        A PDP a network away can fail in ways an in-process one cannot;
        applications see those as the typed
        :class:`~repro.errors.PDPUnavailableError` rather than raw
        socket exceptions, keeping "the PDP is down" distinguishable
        from "access was denied" without transport-aware handlers.
        """
        request = DecisionRequest(
            user_id=user_id,
            roles=tuple(roles),
            operation=operation,
            target=target,
            context_instance=context_instance,
            timestamp=self._clock(),
            environment=dict(environment or {}),
        )
        try:
            decision = self._pdp.decide(request)
        except (PDPUnavailableError, ReproError):
            raise
        except (OSError, EOFError, ConnectionError, TimeoutError) as exc:
            raise PDPUnavailableError(
                f"PDP transport failure: {exc}"
            ) from exc
        if self._audit_sink is not None:
            self._audit_sink(decision)
        return decision

    def enforce(
        self,
        user_id: str,
        roles: Iterable[Role],
        operation: str,
        target: str,
        context_instance: ContextName,
        environment: Mapping[str, str] | None = None,
    ) -> Decision:
        """Like :meth:`request_decision`, raising on deny."""
        decision = self.request_decision(
            user_id, roles, operation, target, context_instance, environment
        )
        if decision.denied:
            raise AccessDeniedError(decision)
        return decision


class SimulatedClock:
    """A deterministic, manually advanced clock for tests and benches."""

    def __init__(self, start: float = 0.0, tick: float = 1.0) -> None:
        self._now = start
        self._tick = tick

    def __call__(self) -> float:
        self._now += self._tick
        return self._now

    @property
    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        self._now += seconds

"""Access-control Decision Information elements of ISO 10181-3 (Figure 3).

The ISO framework feeds the ADF (PDP) four kinds of ADI — initiator,
access-request, target and retained — plus contextual information.  The
classes here model the first three and the contextual information; the
retained ADI lives in :mod:`repro.core.retained_adi`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core.constraints import Role


@dataclass(frozen=True, slots=True)
class InitiatorADI:
    """Who is asking: the user's ID (mandatory for MSoD) and roles.

    Section 4.1: "In order to make multi-session access control
    decisions, the user's ID becomes mandatory so that the ADF/PDP can
    link together the user's sessions."
    """

    user_id: str
    roles: tuple[Role, ...]


@dataclass(frozen=True, slots=True)
class AccessRequestADI:
    """What is being asked: the operation and its parameters."""

    operation: str
    parameters: Mapping[str, str] = field(default_factory=dict)


@dataclass(frozen=True, slots=True)
class TargetADI:
    """What is being accessed: the target object's identifying attributes."""

    target: str
    attributes: Mapping[str, str] = field(default_factory=dict)


@dataclass(frozen=True, slots=True)
class ContextualInformation:
    """Environmental facts such as time of day.

    The business-context instance is deliberately *not* folded in here —
    the paper keeps it a separate parameter "because special matching
    rules apply to it" (Section 4.1).
    """

    environment: Mapping[str, str] = field(default_factory=dict)
    time_of_day: float = 0.0

"""The ISO 10181-3 access-control framework with retained ADI (Figure 3)."""

from repro.framework.adi import (
    AccessRequestADI,
    ContextualInformation,
    InitiatorADI,
    TargetADI,
)
from repro.framework.pdp import (
    PolicyDecisionPoint,
    ReferenceRBACMSoDPDP,
    RoleTargetAccessPolicy,
)
from repro.errors import PDPUnavailableError
from repro.framework.pep import (
    AccessDeniedError,
    PolicyEnforcementPoint,
    SimulatedClock,
)

__all__ = [
    "InitiatorADI",
    "AccessRequestADI",
    "TargetADI",
    "ContextualInformation",
    "PolicyDecisionPoint",
    "RoleTargetAccessPolicy",
    "ReferenceRBACMSoDPDP",
    "PolicyEnforcementPoint",
    "AccessDeniedError",
    "PDPUnavailableError",
    "SimulatedClock",
]

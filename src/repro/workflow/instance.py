"""Runtime process instances: routing plus PDP-mediated task execution.

A :class:`ProcessInstance` owns one concrete business-context instance
(e.g. ``TaxOffice=Leeds, taxRefundProcess=42``).  Each task execution is
submitted to the access-control system through a PEP; the workflow layer
enforces *routing* (ordering, multiplicity) while separation of duties
is enforced entirely by the PDP's MSoD policies — the engine never needs
to know the workflow's structure, which is the paper's key difference
from Bertino et al.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.constraints import Role
from repro.core.context import ContextName
from repro.core.decision import Decision
from repro.errors import WorkflowError
from repro.framework.pep import PolicyEnforcementPoint
from repro.workflow.definition import ProcessDefinition, TaskDef


@dataclass(frozen=True, slots=True)
class TaskExecution:
    """A granted execution of one task by one user."""

    task_id: str
    user_id: str
    decision: Decision


class ProcessInstance:
    """One run of a business process inside its own context instance."""

    def __init__(
        self,
        definition: ProcessDefinition,
        instance_id: str,
        parent_context: ContextName,
        pep: PolicyEnforcementPoint,
    ) -> None:
        if not instance_id:
            raise WorkflowError("process instance id must be non-empty")
        self._definition = definition
        self._instance_id = instance_id
        self._context = parent_context.child(definition.context_type, instance_id)
        self._pep = pep
        self._executions: list[TaskExecution] = []
        self._cancelled = False

    # ------------------------------------------------------------------
    @property
    def definition(self) -> ProcessDefinition:
        return self._definition

    @property
    def instance_id(self) -> str:
        return self._instance_id

    @property
    def context(self) -> ContextName:
        """The concrete business-context instance of this run."""
        return self._context

    @property
    def executions(self) -> tuple[TaskExecution, ...]:
        return tuple(self._executions)

    # ------------------------------------------------------------------
    def completed_count(self, task_id: str) -> int:
        return sum(
            1 for execution in self._executions if execution.task_id == task_id
        )

    def is_task_complete(self, task: TaskDef) -> bool:
        return self.completed_count(task.task_id) >= task.multiplicity

    def is_complete(self) -> bool:
        return all(self.is_task_complete(task) for task in self._definition.tasks)

    def available_tasks(self) -> tuple[TaskDef, ...]:
        """Tasks whose dependencies are met and multiplicity not exhausted."""
        available = []
        for task in self._definition.tasks:
            if self.is_task_complete(task):
                continue
            deps_met = all(
                self.is_task_complete(self._definition.task(dep))
                for dep in task.depends_on
            )
            if deps_met:
                available.append(task)
        return tuple(available)

    # ------------------------------------------------------------------
    def attempt(
        self, task_id: str, user_id: str, roles: Iterable[Role]
    ) -> Decision:
        """Try to execute a task; routing errors raise, SoD denials return.

        Raises :class:`~repro.errors.WorkflowError` when the task is not
        currently routable (wrong order, already complete).  Returns the
        PDP's :class:`~repro.core.decision.Decision`; on a grant the
        execution is recorded against the instance.
        """
        if self._cancelled:
            raise WorkflowError(
                f"instance {self._instance_id!r} has been cancelled"
            )
        task = self._definition.task(task_id)
        if task not in self.available_tasks():
            raise WorkflowError(
                f"task {task_id!r} is not available in instance "
                f"{self._instance_id!r} (order or multiplicity)"
            )
        decision = self._pep.request_decision(
            user_id=user_id,
            roles=roles,
            operation=task.operation,
            target=task.target,
            context_instance=self._context,
        )
        if decision.granted:
            self._executions.append(TaskExecution(task_id, user_id, decision))
        return decision

    def executors_of(self, task_id: str) -> tuple[str, ...]:
        return tuple(
            execution.user_id
            for execution in self._executions
            if execution.task_id == task_id
        )

    # ------------------------------------------------------------------
    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self, msod_engine=None) -> int:
        """Abandon the instance; optionally release its MSoD history.

        An abandoned process never reaches the policy's last step, so
        its retained-ADI records would linger (the Section-4.3 growth
        problem).  When the application passes the PDP's
        :class:`~repro.core.engine.MSoDEngine`, cancellation signals the
        implied termination of the instance's business context
        (Section 2.2) and returns the number of purged records.
        """
        if self.cancelled:
            raise WorkflowError(
                f"instance {self._instance_id!r} is already cancelled"
            )
        self._cancelled = True
        if msod_engine is not None:
            return msod_engine.notify_context_terminated(self._context)
        return 0

"""A minimal workflow engine driving the paper's Example 2."""

from repro.workflow.definition import (
    ProcessDefinition,
    TaskDef,
    tax_refund_process,
)
from repro.workflow.instance import ProcessInstance, TaskExecution

__all__ = [
    "TaskDef",
    "ProcessDefinition",
    "tax_refund_process",
    "ProcessInstance",
    "TaskExecution",
]

"""Business-process definitions for multi-task workflows (Example 2).

The paper's solution is deliberately *not* tied to a workflow system
(unlike Bertino et al. [12]) — the PDP only sees operations, targets and
business-context instances.  This package provides the *application*
side: a small workflow engine that routes tasks, forms the business-
context instance for each task execution, and calls the PDP through a
PEP.  It drives the tax-refund example and the Example-2 benches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import WorkflowError


@dataclass(frozen=True, slots=True)
class TaskDef:
    """One task of a business process.

    ``multiplicity`` is how many distinct executions the task needs
    (Example 2's T2 "should be performed in parallel twice");
    ``depends_on`` are task ids that must be complete first.
    """

    task_id: str
    operation: str
    target: str
    multiplicity: int = 1
    depends_on: tuple[str, ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        if not self.task_id:
            raise WorkflowError("task id must be non-empty")
        if self.multiplicity < 1:
            raise WorkflowError(
                f"task {self.task_id!r}: multiplicity must be >= 1"
            )


@dataclass(frozen=True)
class ProcessDefinition:
    """A named business process: an acyclic set of tasks."""

    name: str
    context_type: str  # e.g. "taxRefundProcess"
    tasks: tuple[TaskDef, ...] = field(default=())

    def __init__(
        self, name: str, context_type: str, tasks: Iterable[TaskDef]
    ) -> None:
        task_tuple = tuple(tasks)
        if not name:
            raise WorkflowError("process name must be non-empty")
        if not task_tuple:
            raise WorkflowError(f"process {name!r} needs at least one task")
        ids = [task.task_id for task in task_tuple]
        if len(set(ids)) != len(ids):
            raise WorkflowError(f"process {name!r} has duplicate task ids")
        known = set(ids)
        for task in task_tuple:
            for dep in task.depends_on:
                if dep not in known:
                    raise WorkflowError(
                        f"task {task.task_id!r} depends on unknown task {dep!r}"
                    )
        _check_acyclic(task_tuple)
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "context_type", context_type)
        object.__setattr__(self, "tasks", task_tuple)

    def task(self, task_id: str) -> TaskDef:
        for task in self.tasks:
            if task.task_id == task_id:
                return task
        raise WorkflowError(f"process {self.name!r} has no task {task_id!r}")

    def task_ids(self) -> tuple[str, ...]:
        return tuple(task.task_id for task in self.tasks)


def _check_acyclic(tasks: tuple[TaskDef, ...]) -> None:
    deps = {task.task_id: set(task.depends_on) for task in tasks}
    resolved: set[str] = set()
    while deps:
        ready = [task_id for task_id, waiting in deps.items() if waiting <= resolved]
        if not ready:
            raise WorkflowError(
                f"cyclic task dependencies among {sorted(deps)}"
            )
        for task_id in ready:
            resolved.add(task_id)
            del deps[task_id]


def tax_refund_process() -> ProcessDefinition:
    """The paper's Example 2 as a process definition.

    T1: a clerk prepares a check; T2: two different managers approve or
    disapprove it (in parallel); T3: a manager different from the T2
    managers combines the results; T4: a clerk different from the T1
    clerk issues or voids the check.
    """
    return ProcessDefinition(
        name="taxRefund",
        context_type="taxRefundProcess",
        tasks=[
            TaskDef(
                "T1",
                "prepareCheck",
                "http://www.myTaxOffice.com/Check",
                description="a clerk prepares a check for a tax refund",
            ),
            TaskDef(
                "T2",
                "approve/disapproveCheck",
                "http://www.myTaxOffice.com/Check",
                multiplicity=2,
                depends_on=("T1",),
                description="two managers approve or disapprove in parallel",
            ),
            TaskDef(
                "T3",
                "combineResults",
                "http://secret.location.com/results",
                depends_on=("T2",),
                description="a different manager collects the decisions",
            ),
            TaskDef(
                "T4",
                "confirmCheck",
                "http://secret.location.com/audit",
                depends_on=("T3",),
                description="a different clerk issues or voids the check",
            ),
        ],
    )

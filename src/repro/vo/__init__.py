"""Multi-authority virtual-organisation simulation (Sections 1, 2.1, 6)."""

from repro.vo.authority import RoleAuthority
from repro.vo.federation import (
    IdentityLinker,
    LibertyAliasService,
    ShibbolethIdP,
)

__all__ = [
    "RoleAuthority",
    "ShibbolethIdP",
    "LibertyAliasService",
    "IdentityLinker",
]

"""Federated-identity simulators for the paper's Section 6 limitations.

Two assumptions underpin MSoD enforcement: the user presents the *same*
ID in every session, and every role is linked to that same ID.  Section 6
names the two federation models that break them and their fixes:

* **Shibboleth** gives a user "a different handle ID for each session" —
  MSoD cannot link sessions on handles alone.  The fix: configure the
  IdP "to return the user's ID along with their other attributes".
* **Liberty Alliance**: each authority identifies the user differently;
  the model "supports identity linking between pairs of authorities,
  providing each service provider with a one way alias" — MSoD works by
  "linking the user's aliases to the local identity".

:class:`ShibbolethIdP`, :class:`LibertyAliasService` and
:class:`IdentityLinker` reproduce exactly those behaviours so the VO
bench can show MSoD failing on unlinked handles and succeeding once
linking is configured.
"""

from __future__ import annotations

import hashlib
import itertools

from repro.errors import CredentialError


class ShibbolethIdP:
    """Issues a fresh opaque handle for every user session."""

    def __init__(self, idp_name: str, release_user_id: bool = False) -> None:
        self._idp_name = idp_name
        self._release_user_id = release_user_id
        self._counter = itertools.count(1)
        self._handles: dict[str, str] = {}  # handle -> true user id

    @property
    def releases_user_id(self) -> bool:
        """True when the IdP is configured to disclose the real user ID."""
        return self._release_user_id

    def configure_user_id_release(self, release: bool) -> None:
        """The Section 6 fix: release the user's ID with the attributes."""
        self._release_user_id = release

    def new_session(self, user_id: str) -> str:
        """Return the identifier the service provider will see.

        A fresh per-session handle by default; the stable user ID when
        release is configured.
        """
        if self._release_user_id:
            return user_id
        handle = f"{self._idp_name}-handle-{next(self._counter):06d}"
        self._handles[handle] = user_id
        return handle

    def resolve(self, handle: str) -> str:
        """IdP-internal lookup (never available to the PDP)."""
        user = self._handles.get(handle)
        if user is None:
            raise CredentialError(f"unknown handle {handle!r}")
        return user


class LibertyAliasService:
    """Pairwise persistent one-way aliases, Liberty ID-FF style.

    The alias for (user, service-provider) is stable across sessions but
    different for every provider, and does not reveal the user's true
    identity at any authority.
    """

    def __init__(self, secret: bytes = b"liberty-federation-secret") -> None:
        self._secret = secret

    def alias_for(self, user_id: str, provider: str) -> str:
        digest = hashlib.sha256(
            b"|".join([self._secret, user_id.encode(), provider.encode()])
        ).hexdigest()
        return f"alias-{digest[:16]}"


class IdentityLinker:
    """The PDP-side mapping from federated aliases to a local identity.

    "MSoD can be enforced by linking the user's aliases to the local
    identity, and basing the MSoD policy on the local identity"
    (Section 6).  Providers register each alias → local-identity link as
    federation agreements are established; unlinked identifiers resolve
    to themselves (and so defeat session linking).
    """

    def __init__(self) -> None:
        self._links: dict[str, str] = {}

    def link(self, alias: str, local_id: str) -> None:
        if not alias or not local_id:
            raise CredentialError("alias and local id must be non-empty")
        existing = self._links.get(alias)
        if existing is not None and existing != local_id:
            raise CredentialError(
                f"alias {alias!r} is already linked to {existing!r}"
            )
        self._links[alias] = local_id

    def resolve(self, identifier: str) -> str:
        """The identity MSoD should key its retained ADI on."""
        return self._links.get(identifier, identifier)

    def is_linked(self, identifier: str) -> bool:
        return identifier in self._links

"""Independent role-allocating authorities of a virtual organisation.

Paper Section 1: "In dynamic virtual organisations (VOs) when multiple
independent role allocating authorities exist, SSD cannot be enforced at
role assignment time since no single administrative function will know
all the roles that have already been assigned to any single user."

Each :class:`RoleAuthority` is one administrative domain with its own
SOA: it signs credentials for the roles it assigns and can check SSD
constraints *only against its own assignments* — which is exactly the
blind spot the VO benches demonstrate.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.constraints import Role
from repro.errors import ConstraintViolationError
from repro.permis.credentials import AttributeCredential
from repro.permis.directory import LdapDirectory
from repro.permis.pa import PrivilegeAllocator
from repro.rbac.constraints import SsdConstraint


class RoleAuthority:
    """One role-allocating authority in a multi-domain VO."""

    def __init__(
        self,
        name: str,
        soa_dn: str,
        signing_key: bytes,
        directory: LdapDirectory | None = None,
        ssd_constraints: Iterable[SsdConstraint] = (),
    ) -> None:
        self._name = name
        self._allocator = PrivilegeAllocator(soa_dn, signing_key, directory)
        self._local_assignments: dict[str, set[Role]] = {}
        self._ssd = tuple(ssd_constraints)

    @property
    def name(self) -> str:
        return self._name

    @property
    def soa_dn(self) -> str:
        return self._allocator.soa_dn

    @property
    def verification_key(self) -> bytes:
        return self._allocator.verification_key

    def local_roles_of(self, user_dn: str) -> frozenset[Role]:
        """The roles *this* authority has assigned to the user."""
        return frozenset(self._local_assignments.get(user_dn, set()))

    # ------------------------------------------------------------------
    def assign(
        self,
        user_dn: str,
        role: Role,
        not_before: float,
        not_after: float,
        enforce_local_ssd: bool = True,
    ) -> AttributeCredential:
        """Assign a role by issuing a signed credential.

        With ``enforce_local_ssd`` the authority applies its SSD
        constraints to the assignments *it* knows about — it cannot see
        what other authorities have assigned, so cross-authority
        conflicts always pass this check.
        """
        if enforce_local_ssd:
            prospective = {
                r.value for r in self._local_assignments.get(user_dn, set())
            } | {role.value}
            for constraint in self._ssd:
                if constraint.violated_by(prospective):
                    raise ConstraintViolationError(
                        f"authority {self._name!r}: assigning {role} to "
                        f"{user_dn!r} violates local SSD set {constraint.name!r}"
                    )
        credential = self._allocator.issue(
            user_dn, [role], not_before, not_after
        )
        self._local_assignments.setdefault(user_dn, set()).add(role)
        return credential

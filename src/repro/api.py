"""repro.api — the one way to construct and run an MSoD PDP.

Before this module existed the repository had three divergent
construction rituals: the CLI built ``SQLiteRetainedADIStore`` +
``MSoDEngine`` by hand, the server tests assembled engine + service +
``ServerThread``, and the benchmarks did both again.  :func:`open_pdp`
replaces all of them with a single call that returns a uniform
:class:`~repro.framework.pdp.PolicyDecisionPoint` handle::

    from repro.api import open_pdp

    with open_pdp("policy.xml") as pdp:                      # in-memory
        decision = pdp.decide(request)

    with open_pdp("policy.xml", store="sqlite:adi.db") as pdp:
        ...                                                  # durable

    with open_pdp(store="remote:pdp.example:8750") as pdp:
        ...                                                  # networked

Every handle supports the same lifecycle — ``decide``, ``close``,
context-manager exit, and a ``perf`` recorder — so callers never
special-case remote connection pooling against in-process stores.
``trace=True`` additionally attaches a
:class:`~repro.obs.trace.DecisionTracer` with a slow-decision log, and
each decision carries its :class:`~repro.obs.trace.DecisionTrace`.

:func:`open_server` is the serving twin: the same policy/store spec,
but wrapped in a sharded :class:`~repro.server.service
.AuthorizationService` listening on a socket, with a ``client()``
shortcut returning a connected :class:`~repro.client.RemotePDP`.
"""

from __future__ import annotations

import os
from typing import Union

from repro.core.context import ContextName
from repro.core.decision import Decision, DecisionRequest
from repro.core.engine import MODE_STRICT, MSoDEngine
from repro.core.policy import MSoDPolicySet
from repro.core.retained_adi import RetainedADIStore
from repro.errors import PolicyError, StoreSpecError
from repro.framework.pdp import PolicyDecisionPoint
from repro.obs.slowlog import SlowDecisionLog
from repro.obs.trace import DecisionTracer
from repro.perf import NOOP, PerfRecorder
from repro.storespec import (
    ParsedStoreSpec,
    build_store,
    open_store,
    parse_store_spec,
)

__all__ = [
    "open_pdp",
    "open_server",
    "open_cluster",
    "load_policy_source",
    "verify_policy",
    "what_if",
    "parse_store_spec",
    "build_store",
    "open_store",
    "ParsedStoreSpec",
    "StoreSpecError",
    "LocalPDP",
    "ServerHandle",
    "ClusterHandle",
]

#: Accepted ``policy`` argument shapes.
PolicySource = Union[MSoDPolicySet, str, "os.PathLike[str]", None]

#: Accepted ``store`` argument shapes.
StoreSpec = Union[str, RetainedADIStore]


def _load_policy_set(policy: PolicySource) -> MSoDPolicySet:
    if isinstance(policy, MSoDPolicySet):
        return policy
    if isinstance(policy, str) and policy.lstrip().startswith("<"):
        from repro.xmlpolicy import parse_policy_set

        return parse_policy_set(policy)
    if isinstance(policy, (str, os.PathLike)):
        from repro.xmlpolicy import parse_policy_set_file

        return parse_policy_set_file(os.fspath(policy))
    raise PolicyError(
        "policy must be an MSoDPolicySet, a path to a policy XML file, "
        f"or a policy XML string, got {type(policy).__name__}"
    )


def load_policy_source(policy: PolicySource) -> MSoDPolicySet:
    """Resolve any accepted policy source to an :class:`MSoDPolicySet`.

    The same union :func:`open_pdp` takes — an already-built set, a
    path to an Appendix-A XML file, or the XML text itself (detected by
    a leading ``<``).  ``reload_policy`` on every PDP handle funnels
    through this, so hot reloads accept exactly the shapes construction
    does.  ``None`` is rejected: a reload always needs a policy.
    """
    if policy is None:
        raise PolicyError(
            "policy source is required (an MSoDPolicySet, a path, or XML text)"
        )
    return _load_policy_set(policy)


def verify_policy(policy: PolicySource, *, permis=None, ssd=()):
    """Statically verify any accepted policy source.

    Returns the structured
    :class:`~repro.verify.static.VerifyReport` — the same analysis
    ``swap_policy`` gates on, plus the deeper RBAC cross-reference when
    a PERMIS companion policy is supplied.
    """
    from repro.verify.static import analyze_policy_set

    return analyze_policy_set(
        load_policy_source(policy), permis=permis, ssd=ssd
    )


def what_if(
    policy: PolicySource,
    trail_dir: str,
    *,
    audit_key: bytes,
    last_n_trails: int | None = None,
    since: float = 0.0,
):
    """Differentially replay a recorded trail under a candidate set.

    Convenience wrapper over
    :func:`repro.verify.whatif.what_if_replay` for operators holding a
    trail directory: returns the
    :class:`~repro.verify.whatif.WhatIfReport` of decisions the
    candidate would flip.
    """
    from repro.audit.trail import AuditTrailManager
    from repro.verify.whatif import what_if_replay

    trails = AuditTrailManager(trail_dir, audit_key, tolerate_ahead=True)
    return what_if_replay(
        trails,
        load_policy_source(policy),
        last_n_trails=last_n_trails,
        since=since,
    )


def _build_tracer(
    trace: bool, slowlog_capacity: int
) -> tuple[DecisionTracer | None, SlowDecisionLog | None]:
    if not trace:
        return None, None
    slow_log = (
        SlowDecisionLog(slowlog_capacity) if slowlog_capacity > 0 else None
    )
    return DecisionTracer(slow_log=slow_log), slow_log


class LocalPDP(PolicyDecisionPoint):
    """An in-process PDP over one MSoD engine and its retained ADI.

    The uniform handle :func:`open_pdp` returns for ``memory`` and
    ``sqlite:`` stores: ``decide`` runs the Section 4.2 algorithm,
    ``close`` releases the store (only when the handle created it), and
    ``perf`` / ``tracer`` / ``slow_log`` expose the observability
    layer.
    """

    def __init__(
        self,
        engine: MSoDEngine,
        *,
        owns_store: bool = True,
        slow_log: SlowDecisionLog | None = None,
    ) -> None:
        self._engine = engine
        self._owns_store = owns_store
        self._slow_log = slow_log
        self._closed = False

    @property
    def engine(self) -> MSoDEngine:
        return self._engine

    @property
    def store(self) -> RetainedADIStore:
        return self._engine.store

    @property
    def perf(self) -> PerfRecorder:
        return self._engine.perf

    @property
    def tracer(self) -> DecisionTracer:
        return self._engine.tracer

    @property
    def slow_log(self) -> SlowDecisionLog | None:
        """The slow-decision log (None unless opened with ``trace=True``)."""
        return self._slow_log

    def decide(self, request: DecisionRequest) -> Decision:
        return self._engine.check(request)

    def policy_version(self):
        """The :class:`PolicyVersion` this handle's decisions run under."""
        return self._engine.policy_version()

    def reload_policy(
        self,
        policy: PolicySource,
        *,
        verify: bool = False,
        max_flips: int = 0,
        force: bool = False,
        principal: str | None = None,
    ):
        """Atomically swap the engine's policy set; see ``swap_policy``.

        ``verify=True`` runs the verification gate first (static-only:
        an in-process handle records no audit trail); ``force=True``
        overrides the gate.  ``max_flips`` is accepted for signature
        parity with the remote and cluster handles.  ``principal``
        names the acting operator: when the outgoing set guards the
        policy store with an admin boundary, a principal with retained
        operational decisions is refused (``force`` does not override
        the boundary).
        """
        policy_set = load_policy_source(policy)
        if principal is not None:
            from repro.core.constraints import POLICY_RELOAD_PRIVILEGE

            denial = self._engine.admin_boundary_denial(
                principal, POLICY_RELOAD_PRIVILEGE
            )
            if denial is not None:
                raise PolicyError(
                    f"policy reload refused by admin boundary: {denial}"
                )
        if verify:
            from repro.verify.gate import evaluate_gate

            gate = evaluate_gate(policy_set, max_flips=max_flips)
            if not gate.ok and not force:
                raise PolicyError(
                    "policy reload refused by verification gate: "
                    + "; ".join(gate.reasons)
                )
        return self._engine.swap_policy(policy_set, force=force)

    def notify_context_terminated(self, context: ContextName) -> int:
        """Forward an implied context termination to the engine."""
        return self._engine.notify_context_terminated(context)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._owns_store:
            self._engine.store.close()


def open_pdp(
    policy: PolicySource = None,
    store: StoreSpec = "memory",
    *,
    perf: PerfRecorder | None = None,
    trace: bool = False,
    slowlog_capacity: int = 32,
    mode: str = MODE_STRICT,
    timeout: float = 5.0,
    pool_size: int = 4,
    max_retries: int = 2,
    protocol: str = "auto",
) -> PolicyDecisionPoint:
    """Open a PDP handle over any backend with one uniform call.

    Parameters
    ----------
    policy:
        An :class:`MSoDPolicySet` or a path to an Appendix-A policy XML
        file.  Required for in-process stores; must be ``None`` for
        ``remote:`` stores (the server owns the policy).
    store:
        ``"memory"``, ``"sqlite:<path>"``, ``"remote:<host>:<port>"``,
        ``"tiered:<warm-spec>?hot_users=N"`` (hot in-memory aggregates
        with LRU eviction over a sqlite/memory warm layer — see
        ``docs/SCALE.md``), or an already-constructed
        :class:`RetainedADIStore` (whose lifetime then stays with the
        caller).  See :func:`parse_store_spec` for the full grammar.
    perf:
        Optional :class:`PerfRecorder`; for remote handles it records
        the client-side counters instead.
    trace:
        Attach an enabled :class:`DecisionTracer` (plus a slow-decision
        log of ``slowlog_capacity`` entries) so every decision carries
        a :class:`~repro.obs.trace.DecisionTrace`.  Unsupported for
        ``remote:`` handles — tracing happens server-side there (start
        the server with tracing and query its ``slowlog`` verb).
    mode:
        Engine mode, ``strict`` (default) or ``literal``.
    timeout, pool_size, max_retries:
        Remote-handle connection tuning; ignored for in-process stores.
    protocol:
        Remote decide wire protocol: ``"auto"`` (negotiate the
        pipelined binary v2, fall back to v1), ``"v1"`` or ``"v2"``.
        Ignored for in-process stores.
    """
    parsed = parse_store_spec(store)
    if parsed.is_remote:
        if policy is not None:
            raise PolicyError(
                "remote PDPs take no policy argument — the server owns "
                "the policy"
            )
        if trace:
            raise PolicyError(
                "tracing is server-side for remote PDPs: start the server "
                "with tracing enabled and query its slowlog/metrics verbs"
            )
        from repro.client.remote import RemotePDP

        return RemotePDP(
            parsed.host,
            parsed.port,
            pool_size=pool_size,
            timeout=timeout,
            max_retries=max_retries,
            perf=perf,
            protocol_version=protocol,
        )

    policy_set = _load_policy_set(policy)
    backend, owns_store = build_store(parsed)
    tracer, slow_log = _build_tracer(trace, slowlog_capacity)
    engine = MSoDEngine(
        policy_set, backend, mode=mode, perf=perf, tracer=tracer
    )
    return LocalPDP(engine, owns_store=owns_store, slow_log=slow_log)


class ServerHandle:
    """A running authorization server plus the resources it owns.

    Returned by :func:`open_server`; closing it drains the shard
    queues, stops the listener thread and closes the store it opened.
    """

    def __init__(self, thread, owned_store: RetainedADIStore | None) -> None:
        self._thread = thread
        self._owned_store = owned_store
        self._closed = False

    @property
    def host(self) -> str:
        return self._thread.host

    @property
    def port(self) -> int:
        return self._thread.port

    @property
    def service(self):
        return self._thread.service

    @property
    def engine(self) -> MSoDEngine:
        return self._thread.service.engine

    def client(self, **kwargs):
        """A :class:`~repro.client.RemotePDP` connected to this server."""
        from repro.client.remote import RemotePDP

        return RemotePDP(self.host, self.port, **kwargs)

    def policy_version(self):
        """The :class:`PolicyVersion` the server decides under."""
        return self.engine.policy_version()

    def reload_policy(
        self,
        policy: PolicySource,
        *,
        verify: bool = False,
        max_flips: int = 0,
        force: bool = False,
        principal: str | None = None,
    ):
        """Hot-swap the server's policy set without dropping connections.

        Scheduled on the server's event loop (between shard
        micro-batches), so no in-flight decision mixes two versions.
        Accepts the same source union as :func:`open_server`; the
        keyword options run the server-side verification gate (see
        :meth:`AuthorizationService.reload_policy`).
        """
        return self._thread.reload_policy(
            load_policy_source(policy),
            verify=verify,
            max_flips=max_flips,
            force=force,
            principal=principal,
        )

    def close(self) -> None:
        """Drain, stop the server thread and release owned resources."""
        if self._closed:
            return
        self._closed = True
        self._thread.stop()
        if self._owned_store is not None:
            self._owned_store.close()

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def open_server(
    policy: PolicySource,
    store: StoreSpec = "memory",
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    n_shards: int = 4,
    queue_depth: int = 256,
    batch_max: int = 32,
    gather_window: float | None = None,
    perf: PerfRecorder | None = None,
    trace: bool = False,
    slowlog_capacity: int = 32,
    mode: str = MODE_STRICT,
) -> ServerHandle:
    """Boot a sharded authorization server on a background thread.

    The serving twin of :func:`open_pdp`: same policy/store specs
    (``remote:`` is meaningless here and rejected), one call instead of
    the engine + service + ``ServerThread`` ritual.  ``port=0`` binds
    an ephemeral port — read it back from the handle.
    """
    from repro.server.service import AuthorizationService
    from repro.server.testing import ServerThread

    parsed = parse_store_spec(store)
    if parsed.is_remote:
        raise StoreSpecError(
            "open_server runs the server side; use a local store"
        )
    policy_set = _load_policy_set(policy)
    backend, owns_store = build_store(parsed)
    owned = backend if owns_store else None
    recorder = perf if perf is not None else NOOP
    tracer, _ = _build_tracer(trace, slowlog_capacity)
    engine = MSoDEngine(
        policy_set, backend, mode=mode, perf=recorder, tracer=tracer
    )
    service = AuthorizationService(
        engine,
        n_shards=n_shards,
        queue_depth=queue_depth,
        batch_max=batch_max,
        gather_window=gather_window,
        perf=recorder,
    )
    thread = ServerThread(service, host=host, port=port).start()
    return ServerHandle(thread, owned)


class ClusterHandle:
    """A running multi-node MSoD cluster plus its coordinator.

    Returned by :func:`open_cluster`; ``client()`` connects a
    :class:`~repro.cluster.ClusterPDP` that routes by user, stamps the
    fencing epoch and survives failovers.
    """

    def __init__(self, cluster) -> None:
        self._cluster = cluster
        self._closed = False

    @property
    def cluster(self):
        return self._cluster

    @property
    def host(self) -> str:
        return self._cluster.host

    @property
    def port(self) -> int:
        """The coordinator's bound port (route/status/metrics verbs)."""
        return self._cluster.port

    @property
    def shard_names(self) -> tuple[str, ...]:
        return self._cluster.shard_names

    def client(self, **kwargs):
        """A :class:`~repro.cluster.ClusterPDP` connected to this cluster."""
        from repro.cluster import ClusterPDP

        return ClusterPDP((self.host, self.port), **kwargs)

    def kill_primary(self, shard_name: str) -> str:
        """Fault injection: crash one shard's primary (no drain)."""
        return self._cluster.kill_primary(shard_name)

    def policy_version(self):
        """The cluster-wide :class:`PolicyVersion` (coordinator's view)."""
        return self._cluster.policy_version()

    def reload_policy(
        self,
        policy: PolicySource,
        *,
        verify: bool = False,
        max_flips: int = 0,
        force: bool = False,
        principal: str | None = None,
    ):
        """Roll a new policy set across every node, standby first.

        The coordinator swaps each shard's standby before its primary
        and bumps the route version afterwards, so a failover during
        the rollout still lands on a node already running the new set.
        Accepts the same source union as :func:`open_cluster`.
        """
        return self._cluster.reload_policy(
            load_policy_source(policy),
            verify=verify,
            max_flips=max_flips,
            force=force,
            principal=principal,
        )

    def canary_reload_policy(
        self,
        policy: PolicySource,
        *,
        shard_name: str | None = None,
        max_flips: int = 0,
        min_decisions: int = 0,
        timeout: float = 5.0,
    ):
        """Safe rollout: canary one shard before the cluster-wide roll.

        See :meth:`LocalCluster.canary_reload_policy` — stage the
        candidate on one shard's standby, mirror that shard's live
        decide stream through old and candidate sets, and only roll
        cluster-wide when total flips stay within ``max_flips``.
        """
        return self._cluster.canary_reload_policy(
            load_policy_source(policy),
            shard_name=shard_name,
            max_flips=max_flips,
            min_decisions=min_decisions,
            timeout=timeout,
        )

    def status(self) -> dict:
        return self._cluster.status()

    # -- elastic resharding -------------------------------------------
    def add_shard(self, name: str | None = None) -> str:
        """Grow by one shard: start a primary+standby pair and begin a
        live split migration onto it.  Returns the new shard's name;
        poll :meth:`reshard_status` or call :meth:`wait_reshard` for
        completion."""
        return self._cluster.add_shard(name)

    def drain_shard(self, name: str) -> None:
        """Shrink by one shard: migrate ``name``'s users to the
        surviving shards, then retire its nodes (trails are kept as
        sealed lineages)."""
        self._cluster.drain_shard(name)

    def rebalance(self, *, threshold: float = 1.5, apply: bool = False):
        """Imbalance report from per-shard resident-user gauges;
        ``apply=True`` starts a split when the report recommends one."""
        return self._cluster.rebalance(threshold=threshold, apply=apply)

    def reshard_status(self) -> dict:
        """Active-migration state plus migration history counters."""
        return self._cluster.reshard_status()

    def wait_reshard(self, timeout: float = 60.0) -> dict:
        """Block until no migration is in flight (raises at timeout)."""
        return self._cluster.wait_reshard(timeout=timeout)

    def shard_stats(self) -> dict:
        """Per-shard primary ``store.stats()`` gauges."""
        return self._cluster.shard_stats()

    def crash_coordinator(self) -> None:
        """Fault injection: stop the coordinator (nodes keep serving)."""
        self._cluster.crash_coordinator()

    def restart_coordinator(self) -> None:
        """Restart a crashed coordinator from its persisted state file;
        an in-flight migration resumes from its recorded phase."""
        self._cluster.restart_coordinator()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._cluster.stop()

    def __enter__(self) -> "ClusterHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def open_cluster(
    policy: PolicySource,
    data_dir: str,
    *,
    n_shards: int = 2,
    store: str = "memory",
    host: str = "127.0.0.1",
    port: int = 0,
    audit_key: bytes = b"cluster-trail-key",
    audit_max_records: int = 10_000,
    audit_max_bytes: int | None = None,
    journal_max: int | None = None,
    fsync: bool = True,
    health_interval: float = 0.2,
    health_timeout: float = 0.25,
    vnodes: int = 64,
    resume: bool = True,
) -> ClusterHandle:
    """Boot an N-shard MSoD cluster (primary + standby per shard).

    The scale-out twin of :func:`open_server`: the same policy spec,
    but behind consistent-hash routing by ``user_id``, with each shard
    primary shipping its fsync'd audit trail to a warm standby (see
    :mod:`repro.cluster` and ``docs/CLUSTER.md``).  ``data_dir`` holds
    every node's trail directory and, for durable stores, its store
    file.  ``store`` takes the unified spec grammar minus anything
    pinning a single path or process: ``memory``, bare ``sqlite``
    (each node gets its own file under ``data_dir``), or
    ``tiered:sqlite?hot_users=N`` / ``tiered:memory?hot_users=N``.
    ``port=0`` binds the coordinator ephemerally — read it back from
    the handle.

    With ``resume=True`` (the default) a ``data_dir`` that already
    holds a ``coordinator-state.json`` restores the persisted topology
    — shard set, ring, epochs, route version and any in-flight
    migration — instead of rebuilding ``n_shards`` fresh shards, so a
    cluster restarted mid-resize finishes the resize.
    """
    from repro.cluster import LocalCluster

    policy_set = _load_policy_set(policy)
    cluster = LocalCluster(
        policy_set,
        n_shards,
        data_dir,
        audit_key=audit_key,
        store=store,
        host=host,
        port=port,
        vnodes=vnodes,
        health_interval=health_interval,
        health_timeout=health_timeout,
        fsync=fsync,
        audit_max_records=audit_max_records,
        audit_max_bytes=audit_max_bytes,
        journal_max=journal_max,
        resume=resume,
    )
    cluster.start()
    return ClusterHandle(cluster)

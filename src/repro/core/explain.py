"""Dry-run explanation of an MSoD decision (the §4.2 algorithm, narrated).

``explain(engine, request)`` walks exactly the evaluation the engine
would perform — policy matching, ``!`` re-binding, the first-step gate,
every MMER/MMEP count — and returns a step-by-step trace *without
mutating the retained ADI*.  Operators use it to answer "why was this
denied?" (or "why would it be granted?") against live history; the
``repro explain`` CLI command exposes it.

The explanation's verdict always equals what :meth:`MSoDEngine.check`
would return on the same store state (property-tested), but unlike
``check`` it is safe to call any number of times.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.constraints import count_history_matches
from repro.core.decision import DecisionRequest, Effect
from repro.core.engine import MODE_LITERAL, MSoDEngine


@dataclass(frozen=True, slots=True)
class TraceLine:
    """One narrated step of the evaluation."""

    step: str  # the §4.2 step number this line belongs to
    message: str

    def __str__(self) -> str:
        return f"[step {self.step}] {self.message}"


@dataclass(slots=True)
class Explanation:
    """The dry-run result: a verdict plus the trace that led to it."""

    effect: str
    request: DecisionRequest
    lines: list[TraceLine] = field(default_factory=list)

    @property
    def granted(self) -> bool:
        return self.effect == Effect.GRANT

    def render(self) -> str:
        header = (
            f"{self.effect.upper()} {self.request.user_id} "
            f"{self.request.operation}@{self.request.target} "
            f"[{self.request.context_instance}]"
        )
        return "\n".join([header] + [f"  {line}" for line in self.lines])


def explain(engine: MSoDEngine, request: DecisionRequest) -> Explanation:
    """Narrate the evaluation of ``request`` against the engine's state."""
    explanation = Explanation(effect=Effect.GRANT, request=request)
    lines = explanation.lines
    store = engine.store

    matched = engine.policy_set.matching(request.context_instance)
    if not matched:
        lines.append(
            TraceLine(
                "1",
                f"context [{request.context_instance}] matches no MSoD "
                "policy; grant unaltered",
            )
        )
        return explanation
    lines.append(
        TraceLine(
            "1",
            f"context [{request.context_instance}] matches "
            f"{len(matched)} policy(ies): "
            + ", ".join(policy.policy_id for policy in matched),
        )
    )

    for policy in matched:
        effective = policy.business_context.instantiate(
            request.context_instance
        )
        lines.append(
            TraceLine(
                "1",
                f"policy {policy.policy_id!r}: effective context "
                f"[{effective}]",
            )
        )
        started = store.has_context(effective)
        if not started:
            first = policy.first_step
            starts_now = first is None or first.matches(
                request.operation, request.target
            )
            if not starts_now:
                lines.append(
                    TraceLine(
                        "4",
                        f"context not started and request is not the first "
                        f"step ({first}); policy imposes nothing",
                    )
                )
                continue
            lines.append(
                TraceLine(
                    "4",
                    "context starts with this request"
                    + (" (no first step declared)" if first is None else ""),
                )
            )
            if engine.mode == MODE_LITERAL:
                lines.append(
                    TraceLine(
                        "4",
                        "literal mode: constraint checks skipped on the "
                        "context-starting request",
                    )
                )
                _explain_step7(policy, request, lines)
                continue

        for mmer in policy.mmers:
            matched_roles = mmer.matched_roles(request.roles)
            if not matched_roles:
                lines.append(
                    TraceLine("5", f"{mmer!r}: no activated role matches")
                )
                continue
            remaining = mmer.remaining_roles(matched_roles)
            historic = store.user_roles(request.user_id, effective)
            count = len(remaining & historic)
            needed = mmer.forbidden_cardinality - len(matched_roles)
            verdict = "ok" if count < needed else "VIOLATION"
            lines.append(
                TraceLine(
                    "5",
                    f"{mmer!r}: nr={len(matched_roles)} matched "
                    f"({', '.join(sorted(map(str, matched_roles)))}); "
                    f"{count} remaining role(s) in user's history; "
                    f"deny when count >= {needed} -> {verdict}",
                )
            )
            if count >= needed:
                explanation.effect = Effect.DENY
                return explanation

        for mmep in policy.mmeps:
            if not mmep.matches(request.privilege):
                lines.append(
                    TraceLine(
                        "6", f"{mmep!r}: requested privilege not in set"
                    )
                )
                continue
            remaining = mmep.remaining_privileges(request.privilege)
            history = store.user_privilege_exercises(
                request.user_id, effective
            )
            count = count_history_matches(remaining, history)
            needed = mmep.forbidden_cardinality - 1
            verdict = "ok" if count < needed else "VIOLATION"
            lines.append(
                TraceLine(
                    "6",
                    f"{mmep!r}: {count} of the remaining privileges found "
                    f"in user's {len(history)} past exercise(s); deny when "
                    f"count >= {needed} -> {verdict}",
                )
            )
            if count >= needed:
                explanation.effect = Effect.DENY
                return explanation

        # Pluggable extension kinds (MMCD, ADMIN_BOUNDARY, ...): narrate
        # through the same verdict interface the engine's generic loop
        # uses, against a read-only view snapshot.
        for constraint in policy.extra_constraints:
            if not constraint.matches_request(request):
                lines.append(
                    TraceLine(
                        "6",
                        f"{constraint!r}: requested privilege not covered "
                        f"by this {constraint.kind} constraint",
                    )
                )
                continue
            verdict = constraint.evaluate(
                request, effective, store.snapshot_views()
            )
            if verdict.ok:
                lines.append(
                    TraceLine(
                        "6", f"{constraint!r}: no conflict in retained ADI"
                    )
                )
            else:
                lines.append(TraceLine("6", f"{constraint!r}: VIOLATION"))
                lines.append(TraceLine("6", verdict.detail))
                explanation.effect = Effect.DENY
                return explanation

        _explain_step7(policy, request, lines)

    return explanation


def _explain_step7(policy, request, lines) -> None:
    last = policy.last_step
    if last is not None and last.matches(request.operation, request.target):
        lines.append(
            TraceLine(
                "7",
                f"request is the last step ({last}): a grant terminates "
                "the context instance and purges its retained history",
            )
        )
    else:
        lines.append(
            TraceLine(
                "7", "a grant would store the pending retained-ADI records"
            )
        )

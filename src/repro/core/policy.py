"""MSoD policy model (paper Section 3 and Appendix A).

An :class:`MSoDPolicy` scopes a set of MMER/MMEP constraints to a business
context, optionally bracketing enforcement between a *first step* and a
*last step* (operations on targets).  An :class:`MSoDPolicySet` is the
ordered collection of policies read by the PDP at initialisation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.core.constraints import (
    MMEP,
    MMER,
    MultiSessionConstraint,
    Privilege,
    Role,
)
from repro.core.context import ContextName
from repro.errors import PolicyError


@dataclass(frozen=True, slots=True)
class Step:
    """A first/last step: an operation on a target URI.

    Matches ``<FirstStep operation=... targetURI=.../>`` (Appendix A).
    """

    operation: str
    target: str

    def __post_init__(self) -> None:
        if not self.operation:
            raise PolicyError("step operation must be non-empty")
        if not self.target:
            raise PolicyError("step target must be non-empty")

    def matches(self, operation: str, target: str) -> bool:
        """True when the requested operation/target is exactly this step."""
        return self.operation == operation and self.target == target

    @property
    def privilege(self) -> Privilege:
        """This step viewed as a privilege (operation on target)."""
        return Privilege(self.operation, self.target)

    def __str__(self) -> str:
        return f"{self.operation}@{self.target}"


class MSoDPolicy:
    """One MSoD policy: a business context plus MMER/MMEP constraints.

    Parameters
    ----------
    business_context:
        The (possibly wildcarded) context the policy applies to.  All
        contexts equal or subordinate to it are in scope (paper
        Section 2.3).
    mmers, mmeps:
        The paper's two constraint families.  At least one constraint
        (of any kind) must be present on the policy.
    constraints:
        Additional constraints of any registered kind (MMCD,
        AdminBoundary, ...).  MMER/MMEP instances passed here are
        folded into the ``mmers``/``mmeps`` families; evaluation order
        is MMERs (step 5), MMEPs (step 6), then extension kinds in
        declaration order.
    first_step:
        Optional: enforcement (and history retention) for a context
        instance starts only when this operation/target is invoked.  When
        absent, enforcement starts with the first in-scope operation.
    last_step:
        Optional: when this operation/target is granted, the context
        instance terminates and its retained history is purged.  When
        absent, termination must be inferred from a containing context or
        performed through the management port (Section 4.3).
    policy_id:
        Optional identifier used in audit records and diagnostics.
    """

    __slots__ = (
        "_business_context",
        "_mmers",
        "_mmeps",
        "_extras",
        "_constraints",
        "_first_step",
        "_last_step",
        "_policy_id",
    )

    def __init__(
        self,
        business_context: ContextName,
        mmers: Iterable[MMER] = (),
        mmeps: Iterable[MMEP] = (),
        first_step: Step | None = None,
        last_step: Step | None = None,
        policy_id: str | None = None,
        constraints: Iterable[MultiSessionConstraint] = (),
    ) -> None:
        if not isinstance(business_context, ContextName):
            raise PolicyError("business_context must be a ContextName")
        mmer_list = list(mmers)
        mmep_list = list(mmeps)
        extra_list: list[MultiSessionConstraint] = []
        for constraint in constraints:
            if isinstance(constraint, MMER):
                mmer_list.append(constraint)
            elif isinstance(constraint, MMEP):
                mmep_list.append(constraint)
            elif isinstance(constraint, MultiSessionConstraint):
                extra_list.append(constraint)
            else:
                raise PolicyError(
                    "policy constraints must be MultiSessionConstraint "
                    f"instances, got {type(constraint).__name__}"
                )
        if not mmer_list and not mmep_list and not extra_list:
            raise PolicyError("an MSoD policy needs at least one MMER or MMEP")
        self._business_context = business_context
        self._mmers = tuple(mmer_list)
        self._mmeps = tuple(mmep_list)
        self._extras = tuple(extra_list)
        # Evaluation order: the published step order (5 then 6), then
        # extension kinds.  The engine's generic loop walks this tuple.
        self._constraints = self._mmers + self._mmeps + self._extras
        self._first_step = first_step
        self._last_step = last_step
        self._policy_id = policy_id or f"msod:{business_context or 'universal'}"

    # ------------------------------------------------------------------
    @property
    def business_context(self) -> ContextName:
        return self._business_context

    @property
    def mmers(self) -> tuple[MMER, ...]:
        return self._mmers

    @property
    def mmeps(self) -> tuple[MMEP, ...]:
        return self._mmeps

    @property
    def extra_constraints(self) -> tuple[MultiSessionConstraint, ...]:
        """Constraints of extension kinds (everything beyond MMER/MMEP)."""
        return self._extras

    @property
    def constraints(self) -> tuple[MultiSessionConstraint, ...]:
        """All constraints in evaluation order: MMERs, MMEPs, extras."""
        return self._constraints

    def constraints_of_kind(
        self, kind: str
    ) -> tuple[MultiSessionConstraint, ...]:
        """The policy's constraints with the given registry kind."""
        return tuple(c for c in self._constraints if c.kind == kind)

    @property
    def first_step(self) -> Step | None:
        return self._first_step

    @property
    def last_step(self) -> Step | None:
        return self._last_step

    @property
    def policy_id(self) -> str:
        return self._policy_id

    # ------------------------------------------------------------------
    def applies_to(self, instance: ContextName) -> bool:
        """Step-1 match: instance equal or subordinate to policy context."""
        return instance.is_equal_or_subordinate_to(self._business_context)

    def constrained_roles(self) -> frozenset[Role]:
        """All roles mentioned by any MMER of this policy."""
        return frozenset(
            role for mmer in self._mmers for role in mmer.roles
        )

    def constrained_privileges(self) -> frozenset[Privilege]:
        """All privileges mentioned by any MMEP of this policy."""
        return frozenset(
            privilege for mmep in self._mmeps for privilege in mmep.privileges
        )

    def __repr__(self) -> str:
        extras = f", extras={len(self._extras)}" if self._extras else ""
        return (
            f"MSoDPolicy({self._policy_id!r}, context={str(self._business_context)!r},"
            f" mmers={len(self._mmers)}, mmeps={len(self._mmeps)}{extras})"
        )


class MSoDPolicySet:
    """The ordered set of MSoD policies enforced by a PDP.

    Policies are indexed by the *leading component type* of their
    business context: an instance ``T=v, ...`` can only match policies
    whose context is empty (the universal context) or starts with type
    ``T``.  Request dispatch therefore consults one precomputed bucket
    instead of scanning the whole set — with many policies over disjoint
    business processes, most are skipped without a single comparison.
    """

    __slots__ = ("_policies", "_root_policies", "_by_leading_type")

    def __init__(self, policies: Iterable[MSoDPolicy] = ()) -> None:
        policy_tuple = tuple(policies)
        ids = [policy.policy_id for policy in policy_tuple]
        if len(set(ids)) != len(ids):
            raise PolicyError("duplicate policy ids in MSoDPolicySet")
        self._policies = policy_tuple
        self._root_policies = tuple(
            policy for policy in policy_tuple if policy.business_context.is_root
        )
        leading_types = {
            policy.business_context[0].ctx_type
            for policy in policy_tuple
            if not policy.business_context.is_root
        }
        # Per leading type: universal-context policies merged back in,
        # preserving the original policy order ("all policies apply and
        # are selected" must report matches in set order).
        self._by_leading_type = {
            ctx_type: tuple(
                policy
                for policy in policy_tuple
                if policy.business_context.is_root
                or policy.business_context[0].ctx_type == ctx_type
            )
            for ctx_type in leading_types
        }

    @property
    def policies(self) -> tuple[MSoDPolicy, ...]:
        return self._policies

    def __iter__(self) -> Iterator[MSoDPolicy]:
        return iter(self._policies)

    def __len__(self) -> int:
        return len(self._policies)

    def _candidates(self, instance: ContextName) -> tuple[MSoDPolicy, ...]:
        """The leading-type bucket that could possibly match ``instance``."""
        if instance.is_root:
            return self._root_policies
        return self._by_leading_type.get(
            instance[0].ctx_type, self._root_policies
        )

    def matching(self, instance: ContextName) -> tuple[MSoDPolicy, ...]:
        """All policies whose context the instance is equal/subordinate to.

        Step 1: "If there are multiple matches then all policies apply and
        are selected."
        """
        return tuple(
            policy
            for policy in self._candidates(instance)
            if policy.applies_to(instance)
        )

    def get(self, policy_id: str) -> MSoDPolicy:
        for policy in self._policies:
            if policy.policy_id == policy_id:
                return policy
        raise PolicyError(f"no policy with id {policy_id!r}")

    def is_relevant(self, instance: ContextName) -> bool:
        """True when some policy applies to the given context instance."""
        return any(
            policy.applies_to(instance)
            for policy in self._candidates(instance)
        )

    def extended(self, policies: Sequence[MSoDPolicy]) -> "MSoDPolicySet":
        """A new policy set with ``policies`` appended."""
        return MSoDPolicySet(self._policies + tuple(policies))

    def __repr__(self) -> str:
        return f"MSoDPolicySet({list(self._policies)!r})"

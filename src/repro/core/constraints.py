"""Multi-session constraint kinds (paper Sections 2.3-2.4 + extensions).

A *multi-session mutually exclusive roles* (MMER) constraint
``MMER({r1..rn}, m, BC)`` forbids a user from activating ``m`` or more of
the ``n`` listed roles within the same business context [instance].

A *multi-session mutually exclusive privileges* (MMEP) constraint
``MMEP({p1..pn}, m, BC)`` forbids a user from exercising ``m`` or more of
the ``n`` listed privileges within the same business context [instance].
The same privilege may be listed several times: listing a privilege ``k``
times with forbidden cardinality ``k`` caps the number of times a single
user may exercise it at ``k - 1`` (paper Section 2.4, the
``MMEP({p1, p1}, 2, ...)`` example).

Beyond the paper's two families, constraints are pluggable: every kind
subclasses :class:`MultiSessionConstraint` and registers itself in
:data:`CONSTRAINT_KINDS`, and the engine runs one generic evaluation
loop instead of switch-casing on MMER/MMEP.  Two extension kinds ship
here:

* :class:`MMCD` — multi-session *combination of duty* (binding-of-duty,
  after Hosseini's combination-of-duty extension for RBAC): once a user
  performs one step of a bound privilege set within a business context
  instance, the remaining steps are reserved for that same user; anyone
  else attempting one is denied.
* :class:`AdminBoundary` — a self-protecting administrative boundary
  (the enforcement-point taxonomy of the finance-prototype RBAC
  design): policy-mutation / data-export privileges are denied to a
  principal whose retained ADI shows operational decisions in the same
  scope, an SoD rule over the policy store itself.

The business context itself lives on the enclosing :class:`~repro.core.
policy.MSoDPolicy`; the constraint classes here carry the role/privilege
sets and the forbidden cardinality, mirroring the XML of Appendix A.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar, Iterable, Sequence

from repro.errors import ConstraintError

if TYPE_CHECKING:  # imported lazily to avoid cycles with decision/store
    from repro.core.context import ContextName
    from repro.core.decision import DecisionRequest
    from repro.core.retained_adi import ADIViewSnapshot


@dataclass(frozen=True, slots=True)
class Role:
    """A role reference: an attribute ``type`` and ``value``.

    Matches the ``<Role type=... value=.../>`` element of the Appendix A
    schema, e.g. ``Role(type='employee', value='Teller')``.
    """

    role_type: str
    value: str

    def __post_init__(self) -> None:
        if not self.role_type:
            raise ConstraintError("role type must be non-empty")
        if not self.value:
            raise ConstraintError("role value must be non-empty")

    def __str__(self) -> str:
        return f"{self.role_type}:{self.value}"


@dataclass(frozen=True, slots=True)
class Privilege:
    """An operation on a target (the paper's operation/object pair).

    Matches the ``<Privilege operation=... target=.../>`` element of the
    Appendix A schema (rendered ``<Operation value=... target=.../>`` in
    the Section 3 examples).
    """

    operation: str
    target: str

    def __post_init__(self) -> None:
        if not self.operation:
            raise ConstraintError("privilege operation must be non-empty")
        if not self.target:
            raise ConstraintError("privilege target must be non-empty")

    def __str__(self) -> str:
        return f"{self.operation}@{self.target}"


def _check_cardinality(size: int, cardinality: int, kind: str) -> None:
    if size < 2:
        raise ConstraintError(f"{kind} needs at least 2 entries, got {size}")
    if not 1 < cardinality <= size:
        raise ConstraintError(
            f"{kind} forbidden cardinality must satisfy 1 < m <= n "
            f"(got m={cardinality}, n={size})"
        )


@dataclass(frozen=True, slots=True)
class ConstraintVerdict:
    """The outcome of evaluating one constraint against one request.

    ``ok=False`` turns the interim grant into a deny with ``detail`` as
    the violation message.  ``ok=True`` lets the request through and
    tells the engine which retained-ADI records to buffer: one
    role-record per entry of ``grant_roles`` (the MMER step 5.iv idiom)
    or one base exercise record when ``grant_exercise`` is set (steps
    6.iv / the extension kinds).  A constraint that does not match the
    request returns the plain OK verdict and records nothing.
    """

    ok: bool
    detail: str = ""
    grant_roles: tuple[Role, ...] = ()
    grant_exercise: bool = False


#: Shared verdicts for the hot path: most constraints either skip the
#: request entirely or grant-and-record one exercise.
CONSTRAINT_OK = ConstraintVerdict(True)
CONSTRAINT_OK_EXERCISE = ConstraintVerdict(True, grant_exercise=True)


class MultiSessionConstraint:
    """Base protocol every multi-session constraint kind implements.

    A kind is a class with a unique ``kind`` string, a request
    pre-filter (:meth:`matches_request`), the step evaluation
    (:meth:`evaluate`) and a digest-stable :meth:`canonical` form.
    Registering the class in :data:`CONSTRAINT_KINDS` (via
    :func:`register_constraint_kind`) lets the XML/DSL layers, the
    verifier and the wire protocol discover it without the engine ever
    switch-casing on concrete families.
    """

    __slots__ = ()

    #: Unique registry key; also the ``constraint_kind`` stamped on
    #: violations and wire decision payloads.
    kind: ClassVar[str] = ""

    def matches_request(self, request: "DecisionRequest") -> bool:
        """True when this constraint could constrain the request."""
        raise NotImplementedError

    def evaluate(
        self,
        request: "DecisionRequest",
        effective_context: "ContextName",
        views: "ADIViewSnapshot",
    ) -> ConstraintVerdict:
        """Evaluate against the user's retained history for the context."""
        raise NotImplementedError

    def canonical(self) -> dict:
        """A JSON-able canonical form (policy-set digest input)."""
        raise NotImplementedError


#: Registry of constraint kinds by their ``kind`` string.
CONSTRAINT_KINDS: dict[str, type[MultiSessionConstraint]] = {}


def register_constraint_kind(
    cls: type[MultiSessionConstraint],
) -> type[MultiSessionConstraint]:
    """Class decorator: register a constraint kind by its ``kind`` key."""
    if not cls.kind:
        raise ConstraintError(
            f"constraint class {cls.__name__} must define a non-empty kind"
        )
    existing = CONSTRAINT_KINDS.get(cls.kind)
    if existing is not None and existing is not cls:
        raise ConstraintError(
            f"constraint kind {cls.kind!r} is already registered "
            f"by {existing.__name__}"
        )
    CONSTRAINT_KINDS[cls.kind] = cls
    return cls


@register_constraint_kind
class MMER(MultiSessionConstraint):
    """Multi-session mutually exclusive roles: m-out-of-n forbidden.

    Roles in an MMER set are distinct (a duplicate role would make the
    constraint unsatisfiable in a useful way — role activation history is
    a set, unlike privilege-exercise history which is a sequence of
    events; the paper's repetition idiom exists only for MMEP).
    """

    __slots__ = ("_roles", "_cardinality")

    kind = "MMER"

    def __init__(self, roles: Iterable[Role], forbidden_cardinality: int) -> None:
        role_tuple = tuple(roles)
        if len(set(role_tuple)) != len(role_tuple):
            raise ConstraintError("MMER role set must not contain duplicates")
        _check_cardinality(len(role_tuple), forbidden_cardinality, "MMER")
        self._roles = role_tuple
        self._cardinality = forbidden_cardinality

    @property
    def roles(self) -> tuple[Role, ...]:
        return self._roles

    @property
    def forbidden_cardinality(self) -> int:
        return self._cardinality

    def matched_roles(self, activated: Iterable[Role]) -> frozenset[Role]:
        """The subset of ``activated`` roles that are in this MMER set.

        Algorithm step 5.i: "Match activated role(s) against MMER
        role(s)."
        """
        member = set(self._roles)
        return frozenset(role for role in activated if role in member)

    def remaining_roles(self, matched: Iterable[Role]) -> frozenset[Role]:
        """MMER roles other than the currently matched ones (step 5.iii)."""
        matched_set = set(matched)
        return frozenset(role for role in self._roles if role not in matched_set)

    def matches_request(self, request: "DecisionRequest") -> bool:
        member = set(self._roles)
        return any(role in member for role in request.roles)

    def evaluate(
        self,
        request: "DecisionRequest",
        effective_context: "ContextName",
        views: "ADIViewSnapshot",
    ) -> ConstraintVerdict:
        # 5.i: match activated role(s) against MMER role(s).
        matched = self.matched_roles(request.roles)
        if not matched:
            # 5.ii: no match, next constraint.
            return CONSTRAINT_OK
        # 5.iii: count remaining MMER roles present in the user's history
        # for this policy context.
        remaining = self.remaining_roles(matched)
        historic = views.user_roles(request.user_id, effective_context)
        count = len(remaining & historic)
        # 5.iv: grant-and-record or deny.
        if count < self._cardinality - len(matched):
            return ConstraintVerdict(
                True, grant_roles=tuple(sorted(matched, key=str))
            )
        return ConstraintVerdict(
            False,
            detail=(
                f"user {request.user_id!r} would hold {count + len(matched)} of "
                f"{len(self._roles)} mutually exclusive roles (forbidden "
                f"cardinality {self._cardinality}) in context "
                f"[{effective_context}]"
            ),
        )

    def canonical(self) -> dict:
        return {
            "kind": self.kind,
            "roles": sorted(str(role) for role in self._roles),
            "m": self._cardinality,
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MMER):
            return NotImplemented
        return (
            set(self._roles) == set(other._roles)
            and self._cardinality == other._cardinality
        )

    def __hash__(self) -> int:
        return hash((frozenset(self._roles), self._cardinality))

    def __repr__(self) -> str:
        roles = ", ".join(str(role) for role in self._roles)
        return f"MMER({{{roles}}}, m={self._cardinality})"


@register_constraint_kind
class MMEP(MultiSessionConstraint):
    """Multi-session mutually exclusive privileges: m-out-of-n forbidden.

    Unlike MMER, the privilege list is a *multiset*: the same privilege
    listed ``k`` times permits at most ``k - 1`` exercises per user per
    business context [instance] when the forbidden cardinality is ``k``.
    """

    __slots__ = ("_privileges", "_cardinality")

    kind = "MMEP"

    def __init__(
        self, privileges: Iterable[Privilege], forbidden_cardinality: int
    ) -> None:
        priv_tuple = tuple(privileges)
        _check_cardinality(len(priv_tuple), forbidden_cardinality, "MMEP")
        self._privileges = priv_tuple
        self._cardinality = forbidden_cardinality

    @property
    def privileges(self) -> tuple[Privilege, ...]:
        return self._privileges

    @property
    def forbidden_cardinality(self) -> int:
        return self._cardinality

    def matches(self, privilege: Privilege) -> bool:
        """True when the requested privilege appears in this MMEP set."""
        return privilege in self._privileges

    def remaining_privileges(self, matched: Privilege) -> Counter:
        """The multiset of privileges minus *one* occurrence of ``matched``.

        Algorithm step 6.iii: "Ignoring current matched operation and
        target in MMEP" — exactly one occurrence is ignored, which is what
        gives the duplicate-privilege idiom its at-most-once semantics.
        """
        remaining = Counter(self._privileges)
        remaining[matched] -= 1
        if remaining[matched] <= 0:
            del remaining[matched]
        return remaining

    def matches_request(self, request: "DecisionRequest") -> bool:
        return request.privilege in self._privileges

    def evaluate(
        self,
        request: "DecisionRequest",
        effective_context: "ContextName",
        views: "ADIViewSnapshot",
    ) -> ConstraintVerdict:
        # 6.i: match requested operation and target against MMEP
        # privilege(s).
        if request.privilege not in self._privileges:
            # 6.ii: no match, next constraint.
            return CONSTRAINT_OK
        # 6.iii: ignoring one occurrence of the matched privilege, count
        # remaining MMEP entries matching the user's exercise history.
        remaining = self.remaining_privileges(request.privilege)
        history = views.user_privilege_exercise_counts(
            request.user_id, effective_context
        )
        count = count_history_matches(remaining, history)
        if count < self._cardinality - 1:
            return CONSTRAINT_OK_EXERCISE
        return ConstraintVerdict(
            False,
            detail=(
                f"user {request.user_id!r} would exercise {count + 1} of "
                f"{len(self._privileges)} mutually exclusive privileges "
                f"(forbidden cardinality {self._cardinality}) in "
                f"context [{effective_context}]"
            ),
        )

    def canonical(self) -> dict:
        return {
            "kind": self.kind,
            "privileges": sorted(str(priv) for priv in self._privileges),
            "m": self._cardinality,
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MMEP):
            return NotImplemented
        return (
            Counter(self._privileges) == Counter(other._privileges)
            and self._cardinality == other._cardinality
        )

    def __hash__(self) -> int:
        return hash((frozenset(Counter(self._privileges).items()), self._cardinality))

    def __repr__(self) -> str:
        privs = ", ".join(str(priv) for priv in self._privileges)
        return f"MMEP({{{privs}}}, m={self._cardinality})"


def count_history_matches(
    remaining: Counter, history: Sequence[Privilege] | Counter
) -> int:
    """Pair remaining MMEP entries with distinct historical exercises.

    Each entry of the ``remaining`` multiset is matched against a distinct
    record from ``history`` (step 6.iii "count number of remaining
    operation and targets in the MMEP that match an operation and target
    from retained ADI").  A privilege listed twice in ``remaining`` needs
    two historical records to contribute a count of two; conversely many
    historical records for a privilege listed once contribute one.

    ``history`` may be given pre-aggregated as a :class:`Counter` (the
    engine memoizes one per user/context and request).
    """
    history_counts = (
        history if isinstance(history, Counter) else Counter(history)
    )
    return sum(
        min(multiplicity, history_counts[privilege])
        for privilege, multiplicity in remaining.items()
    )


@register_constraint_kind
class MMCD(MultiSessionConstraint):
    """Multi-session combination of duty: bound steps bind to one user.

    The dual of MMEP (binding-of-duty): ``MMCD({p1..pn}, BC)`` requires
    that every exercised step of the bound privilege set within one
    business context [instance] is performed by the *same* user.  The
    first user to perform any bound step becomes the owner of the set
    for that instance; a different user attempting a bound step is
    denied.  Real scenario: the auditor who reviews Q1 of a filing must
    review Q2-Q4 of the same filing too.

    Bound privileges are distinct (repetition carries no meaning here —
    ownership, not cardinality, is what is enforced) and there is no
    forbidden cardinality: the bound set binds as a whole.
    """

    __slots__ = ("_privileges",)

    kind = "MMCD"

    def __init__(self, privileges: Iterable[Privilege]) -> None:
        priv_tuple = tuple(privileges)
        if len(set(priv_tuple)) != len(priv_tuple):
            raise ConstraintError("MMCD bound set must not contain duplicates")
        if len(priv_tuple) < 2:
            raise ConstraintError(
                f"MMCD needs at least 2 bound privileges, got {len(priv_tuple)}"
            )
        self._privileges = priv_tuple

    @property
    def privileges(self) -> tuple[Privilege, ...]:
        return self._privileges

    def matches_request(self, request: "DecisionRequest") -> bool:
        return request.privilege in self._privileges

    def evaluate(
        self,
        request: "DecisionRequest",
        effective_context: "ContextName",
        views: "ADIViewSnapshot",
    ) -> ConstraintVerdict:
        if request.privilege not in self._privileges:
            return CONSTRAINT_OK
        owners = views.users_with_privileges(
            self._privileges, effective_context
        )
        others = [owner for owner in owners if owner != request.user_id]
        if not others:
            return CONSTRAINT_OK_EXERCISE
        return ConstraintVerdict(
            False,
            detail=(
                f"user {request.user_id!r} attempted bound duty step "
                f"{request.privilege} in context [{effective_context}], but "
                f"the combination-of-duty set is already bound to user(s) "
                f"{', '.join(repr(owner) for owner in sorted(others))}"
            ),
        )

    def canonical(self) -> dict:
        return {
            "kind": self.kind,
            "privileges": sorted(str(priv) for priv in self._privileges),
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MMCD):
            return NotImplemented
        return set(self._privileges) == set(other._privileges)

    def __hash__(self) -> int:
        return hash(frozenset(self._privileges))

    def __repr__(self) -> str:
        privs = ", ".join(str(priv) for priv in self._privileges)
        return f"MMCD({{{privs}}})"


#: Canonical target URI for the PDP's own policy store — the resource
#: guarded by self-protecting admin boundaries (mirrors the Section 4.3
#: management port's ``pdp://management/retainedADI``).
POLICY_STORE_TARGET = "pdp://management/policyStore"

#: The two administrative privileges over the policy store.
POLICY_RELOAD_PRIVILEGE = Privilege("policy-reload", POLICY_STORE_TARGET)
POLICY_EXPORT_PRIVILEGE = Privilege("policy-export", POLICY_STORE_TARGET)


@register_constraint_kind
class AdminBoundary(MultiSessionConstraint):
    """A self-protecting administrative boundary over privileged targets.

    ``AdminBoundary(label, {a1..an})`` guards the listed administrative
    privileges (policy mutation, data export) with a separation-of-duty
    rule over the PDP's own state: a principal whose retained ADI shows
    *operational* (non-administrative) decisions within the policy's
    business context may not exercise a guarded privilege.  Concretely:
    ``policy reload`` is denied to a principal who decided under the
    outgoing policy epoch — the one whose history is still retained.
    """

    __slots__ = ("_boundary", "_privileges", "_admin_set")

    kind = "ADMIN_BOUNDARY"

    def __init__(self, boundary: str, privileges: Iterable[Privilege]) -> None:
        if not boundary:
            raise ConstraintError("admin boundary label must be non-empty")
        priv_tuple = tuple(privileges)
        if not priv_tuple:
            raise ConstraintError(
                "admin boundary needs at least 1 guarded privilege"
            )
        if len(set(priv_tuple)) != len(priv_tuple):
            raise ConstraintError(
                "admin boundary guarded set must not contain duplicates"
            )
        self._boundary = boundary
        self._privileges = priv_tuple
        self._admin_set = frozenset(priv_tuple)

    @property
    def boundary(self) -> str:
        return self._boundary

    @property
    def privileges(self) -> tuple[Privilege, ...]:
        return self._privileges

    def matches_request(self, request: "DecisionRequest") -> bool:
        return request.privilege in self._admin_set

    def evaluate(
        self,
        request: "DecisionRequest",
        effective_context: "ContextName",
        views: "ADIViewSnapshot",
    ) -> ConstraintVerdict:
        if request.privilege not in self._admin_set:
            return CONSTRAINT_OK
        history = views.user_privilege_exercise_counts(
            request.user_id, effective_context
        )
        operational = [
            privilege
            for privilege in history
            if privilege not in self._admin_set
        ]
        if not operational:
            return CONSTRAINT_OK_EXERCISE
        return ConstraintVerdict(
            False,
            detail=(
                f"user {request.user_id!r} crosses admin boundary "
                f"{self._boundary!r}: {len(operational)} operational "
                f"privilege(s) retained in context [{effective_context}] "
                f"(e.g. {sorted(str(p) for p in operational)[0]}) forbid "
                f"{request.privilege}"
            ),
        )

    def canonical(self) -> dict:
        return {
            "kind": self.kind,
            "boundary": self._boundary,
            "privileges": sorted(str(priv) for priv in self._privileges),
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AdminBoundary):
            return NotImplemented
        return (
            self._boundary == other._boundary
            and set(self._privileges) == set(other._privileges)
        )

    def __hash__(self) -> int:
        return hash((self._boundary, frozenset(self._privileges)))

    def __repr__(self) -> str:
        privs = ", ".join(str(priv) for priv in self._privileges)
        return f"AdminBoundary({self._boundary!r}, {{{privs}}})"


def policy_store_boundary() -> AdminBoundary:
    """The standard boundary guarding the PDP's own policy store."""
    return AdminBoundary(
        "policy-store", (POLICY_RELOAD_PRIVILEGE, POLICY_EXPORT_PRIVILEGE)
    )

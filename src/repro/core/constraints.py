"""MMER and MMEP constraints (paper Sections 2.3 and 2.4).

A *multi-session mutually exclusive roles* (MMER) constraint
``MMER({r1..rn}, m, BC)`` forbids a user from activating ``m`` or more of
the ``n`` listed roles within the same business context [instance].

A *multi-session mutually exclusive privileges* (MMEP) constraint
``MMEP({p1..pn}, m, BC)`` forbids a user from exercising ``m`` or more of
the ``n`` listed privileges within the same business context [instance].
The same privilege may be listed several times: listing a privilege ``k``
times with forbidden cardinality ``k`` caps the number of times a single
user may exercise it at ``k - 1`` (paper Section 2.4, the
``MMEP({p1, p1}, 2, ...)`` example).

The business context itself lives on the enclosing :class:`~repro.core.
policy.MSoDPolicy`; the constraint classes here carry the role/privilege
sets and the forbidden cardinality, mirroring the XML of Appendix A.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import ConstraintError


@dataclass(frozen=True, slots=True)
class Role:
    """A role reference: an attribute ``type`` and ``value``.

    Matches the ``<Role type=... value=.../>`` element of the Appendix A
    schema, e.g. ``Role(type='employee', value='Teller')``.
    """

    role_type: str
    value: str

    def __post_init__(self) -> None:
        if not self.role_type:
            raise ConstraintError("role type must be non-empty")
        if not self.value:
            raise ConstraintError("role value must be non-empty")

    def __str__(self) -> str:
        return f"{self.role_type}:{self.value}"


@dataclass(frozen=True, slots=True)
class Privilege:
    """An operation on a target (the paper's operation/object pair).

    Matches the ``<Privilege operation=... target=.../>`` element of the
    Appendix A schema (rendered ``<Operation value=... target=.../>`` in
    the Section 3 examples).
    """

    operation: str
    target: str

    def __post_init__(self) -> None:
        if not self.operation:
            raise ConstraintError("privilege operation must be non-empty")
        if not self.target:
            raise ConstraintError("privilege target must be non-empty")

    def __str__(self) -> str:
        return f"{self.operation}@{self.target}"


def _check_cardinality(size: int, cardinality: int, kind: str) -> None:
    if size < 2:
        raise ConstraintError(f"{kind} needs at least 2 entries, got {size}")
    if not 1 < cardinality <= size:
        raise ConstraintError(
            f"{kind} forbidden cardinality must satisfy 1 < m <= n "
            f"(got m={cardinality}, n={size})"
        )


class MMER:
    """Multi-session mutually exclusive roles: m-out-of-n forbidden.

    Roles in an MMER set are distinct (a duplicate role would make the
    constraint unsatisfiable in a useful way — role activation history is
    a set, unlike privilege-exercise history which is a sequence of
    events; the paper's repetition idiom exists only for MMEP).
    """

    __slots__ = ("_roles", "_cardinality")

    def __init__(self, roles: Iterable[Role], forbidden_cardinality: int) -> None:
        role_tuple = tuple(roles)
        if len(set(role_tuple)) != len(role_tuple):
            raise ConstraintError("MMER role set must not contain duplicates")
        _check_cardinality(len(role_tuple), forbidden_cardinality, "MMER")
        self._roles = role_tuple
        self._cardinality = forbidden_cardinality

    @property
    def roles(self) -> tuple[Role, ...]:
        return self._roles

    @property
    def forbidden_cardinality(self) -> int:
        return self._cardinality

    def matched_roles(self, activated: Iterable[Role]) -> frozenset[Role]:
        """The subset of ``activated`` roles that are in this MMER set.

        Algorithm step 5.i: "Match activated role(s) against MMER
        role(s)."
        """
        member = set(self._roles)
        return frozenset(role for role in activated if role in member)

    def remaining_roles(self, matched: Iterable[Role]) -> frozenset[Role]:
        """MMER roles other than the currently matched ones (step 5.iii)."""
        matched_set = set(matched)
        return frozenset(role for role in self._roles if role not in matched_set)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MMER):
            return NotImplemented
        return (
            set(self._roles) == set(other._roles)
            and self._cardinality == other._cardinality
        )

    def __hash__(self) -> int:
        return hash((frozenset(self._roles), self._cardinality))

    def __repr__(self) -> str:
        roles = ", ".join(str(role) for role in self._roles)
        return f"MMER({{{roles}}}, m={self._cardinality})"


class MMEP:
    """Multi-session mutually exclusive privileges: m-out-of-n forbidden.

    Unlike MMER, the privilege list is a *multiset*: the same privilege
    listed ``k`` times permits at most ``k - 1`` exercises per user per
    business context [instance] when the forbidden cardinality is ``k``.
    """

    __slots__ = ("_privileges", "_cardinality")

    def __init__(
        self, privileges: Iterable[Privilege], forbidden_cardinality: int
    ) -> None:
        priv_tuple = tuple(privileges)
        _check_cardinality(len(priv_tuple), forbidden_cardinality, "MMEP")
        self._privileges = priv_tuple
        self._cardinality = forbidden_cardinality

    @property
    def privileges(self) -> tuple[Privilege, ...]:
        return self._privileges

    @property
    def forbidden_cardinality(self) -> int:
        return self._cardinality

    def matches(self, privilege: Privilege) -> bool:
        """True when the requested privilege appears in this MMEP set."""
        return privilege in self._privileges

    def remaining_privileges(self, matched: Privilege) -> Counter:
        """The multiset of privileges minus *one* occurrence of ``matched``.

        Algorithm step 6.iii: "Ignoring current matched operation and
        target in MMEP" — exactly one occurrence is ignored, which is what
        gives the duplicate-privilege idiom its at-most-once semantics.
        """
        remaining = Counter(self._privileges)
        remaining[matched] -= 1
        if remaining[matched] <= 0:
            del remaining[matched]
        return remaining

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MMEP):
            return NotImplemented
        return (
            Counter(self._privileges) == Counter(other._privileges)
            and self._cardinality == other._cardinality
        )

    def __hash__(self) -> int:
        return hash((frozenset(Counter(self._privileges).items()), self._cardinality))

    def __repr__(self) -> str:
        privs = ", ".join(str(priv) for priv in self._privileges)
        return f"MMEP({{{privs}}}, m={self._cardinality})"


def count_history_matches(
    remaining: Counter, history: Sequence[Privilege] | Counter
) -> int:
    """Pair remaining MMEP entries with distinct historical exercises.

    Each entry of the ``remaining`` multiset is matched against a distinct
    record from ``history`` (step 6.iii "count number of remaining
    operation and targets in the MMEP that match an operation and target
    from retained ADI").  A privilege listed twice in ``remaining`` needs
    two historical records to contribute a count of two; conversely many
    historical records for a privilege listed once contribute one.

    ``history`` may be given pre-aggregated as a :class:`Counter` (the
    engine memoizes one per user/context and request).
    """
    history_counts = (
        history if isinstance(history, Counter) else Counter(history)
    )
    return sum(
        min(multiplicity, history_counts[privilege])
        for privilege, multiplicity in remaining.items()
    )

"""Hierarchically named business contexts (paper Section 2.2, Figure 2).

The scope of an MSoD policy is a *business context*: a node in a hierarchy
of business processes, named by an ordered sequence of ``type=value``
components.  The universal context (the whole organisation or VO) is the
root of the hierarchy and has the empty name.  A context is *subordinate*
to another when the latter's name is a proper prefix of the former's.

Policies name contexts with two wildcard values:

``*``
    matches every instance of the component and *aggregates* history across
    all of them — SSD semantics across all business-context instances.

``!``
    matches every instance of the component but is re-bound to the concrete
    instance value of each request before history is consulted — DSD
    semantics per business-context instance.

Concrete request contexts (the ``BusinessContext instance`` parameter
passed from the PEP to the PDP) never contain wildcards.

Example (paper Figure 2)::

    >>> policy = ContextName.parse("Branch=*, Period=!")
    >>> instance = ContextName.parse("Branch=York, Period=2006")
    >>> instance.is_equal_or_subordinate_to(policy)
    True
    >>> policy.instantiate(instance)
    ContextName.parse('Branch=*, Period=2006')
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable, Iterator, Sequence

from repro.errors import ContextNameError

#: Wildcard matching all instance values, aggregating history across them.
ALL_INSTANCES = "*"

#: Wildcard matching all instance values, scoping history per instance.
PER_INSTANCE = "!"

_WILDCARDS = frozenset({ALL_INSTANCES, PER_INSTANCE})

# ``type`` and concrete ``value`` tokens: anything except the separators
# and the two wildcard characters.  Whitespace around tokens is ignored.
_TOKEN = re.compile(r"^[^=,\s*!][^=,]*$")


@dataclass(frozen=True, slots=True)
class ContextComponent:
    """One ``type=value`` pair of a hierarchical context name."""

    ctx_type: str
    value: str

    def __post_init__(self) -> None:
        if not _TOKEN.match(self.ctx_type):
            raise ContextNameError(f"invalid context type: {self.ctx_type!r}")
        if self.value not in _WILDCARDS and not _TOKEN.match(self.value):
            raise ContextNameError(f"invalid context value: {self.value!r}")

    @property
    def is_wildcard(self) -> bool:
        """True when the value is ``*`` or ``!``."""
        return self.value in _WILDCARDS

    @property
    def is_per_instance(self) -> bool:
        """True when the value is the per-instance wildcard ``!``."""
        return self.value == PER_INSTANCE

    @property
    def is_all_instances(self) -> bool:
        """True when the value is the all-instances wildcard ``*``."""
        return self.value == ALL_INSTANCES

    def covers(self, other: "ContextComponent") -> bool:
        """True when this (possibly wildcard) component matches ``other``.

        Types must be identical; a wildcard value matches any value, and
        a concrete value matches only itself.
        """
        if self.ctx_type != other.ctx_type:
            return False
        if self.is_wildcard:
            return True
        return self.value == other.value

    def __str__(self) -> str:
        return f"{self.ctx_type}={self.value}"


class _CompiledMatcher:
    """A precompiled ``is_equal_or_subordinate_to`` check for one policy name.

    Hot policy contexts are matched against millions of candidate names;
    the per-component Python loop of the naive rule dominates.  Compiling
    the policy name once reduces matching to tuple-slice comparisons
    (C-level) plus, when the policy mixes wildcard and concrete values,
    a short loop over only the concrete positions.
    """

    __slots__ = ("_length", "_types", "_concrete", "_concrete_prefix", "_single")

    def __init__(self, policy: "ContextName") -> None:
        comps = policy.components
        self._length = len(comps)
        self._types = tuple(comp.ctx_type for comp in comps)
        self._concrete = tuple(
            (index, comp.value)
            for index, comp in enumerate(comps)
            if not comp.is_wildcard
        )
        # A fully concrete policy prefix matches by one tuple comparison.
        self._concrete_prefix = (
            comps if len(self._concrete) == len(comps) else None
        )
        # The overwhelmingly common wildcard mix has exactly one concrete
        # component; checking it directly skips a generator frame.
        self._single = (
            self._concrete[0]
            if self._concrete_prefix is None and len(self._concrete) == 1
            else None
        )

    def matches(self, candidate: "ContextName") -> bool:
        """Equivalent to ``candidate.is_equal_or_subordinate_to(policy)``."""
        comps = candidate._components
        length = self._length
        if len(comps) < length:
            return False
        prefix = self._concrete_prefix
        if prefix is not None:
            return comps[:length] == prefix
        types = candidate._types
        if types is None:
            types = candidate._types = tuple(
                comp.ctx_type for comp in comps
            )
        if types[:length] != self._types:
            return False
        single = self._single
        if single is not None:
            return comps[single[0]].value == single[1]
        return all(comps[index].value == value for index, value in self._concrete)


@lru_cache(maxsize=8192)
def _parse_interned(text: str) -> "ContextName":
    """Parse and intern a context name (LRU-cached on the stripped text).

    Request streams repeat a small set of context-instance strings, and
    the SQLite store re-parses the ``context`` column of candidate rows;
    interning makes repeats a dict hit and lets equal names share their
    memoized hash/str/matcher state.
    """
    components = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            raise ContextNameError(f"empty component in context name {text!r}")
        ctx_type, sep, value = part.partition("=")
        if not sep:
            raise ContextNameError(
                f"component {part!r} is not of the form type=value"
            )
        components.append(ContextComponent(ctx_type.strip(), value.strip()))
    return ContextName(components)


class ContextName:
    """An immutable hierarchical business-context name.

    A name is an ordered tuple of :class:`ContextComponent`.  The empty
    name is the universal context (the root of the hierarchy, paper
    Section 2.2: "the universal context ... its name is null").

    Hash, string form, the component-type tuple and the compiled matcher
    are computed once and memoized — names are immutable, and all four
    sit on the per-decision hot path.
    """

    __slots__ = ("_components", "_hash", "_str", "_types", "_matcher")

    def __init__(self, components: Iterable[ContextComponent] = ()) -> None:
        comps = tuple(components)
        seen_types = set()
        for comp in comps:
            if not isinstance(comp, ContextComponent):
                raise ContextNameError(
                    f"expected ContextComponent, got {type(comp).__name__}"
                )
            if comp.ctx_type in seen_types:
                raise ContextNameError(
                    f"duplicate context type in name: {comp.ctx_type!r}"
                )
            seen_types.add(comp.ctx_type)
        self._components = comps
        self._hash = None
        self._str = None
        self._types = None
        self._matcher = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "ContextName":
        """Parse ``"type=value, type=value"`` notation used by the paper.

        The empty string (or only whitespace) denotes the universal
        context.  Raises :class:`ContextNameError` on malformed input.
        Parsed names are interned through an LRU cache, so repeated
        parses of the same text return the same object.
        """
        if text is None:
            raise ContextNameError("context name must not be None")
        text = text.strip()
        if cls is not ContextName:  # subclasses bypass the intern cache
            if not text:
                return cls()
            return cls(_parse_interned(text).components)
        if not text:
            return _ROOT
        return _parse_interned(text)

    @classmethod
    def root(cls) -> "ContextName":
        """The universal context (empty name)."""
        return cls()

    def child(self, ctx_type: str, value: str) -> "ContextName":
        """Return a new name extending this one by one component."""
        return ContextName(self._components + (ContextComponent(ctx_type, value),))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def components(self) -> tuple[ContextComponent, ...]:
        return self._components

    @property
    def component_types(self) -> tuple[str, ...]:
        """The ordered component types (memoized; used by matchers)."""
        types = self._types
        if types is None:
            types = self._types = tuple(
                comp.ctx_type for comp in self._components
            )
        return types

    @property
    def matcher(self) -> _CompiledMatcher:
        """A compiled subordinate-or-equal matcher for this (policy) name.

        ``policy.matcher.matches(instance)`` is equivalent to
        ``instance.is_equal_or_subordinate_to(policy)`` but avoids the
        per-component Python loop on every call.
        """
        matcher = self._matcher
        if matcher is None:
            matcher = self._matcher = _CompiledMatcher(self)
        return matcher

    @property
    def is_root(self) -> bool:
        """True for the universal context."""
        return not self._components

    @property
    def has_wildcards(self) -> bool:
        """True when any component value is ``*`` or ``!``."""
        return any(comp.is_wildcard for comp in self._components)

    @property
    def is_concrete(self) -> bool:
        """True when no component is a wildcard (a context *instance*)."""
        return not self.has_wildcards

    @property
    def parent(self) -> "ContextName":
        """The immediately superior context (root's parent is root)."""
        if self.is_root:
            return self
        return ContextName(self._components[:-1])

    def ancestors(self) -> Iterator["ContextName"]:
        """Yield every proper ancestor, nearest first, ending at the root."""
        for length in range(len(self._components) - 1, -1, -1):
            yield ContextName(self._components[:length])

    def __len__(self) -> int:
        return len(self._components)

    def __iter__(self) -> Iterator[ContextComponent]:
        return iter(self._components)

    def __getitem__(self, index: int) -> ContextComponent:
        return self._components[index]

    # ------------------------------------------------------------------
    # The matching rules of paper Section 4.2
    # ------------------------------------------------------------------
    def is_equal_or_subordinate_to(self, policy: "ContextName") -> bool:
        """Step-1/step-3 matching rule.

        ``self`` (a context instance, or an instantiated policy context)
        matches ``policy`` when every component of ``policy`` covers the
        corresponding component of ``self`` — i.e. ``policy`` is a
        (wildcard-aware) prefix of ``self``.  Every name matches the
        universal context.
        """
        return policy.matcher.matches(self)

    def is_strictly_subordinate_to(self, policy: "ContextName") -> bool:
        """Like :meth:`is_equal_or_subordinate_to` but excluding equal length."""
        return len(self) > len(policy) and self.is_equal_or_subordinate_to(policy)

    def instantiate(self, instance: "ContextName") -> "ContextName":
        """Re-bind ``!`` components to the concrete values of ``instance``.

        Implements the tail of algorithm step 1: "If a matched policy
        pertains to a single business context instance (!), replace policy
        business context with the instance of the input business context."
        ``*`` components are preserved (they keep aggregating across
        instances).  ``instance`` must match this policy context.
        """
        if not self.matcher.matches(instance):
            raise ContextNameError(
                f"instance {instance} does not match policy context {self}"
            )
        if not any(comp.is_per_instance for comp in self._components):
            return self  # nothing to re-bind; '*' components stay as-is
        return _instantiate_interned(self, instance)

    # ------------------------------------------------------------------
    # Value semantics
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ContextName):
            return NotImplemented
        return self._components == other._components

    def __hash__(self) -> int:
        value = self._hash
        if value is None:
            value = self._hash = hash(self._components)
        return value

    def __str__(self) -> str:
        text = self._str
        if text is None:
            text = self._str = ", ".join(
                f"{comp.ctx_type}={comp.value}" for comp in self._components
            )
        return text

    def __repr__(self) -> str:
        return f"ContextName.parse({str(self)!r})"


#: The interned universal context returned by ``parse("")`` / ``root()``.
_ROOT = ContextName()


@lru_cache(maxsize=8192)
def _instantiate_interned(
    policy: ContextName, instance: ContextName
) -> ContextName:
    """Re-bind ``!`` components, memoized on the (policy, instance) pair.

    Request streams revisit a small set of context instances per policy,
    so the effective-context computation repeats verbatim; both inputs
    are immutable with memoized hashes, making the cache key cheap.
    """
    bound = []
    for pol_comp, inst_comp in zip(policy.components, instance.components):
        if pol_comp.is_per_instance:
            bound.append(inst_comp)
        else:
            bound.append(pol_comp)
    return ContextName(bound)


def common_supercontext(names: Sequence[ContextName]) -> ContextName:
    """Return the deepest context superior-or-equal to every name given.

    Paper Section 2.2: "there is always a super-context that joins them
    together ... since all business contexts for an organization (or VO)
    are always part of the same universal hierarchy."  With no names this
    is the universal context.
    """
    if not names:
        return ContextName.root()
    prefix = list(names[0].components)
    for name in names[1:]:
        limit = 0
        for ours, theirs in zip(prefix, name.components):
            if ours != theirs:
                break
            limit += 1
        del prefix[limit:]
        if not prefix:
            break
    return ContextName(prefix)


class ContextHierarchy:
    """An explicit registry of business-context instances.

    The paper keeps the hierarchy in "the application schema" — the access
    control system itself only needs name matching.  This class models
    that application-side schema: it lets applications (and the examples
    and workload generators in this repository) create, enumerate and
    terminate context instances, and infer activity of a context from the
    activity of contained contexts (paper Section 2.2, last paragraph).
    """

    def __init__(self) -> None:
        self._active: set[ContextName] = set()

    @property
    def active_instances(self) -> frozenset[ContextName]:
        return frozenset(self._active)

    def start(self, instance: ContextName) -> None:
        """Mark a concrete context instance as active."""
        if not instance.is_concrete:
            raise ContextNameError(f"cannot start non-concrete context {instance}")
        self._active.add(instance)

    def finish(self, instance: ContextName) -> frozenset[ContextName]:
        """Terminate an instance and everything subordinate to it.

        Returns the set of instances that were terminated.  Termination of
        a containing context implies termination of all contained ones
        (paper Section 3: "all the contained ones must also be
        terminated").
        """
        terminated = {
            active
            for active in self._active
            if active.is_equal_or_subordinate_to(instance)
        }
        self._active -= terminated
        return frozenset(terminated)

    def is_active(self, instance: ContextName) -> bool:
        """True when the instance, or any contained instance, is active.

        A containing context can be inferred to have started "because a
        contained business context has started" (paper Section 2.2).
        """
        if instance in self._active:
            return True
        return any(
            active.is_strictly_subordinate_to(instance) for active in self._active
        )

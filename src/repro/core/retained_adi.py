"""Retained Access-control Decision Information (paper Sections 4.1-4.3).

The retained ADI is the history of *granted* decisions that the PDP needs
in order to evaluate MSoD policies.  Each record is the 6-tuple of
Section 4.2: user ID, activated role(s), operation granted, target
accessed, business-context instance, and time of the grant decision.  Two
bookkeeping fields are added: a store-assigned ``record_id`` and the
``request_id`` of the decision request that produced the record (step 5.iv
adds one record per matched role for a single request; grouping by
``request_id`` lets privilege-exercise counting treat them as one event).

Two store backends are provided:

* :class:`InMemoryRetainedADIStore` — what the paper's first PERMIS
  implementation used (Section 5.2, rebuilt from audit trails at start-up).
* :class:`SQLiteRetainedADIStore` — the "secure relational database" the
  paper proposes as its next implementation (Section 6), which avoids the
  audit-trail replay cost measured in ``benchmarks/bench_recovery_
  scalability.py``.

Both honour the same :class:`RetainedADIStore` interface so the engine and
benchmarks can ablate them.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.core.constraints import Privilege, Role
from repro.core.context import ContextName
from repro.errors import StoreError


@dataclass(frozen=True, slots=True)
class RetainedADIRecord:
    """One granted decision retained for MSoD evaluation."""

    user_id: str
    roles: tuple[Role, ...]
    operation: str
    target: str
    context_instance: ContextName
    granted_at: float
    request_id: str
    record_id: int | None = None

    @property
    def privilege(self) -> Privilege:
        return Privilege(self.operation, self.target)

    def in_context(self, effective_context: ContextName) -> bool:
        """True when this record's instance matches the policy context.

        Step 3: "Retained ADI context instance matches if it is equal or
        subordinate to policy context, noting that policy context of *
        matches all instance values."
        """
        return self.context_instance.is_equal_or_subordinate_to(effective_context)

    def to_dict(self) -> dict:
        """JSON-compatible representation (for audit trails and SQLite)."""
        return {
            "user_id": self.user_id,
            "roles": [[role.role_type, role.value] for role in self.roles],
            "operation": self.operation,
            "target": self.target,
            "context_instance": str(self.context_instance),
            "granted_at": self.granted_at,
            "request_id": self.request_id,
        }

    @classmethod
    def from_dict(cls, data: dict, record_id: int | None = None) -> "RetainedADIRecord":
        return cls(
            user_id=data["user_id"],
            roles=tuple(Role(rt, rv) for rt, rv in data["roles"]),
            operation=data["operation"],
            target=data["target"],
            context_instance=ContextName.parse(data["context_instance"]),
            granted_at=data["granted_at"],
            request_id=data["request_id"],
            record_id=record_id,
        )


@dataclass(slots=True)
class ADIApplyOutcome:
    """What one applied :class:`ADIMutation` actually did to a store.

    ``purged`` keeps each backend's historical counting semantics (the
    per-context sums the engine reports as ``records_purged``);
    ``purged_records`` is deduplicated by ``record_id`` so layered
    stores (the tiered hot/warm split) can retire each deleted record
    from their aggregates exactly once, and ``added`` carries the
    stored records with their warm-layer-assigned ids.
    """

    purged: int
    purged_records: list[RetainedADIRecord]
    added: list[RetainedADIRecord]


@dataclass(slots=True)
class ADIMutation:
    """A buffered set of store mutations, committed only on grant.

    Section 4.2 note: "if the access request is denied, then no change
    needs to be made to the retained ADI database".  The engine builds one
    :class:`ADIMutation` per request and applies it atomically iff the
    final decision is a grant.
    """

    adds: list[RetainedADIRecord] = field(default_factory=list)
    purge_contexts: list[ContextName] = field(default_factory=list)

    @property
    def is_empty(self) -> bool:
        return not self.adds and not self.purge_contexts


class _ContextBucket:
    """Incremental aggregates for one ``(user, concrete-context)`` pair.

    The engine's hot queries — which roles has this user activated, and
    which privileges has it exercised, within an effective policy context
    — are answered from aggregates maintained on ``add``/``remove``
    instead of rebuilt by scanning records:

    * ``role_counts`` — multiset of activated roles (counts support
      exact deletion on purge).
    * ``exercises`` — per ``request_id``, the ``(record_id, privilege)``
      of the *earliest* record of that request: step 5.iv stores one
      record per matched role, but they count as a single privilege
      exercise.
    """

    __slots__ = ("records", "role_counts", "req_privileges", "exercises")

    def __init__(self) -> None:
        self.records: dict[int, RetainedADIRecord] = {}
        self.role_counts: Counter = Counter()
        self.req_privileges: dict[str, dict[int, Privilege]] = {}
        self.exercises: dict[str, tuple[int, Privilege]] = {}

    def add(self, record: RetainedADIRecord) -> None:
        record_id = record.record_id
        privilege = record.privilege
        self.records[record_id] = record
        self.role_counts.update(record.roles)
        per_request = self.req_privileges.setdefault(record.request_id, {})
        per_request[record_id] = privilege
        first = self.exercises.get(record.request_id)
        if first is None or record_id < first[0]:
            self.exercises[record.request_id] = (record_id, privilege)

    def remove(self, record: RetainedADIRecord) -> None:
        record_id = record.record_id
        del self.records[record_id]
        counts = self.role_counts
        for role in record.roles:
            left = counts[role] - 1
            if left:
                counts[role] = left
            else:
                del counts[role]
        per_request = self.req_privileges[record.request_id]
        del per_request[record_id]
        if not per_request:
            del self.req_privileges[record.request_id]
            del self.exercises[record.request_id]
        elif self.exercises[record.request_id][0] == record_id:
            first_id = min(per_request)
            self.exercises[record.request_id] = (first_id, per_request[first_id])


class _UserContextIndex:
    """Records bucketed by ``(user, concrete context instance)``.

    The number of distinct concrete instances (and of instances any one
    user has touched) is tiny compared to the record count, so
    context-scoped queries walk a handful of buckets — each answering
    from its incremental aggregates — instead of scanning every record.

    Both store backends share this structure: the in-memory store uses
    it as its primary index, the SQLite store as a lazily built cache
    kept in lock-step with the table.

    Two query memos amortise context matching *across* requests (the
    per-request :class:`ADIViewSnapshot` only dedupes within one):

    * ``_presence`` — effective context → "any matching bucket exists".
      Adding a new concrete context can only flip ``False`` entries to
      ``True`` (checked incrementally against the one new context);
      deleting a context can only stale ``True`` entries, which are
      dropped for lazy recomputation.
    * ``_user_cache`` — per user, effective context → list of matching
      buckets.  A user's new bucket is appended to the matching cached
      lists; any bucket deletion simply drops that user's cache
      (deletions are rare — context termination or admin purges).
    """

    __slots__ = ("_by_context", "_by_user", "_presence", "_user_cache")

    #: Memo-size guards: effective contexts are policy-derived and few,
    #: but an adversarial query stream must not grow the memos unboundedly.
    _PRESENCE_LIMIT = 4096
    _USER_CACHE_LIMIT = 1024

    def __init__(self) -> None:
        self._by_context: dict[ContextName, dict[str, _ContextBucket]] = {}
        self._by_user: dict[str, dict[ContextName, _ContextBucket]] = {}
        self._presence: dict[ContextName, bool] = {}
        self._user_cache: dict[
            str, dict[ContextName, list[_ContextBucket]]
        ] = {}

    # -- maintenance ---------------------------------------------------
    def add(self, record: RetainedADIRecord) -> None:
        context = record.context_instance
        user_id = record.user_id
        user_buckets = self._by_user.setdefault(user_id, {})
        bucket = user_buckets.get(context)
        if bucket is None:
            bucket = user_buckets[context] = _ContextBucket()
            by_users = self._by_context.get(context)
            if by_users is None:
                by_users = self._by_context[context] = {}
                presence = self._presence
                if presence:
                    # A new concrete context can only turn absent
                    # effective contexts present, never the reverse.
                    for effective, present in presence.items():
                        if not present and effective.matcher.matches(context):
                            presence[effective] = True
            by_users[user_id] = bucket
            cache = self._user_cache.get(user_id)
            if cache:
                for effective, buckets in cache.items():
                    if effective.matcher.matches(context):
                        buckets.append(bucket)
        bucket.add(record)

    def remove(self, record: RetainedADIRecord) -> None:
        context = record.context_instance
        user_id = record.user_id
        bucket = self._by_user[user_id][context]
        bucket.remove(record)
        if not bucket.records:
            del self._by_user[user_id][context]
            if not self._by_user[user_id]:
                del self._by_user[user_id]
            del self._by_context[context][user_id]
            if not self._by_context[context]:
                del self._by_context[context]
                self._forget_context(context)
            self._user_cache.pop(user_id, None)

    def remove_user(self, user_id: str) -> list[RetainedADIRecord]:
        """Drop every bucket of one user, returning the removed records."""
        removed: list[RetainedADIRecord] = []
        self._user_cache.pop(user_id, None)
        vanished: list[ContextName] = []
        for context, bucket in self._by_user.pop(user_id, {}).items():
            removed.extend(bucket.records.values())
            del self._by_context[context][user_id]
            if not self._by_context[context]:
                del self._by_context[context]
                vanished.append(context)
        # Per-context presence invalidation is a full memo sweep with a
        # matcher call per entry; a user can own hundreds of concrete
        # contexts (one per grant under per-user period naming), and a
        # reshard cutover purges many users back to back while the memo
        # sits at its limit — that product is what a fenced cutover
        # pause would be made of.  Past a handful of vanished contexts
        # it is strictly cheaper to drop every ``True`` entry in one
        # matcher-free sweep: deletions can only stale ``True`` entries
        # (absent can not become present by removing contexts), and the
        # memo repopulates lazily.
        if len(vanished) > 8:
            presence = self._presence
            for effective in [
                e for e, present in presence.items() if present
            ]:
                del presence[effective]
        else:
            for context in vanished:
                self._forget_context(context)
        return removed

    def clear(self) -> None:
        self._by_context.clear()
        self._by_user.clear()
        self._presence.clear()
        self._user_cache.clear()

    def clear_memos(self) -> None:
        """Drop the effective-context memos, keeping the records.

        Effective contexts are derived from the *policy set* (a policy's
        business context instantiated against a request), so a policy
        hot-swap invalidates them wholesale; the record structures
        themselves are policy-independent and stay intact.  The memos
        repopulate lazily on the next queries.

        Rebinding (not ``.clear()``) keeps a hot-swap benign for
        threaded embedders: a concurrent query iterating the old memo
        dict finishes against it undisturbed, and anything it writes
        there is simply dropped with the old dict.
        """
        self._presence = {}
        self._user_cache = {}

    def _forget_context(self, context: ContextName) -> None:
        """Invalidate presence entries staled by a vanished context.

        Only ``True`` entries that matched the vanished context can have
        changed; they are recomputed lazily on the next query.
        """
        presence = self._presence
        if not presence:
            return
        stale = [
            effective
            for effective, present in presence.items()
            if present and effective.matcher.matches(context)
        ]
        for effective in stale:
            del presence[effective]

    # -- queries -------------------------------------------------------
    def matching_contexts(
        self, effective_context: ContextName
    ) -> list[ContextName]:
        matches = effective_context.matcher.matches
        return [context for context in self._by_context if matches(context)]

    def has_context(self, effective_context: ContextName) -> bool:
        presence = self._presence
        present = presence.get(effective_context)
        if present is None:
            if len(presence) >= self._PRESENCE_LIMIT:
                presence.clear()
            matches = effective_context.matcher.matches
            present = presence[effective_context] = any(
                matches(context) for context in self._by_context
            )
        return present

    def context_records(
        self, effective_context: ContextName
    ) -> list[RetainedADIRecord]:
        found: list[RetainedADIRecord] = []
        for context in self.matching_contexts(effective_context):
            for bucket in self._by_context[context].values():
                found.extend(bucket.records.values())
        found.sort(key=lambda record: record.record_id)
        return found

    def _user_matching_buckets(
        self, user_id: str, effective_context: ContextName
    ) -> list[_ContextBucket]:
        user_buckets = self._by_user.get(user_id)
        if not user_buckets:
            return []
        cache = self._user_cache.setdefault(user_id, {})
        buckets = cache.get(effective_context)
        if buckets is None:
            if len(cache) >= self._USER_CACHE_LIMIT:
                cache.clear()
            matches = effective_context.matcher.matches
            buckets = cache[effective_context] = [
                bucket
                for context, bucket in user_buckets.items()
                if matches(context)
            ]
        return buckets

    def user_records(
        self, user_id: str, effective_context: ContextName
    ) -> list[RetainedADIRecord]:
        found: list[RetainedADIRecord] = []
        for bucket in self._user_matching_buckets(user_id, effective_context):
            found.extend(bucket.records.values())
        found.sort(key=lambda record: record.record_id)
        return found

    def user_roles(
        self, user_id: str, effective_context: ContextName
    ) -> frozenset[Role]:
        roles: set[Role] = set()
        for bucket in self._user_matching_buckets(user_id, effective_context):
            roles.update(bucket.role_counts)
        return frozenset(roles)

    def user_privilege_exercises(
        self, user_id: str, effective_context: ContextName
    ) -> list[Privilege]:
        buckets = self._user_matching_buckets(user_id, effective_context)
        entries: list[tuple[int, str, Privilege]] = []
        for bucket in buckets:
            entries.extend(
                (record_id, request_id, privilege)
                for request_id, (record_id, privilege) in bucket.exercises.items()
            )
        entries.sort()
        seen_requests: set[str] = set()
        exercises: list[Privilege] = []
        for _, request_id, privilege in entries:
            if request_id in seen_requests:
                continue
            seen_requests.add(request_id)
            exercises.append(privilege)
        return exercises


class ADIViewSnapshot:
    """A per-request memo over one store's engine-facing views.

    One MSoD check may consult the same ``(user, effective-context)``
    view several times — once per MMER/MMEP across every matched policy
    — and the store is not mutated until the final decision commits, so
    within a single ``check`` the answers cannot change.  The engine
    takes one snapshot per request and routes all reads through it.
    """

    __slots__ = (
        "_store",
        "_has_context",
        "_roles",
        "_exercise_counts",
        "_privilege_owners",
    )

    def __init__(self, store: "RetainedADIStore") -> None:
        self._store = store
        self._has_context: dict[ContextName, bool] = {}
        self._roles: dict[tuple[str, ContextName], frozenset[Role]] = {}
        self._exercise_counts: dict[tuple[str, ContextName], Counter] = {}
        self._privilege_owners: dict[
            tuple[tuple[Privilege, ...], ContextName], frozenset[str]
        ] = {}

    def has_context(self, effective_context: ContextName) -> bool:
        memo = self._has_context
        started = memo.get(effective_context)
        if started is None:
            started = memo[effective_context] = self._store.has_context(
                effective_context
            )
        return started

    def user_roles(
        self, user_id: str, effective_context: ContextName
    ) -> frozenset[Role]:
        key = (user_id, effective_context)
        roles = self._roles.get(key)
        if roles is None:
            roles = self._roles[key] = self._store.user_roles(
                user_id, effective_context
            )
        return roles

    def user_privilege_exercise_counts(
        self, user_id: str, effective_context: ContextName
    ) -> Counter:
        """Multiset of historical exercises (one per distinct request)."""
        key = (user_id, effective_context)
        counts = self._exercise_counts.get(key)
        if counts is None:
            counts = self._exercise_counts[key] = Counter(
                self._store.user_privilege_exercises(user_id, effective_context)
            )
        return counts

    def users_with_privileges(
        self,
        privileges: tuple[Privilege, ...],
        effective_context: ContextName,
    ) -> frozenset[str]:
        """Users with a retained exercise of any listed privilege (MMCD)."""
        key = (privileges, effective_context)
        owners = self._privilege_owners.get(key)
        if owners is None:
            owners = self._privilege_owners[key] = (
                self._store.users_with_privileges(
                    privileges, effective_context
                )
            )
        return owners


class RetainedADIStore:
    """Abstract interface every retained-ADI backend implements."""

    def add(self, record: RetainedADIRecord) -> RetainedADIRecord:
        """Persist one record, returning it with ``record_id`` assigned."""
        raise NotImplementedError

    def records(self) -> Iterator[RetainedADIRecord]:
        """Iterate over every retained record."""
        raise NotImplementedError

    def find(self, effective_context: ContextName) -> list[RetainedADIRecord]:
        """Records whose instance is equal/subordinate to the context."""
        raise NotImplementedError

    def find_user(
        self, user_id: str, effective_context: ContextName
    ) -> list[RetainedADIRecord]:
        """Like :meth:`find`, restricted to one user."""
        raise NotImplementedError

    def has_context(self, effective_context: ContextName) -> bool:
        """True when any record matches the context (step 3 existence)."""
        raise NotImplementedError

    def purge_context(self, effective_context: ContextName) -> int:
        """Delete all records matching the context; return the count."""
        raise NotImplementedError

    def purge_user(self, user_id: str) -> int:
        """Delete all records for a user (management port operation)."""
        raise NotImplementedError

    def purge_older_than(self, cutoff: float) -> int:
        """Delete records granted before ``cutoff`` (management port)."""
        raise NotImplementedError

    def clear(self) -> int:
        """Delete everything; return the number of deleted records."""
        raise NotImplementedError

    def count(self) -> int:
        raise NotImplementedError

    def close(self) -> None:
        """Release any underlying resources.  Idempotent."""

    def stats(self) -> dict:
        """Uniform introspection snapshot, shared by every backend.

        Keys present on every store: ``backend``, ``records``,
        ``resident_users`` (users whose aggregates are held in memory),
        ``evictions`` and ``hydrations`` (monotonic counters, zero for
        backends that never evict).  Backends append backend-specific
        keys (e.g. ``warm_bytes`` for SQLite files, ``hot_capacity``
        for the tiered store).  Surfaced through the serving layer's
        ``metrics`` verb and Prometheus exposition.
        """
        return {
            "backend": type(self).__name__,
            "records": self.count(),
            "resident_users": 0,
            "evictions": 0,
            "hydrations": 0,
        }

    def context_counts(self) -> dict[ContextName, int]:
        """Record count per distinct concrete context instance.

        The tiered store seeds its context-presence aggregates from
        this at attach time; the generic implementation scans
        :meth:`records`, backends with an index override it.
        """
        counts: dict[ContextName, int] = {}
        for record in self.records():
            context = record.context_instance
            counts[context] = counts.get(context, 0) + 1
        return counts

    # ------------------------------------------------------------------
    def apply(self, mutation: ADIMutation) -> int:
        """Apply a buffered mutation: purges first, then adds.

        Purge-before-add matters: a granted *last step* both terminates
        the context (purging its history) and must not leave its own
        record behind — step 7 deletes instead of storing.  The engine
        only puts adds and purges for *different* policies in one
        mutation, and purges always win for their own context.

        Returns the number of purged records.  Backends override
        :meth:`apply_detailed` to make the whole mutation atomic (one
        decision = one transaction).
        """
        return self.apply_detailed(mutation).purged

    def apply_detailed(self, mutation: ADIMutation) -> ADIApplyOutcome:
        """Like :meth:`apply`, but reporting what was deleted and added.

        Layered stores need the concrete record sets — not just counts —
        to keep derived aggregates in lock-step with the authoritative
        layer.  The purge count preserves each backend's :meth:`apply`
        semantics; ``purged_records`` is deduplicated by id.
        """
        purged = 0
        evicted: dict[int, RetainedADIRecord] = {}
        for context in mutation.purge_contexts:
            doomed = self.find(context)
            purged += len(doomed)
            for record in doomed:
                evicted.setdefault(record.record_id, record)
            self.purge_context(context)
        added = [self.add(record) for record in mutation.adds]
        return ADIApplyOutcome(purged, list(evicted.values()), added)

    @contextmanager
    def batch(self):
        """Group several :meth:`apply` calls into one durability unit.

        The serving workers drain each shard queue in micro-batches and
        wrap the whole batch in ``with store.batch():`` so a backend can
        pay one fsync for the batch instead of one per decision.  Each
        decision stays individually atomic (the SQLite backend runs it
        in a savepoint); the batch is *not* an all-or-nothing unit.  The
        default is a no-op so in-memory backends need no changes.
        """
        yield self

    def invalidate_policy_memos(self) -> None:
        """Drop caches keyed by policy-derived effective contexts.

        Called by :meth:`MSoDEngine.swap_policy` (inside ``batch()``)
        when a *different* policy set is installed: memoised
        per-(user, effective-context) lookups were computed against the
        old set's business contexts.  Record data is policy-independent
        and untouched.  The default is a no-op for backends without such
        memos.
        """

    # Helper views used by the engine --------------------------------
    def snapshot_views(self) -> ADIViewSnapshot:
        """A memoizing view over this store for one decision request.

        Valid only while the store is not mutated — exactly the window
        the engine needs, since a decision buffers its mutation and
        commits after evaluation finishes.
        """
        return ADIViewSnapshot(self)

    def user_roles(
        self, user_id: str, effective_context: ContextName
    ) -> frozenset[Role]:
        """Roles the user has historically activated in the context."""
        return frozenset(
            role
            for record in self.find_user(user_id, effective_context)
            for role in record.roles
        )

    def user_privilege_exercises(
        self, user_id: str, effective_context: ContextName
    ) -> list[Privilege]:
        """Privileges historically exercised, one entry per request.

        Records created from the same decision request (same
        ``request_id``) count as a single exercise of the operation/target
        pair.
        """
        seen_requests: set[str] = set()
        exercises: list[Privilege] = []
        for record in self.find_user(user_id, effective_context):
            if record.request_id in seen_requests:
                continue
            seen_requests.add(record.request_id)
            exercises.append(record.privilege)
        return exercises

    def users_with_privileges(
        self,
        privileges: Iterable[Privilege],
        effective_context: ContextName,
    ) -> frozenset[str]:
        """Users with a retained exercise of any listed privilege in scope.

        The combination-of-duty ownership view: which users already
        performed a step of an MMCD bound set within the effective
        context.  The generic implementation scans :meth:`find`;
        backends with per-context indexes may override it.
        """
        wanted = set(privileges)
        return frozenset(
            record.user_id
            for record in self.find(effective_context)
            if record.privilege in wanted
        )


class InMemoryRetainedADIStore(RetainedADIStore):
    """Retained ADI held in memory (paper Section 5.2).

    Records live in per-``(user, context-instance)`` buckets
    (:class:`_UserContextIndex`): the number of *distinct* active
    context instances is tiny compared to the record count, so
    context-scoped queries (the hot path of algorithm steps 3 and 7)
    touch only the matching buckets, and the engine's role/privilege
    history views are answered from aggregates maintained incrementally
    on ``add``/purge instead of per-query scans.  Deleting a record
    fully unlinks it from every index, so long-lived users do not
    accumulate stale entries.
    """

    def __init__(self, records: Iterable[RetainedADIRecord] = ()) -> None:
        self._records: dict[int, RetainedADIRecord] = {}
        self._index = _UserContextIndex()
        self._next_id = 1
        for record in records:
            self.add(record)

    def add(self, record: RetainedADIRecord) -> RetainedADIRecord:
        stored = RetainedADIRecord(
            user_id=record.user_id,
            roles=record.roles,
            operation=record.operation,
            target=record.target,
            context_instance=record.context_instance,
            granted_at=record.granted_at,
            request_id=record.request_id,
            record_id=self._next_id,
        )
        self._records[self._next_id] = stored
        self._index.add(stored)
        self._next_id += 1
        return stored

    def records(self) -> Iterator[RetainedADIRecord]:
        return iter(list(self._records.values()))

    def find(self, effective_context: ContextName) -> list[RetainedADIRecord]:
        return self._index.context_records(effective_context)

    def find_user(
        self, user_id: str, effective_context: ContextName
    ) -> list[RetainedADIRecord]:
        return self._index.user_records(user_id, effective_context)

    def has_context(self, effective_context: ContextName) -> bool:
        return self._index.has_context(effective_context)

    def _delete(self, record: RetainedADIRecord) -> None:
        del self._records[record.record_id]
        self._index.remove(record)

    def purge_context(self, effective_context: ContextName) -> int:
        doomed = self._index.context_records(effective_context)
        for record in doomed:
            self._delete(record)
        return len(doomed)

    def purge_user(self, user_id: str) -> int:
        removed = self._index.remove_user(user_id)
        for record in removed:
            del self._records[record.record_id]
        return len(removed)

    def purge_older_than(self, cutoff: float) -> int:
        doomed = [
            record
            for record in self._records.values()
            if record.granted_at < cutoff
        ]
        for record in doomed:
            self._delete(record)
        return len(doomed)

    def clear(self) -> int:
        removed = len(self._records)
        self._records.clear()
        self._index.clear()
        return removed

    def count(self) -> int:
        return len(self._records)

    def stats(self) -> dict:
        return {
            "backend": "memory",
            "records": len(self._records),
            "resident_users": len(self._index._by_user),
            "evictions": 0,
            "hydrations": 0,
        }

    def context_counts(self) -> dict[ContextName, int]:
        return {
            context: sum(len(bucket.records) for bucket in by_user.values())
            for context, by_user in self._index._by_context.items()
        }

    def apply_detailed(self, mutation: ADIMutation) -> ADIApplyOutcome:
        purged = 0
        evicted: dict[int, RetainedADIRecord] = {}
        for context in mutation.purge_contexts:
            doomed = self._index.context_records(context)
            purged += len(doomed)
            for record in doomed:
                evicted.setdefault(record.record_id, record)
                self._delete(record)
        added = [self.add(record) for record in mutation.adds]
        return ADIApplyOutcome(purged, list(evicted.values()), added)

    # Aggregate-backed engine views ----------------------------------
    def invalidate_policy_memos(self) -> None:
        self._index.clear_memos()

    def user_roles(
        self, user_id: str, effective_context: ContextName
    ) -> frozenset[Role]:
        return self._index.user_roles(user_id, effective_context)

    def user_privilege_exercises(
        self, user_id: str, effective_context: ContextName
    ) -> list[Privilege]:
        return self._index.user_privilege_exercises(user_id, effective_context)


class SQLiteRetainedADIStore(RetainedADIStore):
    """Retained ADI in a relational database (the Section 6 proposal).

    Records survive PDP restarts without replaying audit trails.  Context
    matching with ``*`` wildcards cannot be expressed as a plain SQL
    prefix query, so candidate rows are narrowed by user where possible
    and matched in Python; this keeps semantics identical across
    backends.

    Two layers keep the Python-side matching off the hot path:

    * a row→record cache — rows are immutable once inserted, so each is
      deserialised (JSON + context parse) at most once per process;
    * the same :class:`_UserContextIndex` of incremental aggregates the
      in-memory store uses, built lazily from the table on the first
      history query and then maintained in lock-step with every
      mutation, all of which happen under this store's lock.

    **Threading discipline.**  The connection is opened with
    ``check_same_thread=False`` and every statement (and every
    cache/index mutation) runs under the single ``self._lock``, so the
    store is safe to share across the serving worker pool: sqlite3 never
    sees concurrent statements on the one connection, and the row cache
    and lock-step index can never diverge from the table.  WAL journal
    mode (file-backed databases only) lets *other* connections — e.g. an
    operator's ``python -m repro history`` against a live server's
    database — read without blocking the writer, and ``busy_timeout``
    makes cross-connection lock collisions wait instead of failing with
    ``database is locked``.
    """

    #: How long (ms) a statement waits on another connection's lock
    #: before sqlite3 raises ``database is locked``.
    BUSY_TIMEOUT_MS = 5_000

    def __init__(
        self, path: str = ":memory:", *, max_row_cache: int | None = None
    ) -> None:
        if max_row_cache is not None and max_row_cache < 1:
            raise StoreError("max_row_cache must be >= 1 (or None)")
        self._max_row_cache = max_row_cache
        try:
            self._conn = sqlite3.connect(path, check_same_thread=False)
            self._conn.execute(f"PRAGMA busy_timeout={self.BUSY_TIMEOUT_MS}")
            # WAL applies to file-backed databases; in-memory databases
            # report their own "memory" mode, which is fine — there is
            # no second connection to contend with.
            self._conn.execute("PRAGMA journal_mode=WAL")
            # SQLite's default page cache (2 MiB) thrashes the user_id
            # and context index B-trees once the file outgrows it —
            # bank-scale preloads drop to a few thousand scattered
            # inserts/s. 64 MiB keeps the hot interior pages resident.
            self._conn.execute("PRAGMA cache_size=-65536")
        except sqlite3.Error as exc:  # pragma: no cover - environment issue
            raise StoreError(f"cannot open retained-ADI database {path!r}") from exc
        self._lock = threading.Lock()
        self._batch_depth = 0
        self._closed = False
        self._row_cache: dict[int, RetainedADIRecord] = {}
        self._index: _UserContextIndex | None = None
        self._conn.execute(
            """
            CREATE TABLE IF NOT EXISTS retained_adi (
                record_id INTEGER PRIMARY KEY AUTOINCREMENT,
                user_id TEXT NOT NULL,
                context TEXT NOT NULL,
                payload TEXT NOT NULL,
                granted_at REAL NOT NULL
            )
            """
        )
        self._conn.execute(
            "CREATE INDEX IF NOT EXISTS idx_adi_user ON retained_adi(user_id)"
        )
        self._conn.execute(
            "CREATE INDEX IF NOT EXISTS idx_adi_context ON retained_adi(context)"
        )
        self._conn.commit()

    @staticmethod
    def _context_like_pattern(effective_context: ContextName) -> str:
        """A SQL LIKE *prefilter* for context matching.

        ``*`` components become ``%``; a trailing ``%`` admits
        subordinate instances.  LIKE wildcards can cross component
        boundaries, so matches are over-approximate — every candidate is
        re-checked precisely in Python — but the prefilter keeps the
        scan off rows in unrelated contexts.
        """
        if effective_context.is_root:
            return "%"
        parts = []
        for component in effective_context:
            escaped_type = (
                component.ctx_type.replace("\\", "\\\\")
                .replace("%", "\\%")
                .replace("_", "\\_")
            )
            if component.is_wildcard:
                parts.append(f"{escaped_type}=%")
            else:
                escaped_value = (
                    component.value.replace("\\", "\\\\")
                    .replace("%", "\\%")
                    .replace("_", "\\_")
                )
                parts.append(f"{escaped_type}={escaped_value}")
        return ", ".join(parts) + "%"

    def _ensure_open(self) -> None:
        if self._closed:
            raise StoreError("retained-ADI store is closed")

    def add(self, record: RetainedADIRecord) -> RetainedADIRecord:
        self._ensure_open()
        payload = json.dumps(record.to_dict(), sort_keys=True)
        with self._lock:
            cursor = self._conn.execute(
                "INSERT INTO retained_adi"
                " (user_id, context, payload, granted_at) VALUES (?, ?, ?, ?)",
                (
                    record.user_id,
                    str(record.context_instance),
                    payload,
                    record.granted_at,
                ),
            )
            # Inside an open batch() the insert joins the batch
            # transaction and durability is deferred to its single
            # commit; committing here would close that transaction
            # early and pay one fsync per record — the difference
            # between ~3k and ~100k adds/s on bulk replays.
            if not self._batch_depth:
                self._conn.commit()
            stored = RetainedADIRecord.from_dict(
                record.to_dict(), record_id=cursor.lastrowid
            )
            self._admit_locked(stored)
        return stored

    # -- cache/index maintenance (call with the lock held) -------------
    def _bound_row_cache_locked(self) -> None:
        """Keep the row cache within its optional bound.

        The cache is an append-mostly id→record map with no recency
        tracking, so the bound is enforced by wholesale reset: crude,
        but O(1) amortised, and only layered deployments (where the
        warm store must not hold every user resident) set a bound at
        all.  Never resets while the lock-step index is built — the
        index holds the same record objects, so evicting cache entries
        underneath it would save nothing.
        """
        if (
            self._max_row_cache is not None
            and self._index is None
            and len(self._row_cache) > self._max_row_cache
        ):
            self._row_cache = {}

    def _admit_locked(self, record: RetainedADIRecord) -> None:
        self._row_cache[record.record_id] = record
        if self._index is not None:
            self._index.add(record)
        self._bound_row_cache_locked()

    def _evict_locked(self, records: Iterable[RetainedADIRecord]) -> None:
        for record in records:
            self._row_cache.pop(record.record_id, None)
            if self._index is not None:
                self._index.remove(record)

    def _record_from_row(self, record_id: int, payload: str) -> RetainedADIRecord:
        """Deserialise a row once; later lookups hit the cache.

        Safe because rows are immutable: ``record_id`` is an
        AUTOINCREMENT key, never reused or updated in place.
        """
        record = self._row_cache.get(record_id)
        if record is None:
            record = RetainedADIRecord.from_dict(
                json.loads(payload), record_id=record_id
            )
            self._row_cache[record_id] = record
            self._bound_row_cache_locked()
        return record

    def _ensure_index_locked(self) -> _UserContextIndex:
        if self._index is None:
            index = _UserContextIndex()
            rows = self._conn.execute(
                "SELECT record_id, payload FROM retained_adi ORDER BY record_id"
            ).fetchall()
            for record_id, payload in rows:
                index.add(self._record_from_row(record_id, payload))
            self._index = index
        return self._index

    def _rows_to_records(self, rows: Iterable[tuple]) -> list[RetainedADIRecord]:
        return [
            self._record_from_row(record_id, payload)
            for record_id, payload in rows
        ]

    def records(self) -> Iterator[RetainedADIRecord]:
        self._ensure_open()
        with self._lock:
            rows = self._conn.execute(
                "SELECT record_id, payload FROM retained_adi ORDER BY record_id"
            ).fetchall()
        return iter(self._rows_to_records(rows))

    def _candidate_rows(self, effective_context: ContextName) -> list[tuple]:
        pattern = self._context_like_pattern(effective_context)
        with self._lock:
            return self._conn.execute(
                "SELECT record_id, payload FROM retained_adi"
                " WHERE context LIKE ? ESCAPE '\\' ORDER BY record_id",
                (pattern,),
            ).fetchall()

    def find(self, effective_context: ContextName) -> list[RetainedADIRecord]:
        self._ensure_open()
        return [
            record
            for record in self._rows_to_records(
                self._candidate_rows(effective_context)
            )
            if record.in_context(effective_context)
        ]

    def find_user(
        self, user_id: str, effective_context: ContextName
    ) -> list[RetainedADIRecord]:
        self._ensure_open()
        pattern = self._context_like_pattern(effective_context)
        with self._lock:
            rows = self._conn.execute(
                "SELECT record_id, payload FROM retained_adi"
                " WHERE user_id = ? AND context LIKE ? ESCAPE '\\'"
                " ORDER BY record_id",
                (user_id, pattern),
            ).fetchall()
        return [
            record
            for record in self._rows_to_records(rows)
            if record.in_context(effective_context)
        ]

    def has_context(self, effective_context: ContextName) -> bool:
        self._ensure_open()
        with self._lock:
            # Answered from the lock-step index (with its cross-request
            # presence memo) rather than a per-call SQL DISTINCT scan.
            return self._ensure_index_locked().has_context(effective_context)

    def invalidate_policy_memos(self) -> None:
        with self._lock:
            # The row cache maps immutable record_id -> record and is
            # policy-independent; only the effective-context memos of
            # the lock-step index are stale after a policy swap.
            if self._index is not None:
                self._index.clear_memos()

    def _doomed_in_context_locked(
        self, effective_context: ContextName
    ) -> list[RetainedADIRecord]:
        """Records matching a purge context, selected under the lock.

        Candidate selection MUST happen inside the same locked
        transaction as the deletes: selecting first and locking later
        would let a concurrent ``add`` slip a matching record in between
        and survive the purge.
        """
        pattern = self._context_like_pattern(effective_context)
        rows = self._conn.execute(
            "SELECT record_id, payload FROM retained_adi"
            " WHERE context LIKE ? ESCAPE '\\' ORDER BY record_id",
            (pattern,),
        ).fetchall()
        matches = effective_context.matcher.matches
        return [
            record
            for record in (
                self._record_from_row(record_id, payload)
                for record_id, payload in rows
            )
            if matches(record.context_instance)
        ]

    def purge_context(self, effective_context: ContextName) -> int:
        self._ensure_open()
        with self._lock:
            with self._conn:
                doomed = self._doomed_in_context_locked(effective_context)
                self._conn.executemany(
                    "DELETE FROM retained_adi WHERE record_id = ?",
                    [(record.record_id,) for record in doomed],
                )
            self._evict_locked(doomed)
        return len(doomed)

    def purge_user(self, user_id: str) -> int:
        self._ensure_open()
        with self._lock:
            with self._conn:
                rows = self._conn.execute(
                    "SELECT record_id FROM retained_adi WHERE user_id = ?",
                    (user_id,),
                ).fetchall()
                self._conn.execute(
                    "DELETE FROM retained_adi WHERE user_id = ?", (user_id,)
                )
            for (record_id,) in rows:
                self._row_cache.pop(record_id, None)
            if self._index is not None:
                self._index.remove_user(user_id)
        return len(rows)

    def purge_older_than(self, cutoff: float) -> int:
        self._ensure_open()
        with self._lock:
            with self._conn:
                rows = self._conn.execute(
                    "SELECT record_id, payload FROM retained_adi"
                    " WHERE granted_at < ?",
                    (cutoff,),
                ).fetchall()
                self._conn.execute(
                    "DELETE FROM retained_adi WHERE granted_at < ?", (cutoff,)
                )
            self._evict_locked(
                self._record_from_row(record_id, payload)
                for record_id, payload in rows
            )
        return len(rows)

    def clear(self) -> int:
        self._ensure_open()
        with self._lock:
            cursor = self._conn.execute("DELETE FROM retained_adi")
            self._conn.commit()
            self._row_cache.clear()
            if self._index is not None:
                self._index.clear()
        return cursor.rowcount

    def count(self) -> int:
        self._ensure_open()
        with self._lock:
            (total,) = self._conn.execute(
                "SELECT COUNT(*) FROM retained_adi"
            ).fetchone()
        return total

    def stats(self) -> dict:
        self._ensure_open()
        with self._lock:
            (total,) = self._conn.execute(
                "SELECT COUNT(*) FROM retained_adi"
            ).fetchone()
            (page_count,) = self._conn.execute("PRAGMA page_count").fetchone()
            (page_size,) = self._conn.execute("PRAGMA page_size").fetchone()
            resident = (
                len(self._index._by_user) if self._index is not None else 0
            )
            row_cache = len(self._row_cache)
        return {
            "backend": "sqlite",
            "records": total,
            "resident_users": resident,
            "evictions": 0,
            "hydrations": 0,
            "row_cache": row_cache,
            "warm_bytes": page_count * page_size,
        }

    def context_counts(self) -> dict[ContextName, int]:
        """Per-context record counts straight from SQL (no index build).

        One GROUP BY over the indexed ``context`` column — the tiered
        store seeds its presence aggregates from this without paying
        :meth:`_ensure_index_locked`'s load of every user.
        """
        self._ensure_open()
        with self._lock:
            rows = self._conn.execute(
                "SELECT context, COUNT(*) FROM retained_adi GROUP BY context"
            ).fetchall()
        return {ContextName.parse(text): count for text, count in rows}

    def _apply_sql_locked(
        self, mutation: ADIMutation
    ) -> tuple[int, dict[int, RetainedADIRecord], list[RetainedADIRecord]]:
        """Run a mutation's SQL (purges then adds) on the open cursor.

        Caller owns the lock and the enclosing transaction/savepoint.
        Returns ``(purged, evicted_by_id, added)`` for cache upkeep.
        """
        purged = 0
        evicted: dict[int, RetainedADIRecord] = {}
        added: list[RetainedADIRecord] = []
        for context in mutation.purge_contexts:
            doomed = self._doomed_in_context_locked(context)
            purged += len(doomed)
            for record in doomed:
                evicted.setdefault(record.record_id, record)
        self._conn.executemany(
            "DELETE FROM retained_adi WHERE record_id = ?",
            [(record_id,) for record_id in evicted],
        )
        for record in mutation.adds:
            cursor = self._conn.execute(
                "INSERT INTO retained_adi"
                " (user_id, context, payload, granted_at)"
                " VALUES (?, ?, ?, ?)",
                (
                    record.user_id,
                    str(record.context_instance),
                    json.dumps(record.to_dict(), sort_keys=True),
                    record.granted_at,
                ),
            )
            added.append(
                RetainedADIRecord.from_dict(
                    record.to_dict(), record_id=cursor.lastrowid
                )
            )
        return purged, evicted, added

    def apply_detailed(self, mutation: ADIMutation) -> ADIApplyOutcome:
        """Apply the whole mutation in ONE SQLite transaction.

        A decision's purges and adds either all land or none do, even if
        the process dies mid-commit — the property the audit-trail
        recovery path otherwise has to repair.  Candidate selection for
        the purges happens *inside* the transaction (no
        select-then-lock window), and the batched adds share the single
        commit instead of paying one fsync each.

        Inside an open :meth:`batch`, the decision runs in a savepoint
        of the batch transaction instead: still individually atomic,
        but the fsync is deferred to the batch commit.
        """
        self._ensure_open()
        with self._lock:
            if self._batch_depth:
                self._conn.execute("SAVEPOINT msod_apply")
                try:
                    purged, evicted, added = self._apply_sql_locked(mutation)
                except sqlite3.Error as exc:
                    self._conn.execute("ROLLBACK TO SAVEPOINT msod_apply")
                    self._conn.execute("RELEASE SAVEPOINT msod_apply")
                    raise StoreError(
                        f"mutation failed atomically: {exc}"
                    ) from exc
                self._conn.execute("RELEASE SAVEPOINT msod_apply")
            else:
                try:
                    with self._conn:  # implicit BEGIN ... COMMIT/ROLLBACK
                        purged, evicted, added = self._apply_sql_locked(
                            mutation
                        )
                except sqlite3.Error as exc:
                    raise StoreError(
                        f"mutation failed atomically: {exc}"
                    ) from exc
            self._evict_locked(evicted.values())
            for record in added:
                self._admit_locked(record)
        return ADIApplyOutcome(purged, list(evicted.values()), added)

    @contextmanager
    def batch(self):
        """One explicit transaction (one fsync) around many ``apply`` calls.

        Each enclosed decision still commits or rolls back atomically
        via its savepoint; the batch only defers durability.  Re-entrant
        across shard workers sharing this store: concurrent batches
        coalesce into the single open transaction, which commits when
        the last batch exits.  Decisions already released from their
        savepoints are committed even if a later decision in the batch
        raises — their in-memory cache/index updates have already been
        published, and rolling the table back underneath them would
        desynchronise the two.
        """
        self._ensure_open()
        with self._lock:
            if self._batch_depth == 0 and not self._conn.in_transaction:
                self._conn.execute("BEGIN IMMEDIATE")
            self._batch_depth += 1
        try:
            yield self
        finally:
            with self._lock:
                self._batch_depth -= 1
                if self._batch_depth == 0 and self._conn.in_transaction:
                    self._conn.commit()

    # Aggregate-backed engine views ----------------------------------
    def user_roles(
        self, user_id: str, effective_context: ContextName
    ) -> frozenset[Role]:
        self._ensure_open()
        with self._lock:
            return self._ensure_index_locked().user_roles(
                user_id, effective_context
            )

    def user_privilege_exercises(
        self, user_id: str, effective_context: ContextName
    ) -> list[Privilege]:
        self._ensure_open()
        with self._lock:
            return self._ensure_index_locked().user_privilege_exercises(
                user_id, effective_context
            )

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._conn.close()


def store_digest(store: RetainedADIStore) -> tuple:
    """A hashable snapshot of a store's contents, for invariant tests.

    Property tests assert that a denied request leaves the digest
    unchanged (the Section 4.2 note).
    """
    return tuple(
        sorted(
            (
                record.user_id,
                tuple(sorted(str(role) for role in record.roles)),
                record.operation,
                record.target,
                str(record.context_instance),
                record.request_id,
            )
            for record in store.records()
        )
    )

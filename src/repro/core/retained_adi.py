"""Retained Access-control Decision Information (paper Sections 4.1-4.3).

The retained ADI is the history of *granted* decisions that the PDP needs
in order to evaluate MSoD policies.  Each record is the 6-tuple of
Section 4.2: user ID, activated role(s), operation granted, target
accessed, business-context instance, and time of the grant decision.  Two
bookkeeping fields are added: a store-assigned ``record_id`` and the
``request_id`` of the decision request that produced the record (step 5.iv
adds one record per matched role for a single request; grouping by
``request_id`` lets privilege-exercise counting treat them as one event).

Two store backends are provided:

* :class:`InMemoryRetainedADIStore` — what the paper's first PERMIS
  implementation used (Section 5.2, rebuilt from audit trails at start-up).
* :class:`SQLiteRetainedADIStore` — the "secure relational database" the
  paper proposes as its next implementation (Section 6), which avoids the
  audit-trail replay cost measured in ``benchmarks/bench_recovery_
  scalability.py``.

Both honour the same :class:`RetainedADIStore` interface so the engine and
benchmarks can ablate them.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.core.constraints import Privilege, Role
from repro.core.context import ContextName
from repro.errors import StoreError


@dataclass(frozen=True, slots=True)
class RetainedADIRecord:
    """One granted decision retained for MSoD evaluation."""

    user_id: str
    roles: tuple[Role, ...]
    operation: str
    target: str
    context_instance: ContextName
    granted_at: float
    request_id: str
    record_id: int | None = None

    @property
    def privilege(self) -> Privilege:
        return Privilege(self.operation, self.target)

    def in_context(self, effective_context: ContextName) -> bool:
        """True when this record's instance matches the policy context.

        Step 3: "Retained ADI context instance matches if it is equal or
        subordinate to policy context, noting that policy context of *
        matches all instance values."
        """
        return self.context_instance.is_equal_or_subordinate_to(effective_context)

    def to_dict(self) -> dict:
        """JSON-compatible representation (for audit trails and SQLite)."""
        return {
            "user_id": self.user_id,
            "roles": [[role.role_type, role.value] for role in self.roles],
            "operation": self.operation,
            "target": self.target,
            "context_instance": str(self.context_instance),
            "granted_at": self.granted_at,
            "request_id": self.request_id,
        }

    @classmethod
    def from_dict(cls, data: dict, record_id: int | None = None) -> "RetainedADIRecord":
        return cls(
            user_id=data["user_id"],
            roles=tuple(Role(rt, rv) for rt, rv in data["roles"]),
            operation=data["operation"],
            target=data["target"],
            context_instance=ContextName.parse(data["context_instance"]),
            granted_at=data["granted_at"],
            request_id=data["request_id"],
            record_id=record_id,
        )


@dataclass(slots=True)
class ADIMutation:
    """A buffered set of store mutations, committed only on grant.

    Section 4.2 note: "if the access request is denied, then no change
    needs to be made to the retained ADI database".  The engine builds one
    :class:`ADIMutation` per request and applies it atomically iff the
    final decision is a grant.
    """

    adds: list[RetainedADIRecord] = field(default_factory=list)
    purge_contexts: list[ContextName] = field(default_factory=list)

    @property
    def is_empty(self) -> bool:
        return not self.adds and not self.purge_contexts


class RetainedADIStore:
    """Abstract interface every retained-ADI backend implements."""

    def add(self, record: RetainedADIRecord) -> RetainedADIRecord:
        """Persist one record, returning it with ``record_id`` assigned."""
        raise NotImplementedError

    def records(self) -> Iterator[RetainedADIRecord]:
        """Iterate over every retained record."""
        raise NotImplementedError

    def find(self, effective_context: ContextName) -> list[RetainedADIRecord]:
        """Records whose instance is equal/subordinate to the context."""
        raise NotImplementedError

    def find_user(
        self, user_id: str, effective_context: ContextName
    ) -> list[RetainedADIRecord]:
        """Like :meth:`find`, restricted to one user."""
        raise NotImplementedError

    def has_context(self, effective_context: ContextName) -> bool:
        """True when any record matches the context (step 3 existence)."""
        raise NotImplementedError

    def purge_context(self, effective_context: ContextName) -> int:
        """Delete all records matching the context; return the count."""
        raise NotImplementedError

    def purge_user(self, user_id: str) -> int:
        """Delete all records for a user (management port operation)."""
        raise NotImplementedError

    def purge_older_than(self, cutoff: float) -> int:
        """Delete records granted before ``cutoff`` (management port)."""
        raise NotImplementedError

    def clear(self) -> int:
        """Delete everything; return the number of deleted records."""
        raise NotImplementedError

    def count(self) -> int:
        raise NotImplementedError

    def close(self) -> None:
        """Release any underlying resources.  Idempotent."""

    # ------------------------------------------------------------------
    def apply(self, mutation: ADIMutation) -> int:
        """Apply a buffered mutation: purges first, then adds.

        Purge-before-add matters: a granted *last step* both terminates
        the context (purging its history) and must not leave its own
        record behind — step 7 deletes instead of storing.  The engine
        only puts adds and purges for *different* policies in one
        mutation, and purges always win for their own context.

        Returns the number of purged records.  Backends override this to
        make the whole mutation atomic (one decision = one transaction).
        """
        purged = 0
        for context in mutation.purge_contexts:
            purged += self.purge_context(context)
        for record in mutation.adds:
            self.add(record)
        return purged

    # Helper views used by the engine --------------------------------
    def user_roles(
        self, user_id: str, effective_context: ContextName
    ) -> frozenset[Role]:
        """Roles the user has historically activated in the context."""
        return frozenset(
            role
            for record in self.find_user(user_id, effective_context)
            for role in record.roles
        )

    def user_privilege_exercises(
        self, user_id: str, effective_context: ContextName
    ) -> list[Privilege]:
        """Privileges historically exercised, one entry per request.

        Records created from the same decision request (same
        ``request_id``) count as a single exercise of the operation/target
        pair.
        """
        seen_requests: set[str] = set()
        exercises: list[Privilege] = []
        for record in self.find_user(user_id, effective_context):
            if record.request_id in seen_requests:
                continue
            seen_requests.add(record.request_id)
            exercises.append(record.privilege)
        return exercises


class InMemoryRetainedADIStore(RetainedADIStore):
    """Retained ADI held in memory (paper Section 5.2).

    Records are indexed by user and by concrete context instance: the
    number of *distinct* active context instances is tiny compared to
    the record count, so context-scoped queries (the hot path of
    algorithm steps 3 and 7) touch only the matching instances' buckets
    instead of scanning every record.
    """

    def __init__(self, records: Iterable[RetainedADIRecord] = ()) -> None:
        self._records: dict[int, RetainedADIRecord] = {}
        self._by_user: dict[str, list[int]] = {}
        self._by_context: dict[ContextName, set[int]] = {}
        self._next_id = 1
        for record in records:
            self.add(record)

    def add(self, record: RetainedADIRecord) -> RetainedADIRecord:
        stored = RetainedADIRecord(
            user_id=record.user_id,
            roles=record.roles,
            operation=record.operation,
            target=record.target,
            context_instance=record.context_instance,
            granted_at=record.granted_at,
            request_id=record.request_id,
            record_id=self._next_id,
        )
        self._records[self._next_id] = stored
        self._by_user.setdefault(record.user_id, []).append(self._next_id)
        self._by_context.setdefault(record.context_instance, set()).add(
            self._next_id
        )
        self._next_id += 1
        return stored

    def records(self) -> Iterator[RetainedADIRecord]:
        return iter(list(self._records.values()))

    def _matching_contexts(
        self, effective_context: ContextName
    ) -> list[ContextName]:
        return [
            context
            for context in self._by_context
            if context.is_equal_or_subordinate_to(effective_context)
        ]

    def find(self, effective_context: ContextName) -> list[RetainedADIRecord]:
        found = []
        for context in self._matching_contexts(effective_context):
            found.extend(
                self._records[record_id]
                for record_id in self._by_context[context]
            )
        found.sort(key=lambda record: record.record_id)
        return found

    def find_user(
        self, user_id: str, effective_context: ContextName
    ) -> list[RetainedADIRecord]:
        ids = self._by_user.get(user_id, ())
        return [
            self._records[record_id]
            for record_id in ids
            if record_id in self._records
            and self._records[record_id].in_context(effective_context)
        ]

    def has_context(self, effective_context: ContextName) -> bool:
        return any(
            context.is_equal_or_subordinate_to(effective_context)
            for context in self._by_context
        )

    def _delete(self, record_id: int) -> None:
        record = self._records.pop(record_id)
        bucket = self._by_context.get(record.context_instance)
        if bucket is not None:
            bucket.discard(record_id)
            if not bucket:
                del self._by_context[record.context_instance]

    def purge_context(self, effective_context: ContextName) -> int:
        doomed = [
            record_id
            for context in self._matching_contexts(effective_context)
            for record_id in list(self._by_context[context])
        ]
        for record_id in doomed:
            self._delete(record_id)
        return len(doomed)

    def purge_user(self, user_id: str) -> int:
        ids = self._by_user.pop(user_id, [])
        removed = 0
        for record_id in ids:
            if record_id in self._records:
                self._delete(record_id)
                removed += 1
        return removed

    def purge_older_than(self, cutoff: float) -> int:
        doomed = [
            record_id
            for record_id, record in self._records.items()
            if record.granted_at < cutoff
        ]
        for record_id in doomed:
            self._delete(record_id)
        return len(doomed)

    def clear(self) -> int:
        removed = len(self._records)
        self._records.clear()
        self._by_user.clear()
        self._by_context.clear()
        return removed

    def count(self) -> int:
        return len(self._records)


class SQLiteRetainedADIStore(RetainedADIStore):
    """Retained ADI in a relational database (the Section 6 proposal).

    Records survive PDP restarts without replaying audit trails.  Context
    matching with ``*`` wildcards cannot be expressed as a plain SQL
    prefix query, so candidate rows are narrowed by user where possible
    and matched in Python; this keeps semantics identical across
    backends.
    """

    def __init__(self, path: str = ":memory:") -> None:
        try:
            self._conn = sqlite3.connect(path, check_same_thread=False)
        except sqlite3.Error as exc:  # pragma: no cover - environment issue
            raise StoreError(f"cannot open retained-ADI database {path!r}") from exc
        self._lock = threading.Lock()
        self._closed = False
        self._conn.execute(
            """
            CREATE TABLE IF NOT EXISTS retained_adi (
                record_id INTEGER PRIMARY KEY AUTOINCREMENT,
                user_id TEXT NOT NULL,
                context TEXT NOT NULL,
                payload TEXT NOT NULL,
                granted_at REAL NOT NULL
            )
            """
        )
        self._conn.execute(
            "CREATE INDEX IF NOT EXISTS idx_adi_user ON retained_adi(user_id)"
        )
        self._conn.execute(
            "CREATE INDEX IF NOT EXISTS idx_adi_context ON retained_adi(context)"
        )
        self._conn.commit()

    @staticmethod
    def _context_like_pattern(effective_context: ContextName) -> str:
        """A SQL LIKE *prefilter* for context matching.

        ``*`` components become ``%``; a trailing ``%`` admits
        subordinate instances.  LIKE wildcards can cross component
        boundaries, so matches are over-approximate — every candidate is
        re-checked precisely in Python — but the prefilter keeps the
        scan off rows in unrelated contexts.
        """
        if effective_context.is_root:
            return "%"
        parts = []
        for component in effective_context:
            escaped_type = (
                component.ctx_type.replace("\\", "\\\\")
                .replace("%", "\\%")
                .replace("_", "\\_")
            )
            if component.is_wildcard:
                parts.append(f"{escaped_type}=%")
            else:
                escaped_value = (
                    component.value.replace("\\", "\\\\")
                    .replace("%", "\\%")
                    .replace("_", "\\_")
                )
                parts.append(f"{escaped_type}={escaped_value}")
        return ", ".join(parts) + "%"

    def _ensure_open(self) -> None:
        if self._closed:
            raise StoreError("retained-ADI store is closed")

    def add(self, record: RetainedADIRecord) -> RetainedADIRecord:
        self._ensure_open()
        payload = json.dumps(record.to_dict(), sort_keys=True)
        with self._lock:
            cursor = self._conn.execute(
                "INSERT INTO retained_adi"
                " (user_id, context, payload, granted_at) VALUES (?, ?, ?, ?)",
                (
                    record.user_id,
                    str(record.context_instance),
                    payload,
                    record.granted_at,
                ),
            )
            self._conn.commit()
            record_id = cursor.lastrowid
        return RetainedADIRecord.from_dict(record.to_dict(), record_id=record_id)

    def _rows_to_records(self, rows: Iterable[tuple]) -> list[RetainedADIRecord]:
        return [
            RetainedADIRecord.from_dict(json.loads(payload), record_id=record_id)
            for record_id, payload in rows
        ]

    def records(self) -> Iterator[RetainedADIRecord]:
        self._ensure_open()
        with self._lock:
            rows = self._conn.execute(
                "SELECT record_id, payload FROM retained_adi ORDER BY record_id"
            ).fetchall()
        return iter(self._rows_to_records(rows))

    def _candidate_rows(self, effective_context: ContextName) -> list[tuple]:
        pattern = self._context_like_pattern(effective_context)
        with self._lock:
            return self._conn.execute(
                "SELECT record_id, payload FROM retained_adi"
                " WHERE context LIKE ? ESCAPE '\\' ORDER BY record_id",
                (pattern,),
            ).fetchall()

    def find(self, effective_context: ContextName) -> list[RetainedADIRecord]:
        self._ensure_open()
        return [
            record
            for record in self._rows_to_records(
                self._candidate_rows(effective_context)
            )
            if record.in_context(effective_context)
        ]

    def find_user(
        self, user_id: str, effective_context: ContextName
    ) -> list[RetainedADIRecord]:
        self._ensure_open()
        pattern = self._context_like_pattern(effective_context)
        with self._lock:
            rows = self._conn.execute(
                "SELECT record_id, payload FROM retained_adi"
                " WHERE user_id = ? AND context LIKE ? ESCAPE '\\'"
                " ORDER BY record_id",
                (user_id, pattern),
            ).fetchall()
        return [
            record
            for record in self._rows_to_records(rows)
            if record.in_context(effective_context)
        ]

    def has_context(self, effective_context: ContextName) -> bool:
        self._ensure_open()
        pattern = self._context_like_pattern(effective_context)
        with self._lock:
            cursor = self._conn.execute(
                "SELECT context FROM retained_adi"
                " WHERE context LIKE ? ESCAPE '\\'",
                (pattern,),
            )
            # Lazy scan with early exit: the LIKE prefilter rarely admits
            # false positives, so the first candidate usually decides.
            for (context,) in cursor:
                if ContextName.parse(context).is_equal_or_subordinate_to(
                    effective_context
                ):
                    return True
        return False

    def purge_context(self, effective_context: ContextName) -> int:
        doomed = [record.record_id for record in self.find(effective_context)]
        if not doomed:
            return 0
        with self._lock:
            self._conn.executemany(
                "DELETE FROM retained_adi WHERE record_id = ?",
                [(record_id,) for record_id in doomed],
            )
            self._conn.commit()
        return len(doomed)

    def purge_user(self, user_id: str) -> int:
        self._ensure_open()
        with self._lock:
            cursor = self._conn.execute(
                "DELETE FROM retained_adi WHERE user_id = ?", (user_id,)
            )
            self._conn.commit()
        return cursor.rowcount

    def purge_older_than(self, cutoff: float) -> int:
        self._ensure_open()
        with self._lock:
            cursor = self._conn.execute(
                "DELETE FROM retained_adi WHERE granted_at < ?", (cutoff,)
            )
            self._conn.commit()
        return cursor.rowcount

    def clear(self) -> int:
        self._ensure_open()
        with self._lock:
            cursor = self._conn.execute("DELETE FROM retained_adi")
            self._conn.commit()
        return cursor.rowcount

    def count(self) -> int:
        self._ensure_open()
        with self._lock:
            (total,) = self._conn.execute(
                "SELECT COUNT(*) FROM retained_adi"
            ).fetchone()
        return total

    def apply(self, mutation: ADIMutation) -> int:
        """Apply the whole mutation in ONE SQLite transaction.

        A decision's purges and adds either all land or none do, even if
        the process dies mid-commit — the property the audit-trail
        recovery path otherwise has to repair.
        """
        self._ensure_open()
        doomed = [
            record.record_id
            for context in mutation.purge_contexts
            for record in self.find(context)
        ]
        with self._lock:
            try:
                with self._conn:  # implicit BEGIN ... COMMIT/ROLLBACK
                    self._conn.executemany(
                        "DELETE FROM retained_adi WHERE record_id = ?",
                        [(record_id,) for record_id in doomed],
                    )
                    self._conn.executemany(
                        "INSERT INTO retained_adi"
                        " (user_id, context, payload, granted_at)"
                        " VALUES (?, ?, ?, ?)",
                        [
                            (
                                record.user_id,
                                str(record.context_instance),
                                json.dumps(record.to_dict(), sort_keys=True),
                                record.granted_at,
                            )
                            for record in mutation.adds
                        ],
                    )
            except sqlite3.Error as exc:
                raise StoreError(f"mutation failed atomically: {exc}") from exc
        return len(doomed)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._conn.close()


def store_digest(store: RetainedADIStore) -> tuple:
    """A hashable snapshot of a store's contents, for invariant tests.

    Property tests assert that a denied request leaves the digest
    unchanged (the Section 4.2 note).
    """
    return tuple(
        sorted(
            (
                record.user_id,
                tuple(sorted(str(role) for role in record.roles)),
                record.operation,
                record.target,
                str(record.context_instance),
                record.request_id,
            )
            for record in store.records()
        )
    )

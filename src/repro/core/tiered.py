"""Tiered retained-ADI storage: hot in-memory aggregates over a warm layer.

Every earlier backend keeps one resident aggregate per user *forever*:
the in-memory store by construction, the SQLite store through its
lazily-built lock-step index (``_ensure_index_locked`` loads every row).
Memory therefore grows with **total** users — fatal for a bank-scale
deployment where 10^6 users exist but only a few percent are active in
any window.

:class:`TieredADIStore` splits the store in two:

* **warm layer** — any :class:`~repro.core.retained_adi.RetainedADIStore`
  (in practice SQLite) holding *every* record.  It is the authoritative
  layer: it assigns record ids, and every mutation commits there first,
  atomically, before any hot state changes.
* **hot layer** — per-user aggregate entries (the same
  :class:`~repro.core.retained_adi._ContextBucket` structures the
  resident stores use), sharded by ``crc32(user_id)`` with per-shard
  LRU eviction bounded by ``hot_users``.  A cold user's entry is
  **lazily hydrated** from the warm layer on first touch, under that
  user's shard lock; inactive users are evicted without any write-back
  (the warm layer already holds their records), so RSS scales with the
  *active* set.

Context presence (algorithm step 3/7 existence checks) is answered from
a store-wide ``context → record count`` aggregate, seeded once from the
warm layer's ``context_counts()`` and maintained incrementally — it is
bounded by the number of distinct concrete contexts, not by users, and
never touches the warm layer on the hot path.

**Consistency discipline.**  All mutations serialize on one store-wide
write lock and commit to the warm layer first; hot updates after the
commit are *idempotent* (guarded by record id), so a hydration racing
between the warm commit and the hot update — possible because hydration
runs under only the user's shard lock — can never double-count a
record.  Reads of one user (including hydration itself) serialize on
that user's shard lock, so a concurrent decide can never observe a
partially-hydrated aggregate; reads of distinct users on different
shards proceed concurrently.  Lock order is always shard → warm (reads)
or write → warm, then write → shard (mutations); the warm layer never
calls back into the tier, so the order is acyclic.

When the warm layer itself may be behind (e.g. rebuilt from an older
snapshot), an optional ``hydrator`` callable runs — still under the
user's shard lock — before the warm read, typically replaying the
audit trail for that user via
:func:`repro.audit.recovery.recover_retained_adi` with a
``user_filter``.  See ``docs/SCALE.md``.
"""

from __future__ import annotations

import threading
import zlib
from collections import OrderedDict
from contextlib import contextmanager
from typing import Callable, Iterable, Iterator

from repro.core.constraints import Privilege, Role
from repro.core.context import ContextName
from repro.core.retained_adi import (
    ADIApplyOutcome,
    ADIMutation,
    RetainedADIRecord,
    RetainedADIStore,
    _ContextBucket,
)
from repro.errors import StoreError

_ROOT = ContextName.root()

#: Memo-size guards, matching ``_UserContextIndex``'s discipline.
_PRESENCE_LIMIT = 4096
_ECTX_CACHE_LIMIT = 1024


class _HotUserEntry:
    """One resident user's aggregates: buckets per concrete context.

    The bucket structures are shared with the resident stores; what
    differs is the maintenance discipline: adds and removes are
    **idempotent** (keyed by record id) because a mutation's hot update
    may race a hydration that already read the committed warm state.
    """

    __slots__ = ("buckets", "_ectx_cache")

    def __init__(self) -> None:
        self.buckets: dict[ContextName, _ContextBucket] = {}
        self._ectx_cache: dict[ContextName, list[_ContextBucket]] = {}

    def add(self, record: RetainedADIRecord) -> bool:
        context = record.context_instance
        bucket = self.buckets.get(context)
        if bucket is not None and record.record_id in bucket.records:
            return False  # hydration already saw this committed record
        if bucket is None:
            bucket = self.buckets[context] = _ContextBucket()
            for effective, buckets in self._ectx_cache.items():
                if effective.matcher.matches(context):
                    buckets.append(bucket)
        bucket.add(record)
        return True

    def remove(self, record: RetainedADIRecord) -> bool:
        context = record.context_instance
        bucket = self.buckets.get(context)
        if bucket is None or record.record_id not in bucket.records:
            return False  # hydrated after the warm delete: already gone
        bucket.remove(record)
        if not bucket.records:
            del self.buckets[context]
            # Bucket deletions are rare; drop the memo for lazy rebuild
            # rather than surgically pruning every cached list.
            self._ectx_cache = {}
        return True

    def clear_memos(self) -> None:
        self._ectx_cache = {}

    def matching_buckets(
        self, effective_context: ContextName
    ) -> list[_ContextBucket]:
        cache = self._ectx_cache
        buckets = cache.get(effective_context)
        if buckets is None:
            if len(cache) >= _ECTX_CACHE_LIMIT:
                cache.clear()
            matches = effective_context.matcher.matches
            buckets = cache[effective_context] = [
                bucket
                for context, bucket in self.buckets.items()
                if matches(context)
            ]
        return buckets

    def records(self) -> list[RetainedADIRecord]:
        found: list[RetainedADIRecord] = []
        for bucket in self.buckets.values():
            found.extend(bucket.records.values())
        found.sort(key=lambda record: record.record_id)
        return found


class _HotShard:
    """One LRU shard of resident user entries plus its lock."""

    __slots__ = ("lock", "entries", "capacity", "evictions", "hydrations")

    def __init__(self, capacity: int) -> None:
        self.lock = threading.RLock()
        self.entries: "OrderedDict[str, _HotUserEntry]" = OrderedDict()
        self.capacity = capacity
        self.evictions = 0
        self.hydrations = 0


class TieredADIStore(RetainedADIStore):
    """Hot per-user aggregates with LRU eviction over a warm store.

    Parameters
    ----------
    warm:
        The authoritative backing store holding every record.  The
        tiered store never calls its resident-index paths
        (``has_context`` / ``user_roles`` / ``user_privilege_exercises``)
        — those would pull every user into memory and defeat the tier.
        Pair a SQLite warm layer with ``max_row_cache`` so its row
        cache stays bounded too.
    hot_users:
        Total resident-user budget, split across the shards.  The
        hot layer holds at most this many user entries; the LRU tail
        is evicted (no write-back needed) as new users hydrate.
    shards:
        Hot-layer lock shards.  Reads and hydrations of users on
        different shards proceed concurrently.
    hydrator:
        Optional ``hydrator(user_id)`` invoked under the user's shard
        lock immediately before a hydration reads the warm layer; use
        it to bring a lagging warm layer up to date from the audit
        trail (see :func:`repro.audit.recovery.recover_retained_adi`).
    owns_warm:
        When true, :meth:`close` closes the warm store too (set by
        the spec-driven builder in :mod:`repro.api`).
    """

    def __init__(
        self,
        warm: RetainedADIStore,
        *,
        hot_users: int = 10_000,
        shards: int = 8,
        hydrator: Callable[[str], None] | None = None,
        owns_warm: bool = False,
    ) -> None:
        if hot_users < 1:
            raise StoreError("tiered store needs hot_users >= 1")
        if shards < 1:
            raise StoreError("tiered store needs shards >= 1")
        if isinstance(warm, TieredADIStore):
            raise StoreError("tiered warm layer must not itself be tiered")
        shards = min(shards, hot_users)
        self._warm = warm
        self._hydrator = hydrator
        self._owns_warm = owns_warm
        self._hot_users = hot_users
        base, extra = divmod(hot_users, shards)
        self._shards = [
            _HotShard(base + (1 if index < extra else 0))
            for index in range(shards)
        ]
        self._write_lock = threading.RLock()
        self._meta_lock = threading.Lock()
        self._context_counts: dict[ContextName, int] = dict(
            warm.context_counts()
        )
        self._presence: dict[ContextName, bool] = {}

    # -- sharding ------------------------------------------------------
    def _shard_for(self, user_id: str) -> _HotShard:
        return self._shards[
            zlib.crc32(user_id.encode("utf-8")) % len(self._shards)
        ]

    def _entry_locked(self, shard: _HotShard, user_id: str) -> _HotUserEntry:
        """Fetch-or-hydrate one user's entry.  Caller holds the shard lock.

        Hydration — including the optional audit-trail ``hydrator`` and
        the warm read — happens entirely under the shard lock, so a
        concurrent reader of the same user blocks until the aggregate
        is complete rather than observing a partially-built one.
        """
        entry = shard.entries.get(user_id)
        if entry is not None:
            shard.entries.move_to_end(user_id)
            return entry
        if self._hydrator is not None:
            self._hydrator(user_id)
        entry = _HotUserEntry()
        for record in self._warm.find_user(user_id, _ROOT):
            entry.add(record)
        shard.entries[user_id] = entry
        shard.hydrations += 1
        while len(shard.entries) > shard.capacity:
            shard.entries.popitem(last=False)
            shard.evictions += 1
        return entry

    # -- context-presence aggregate -----------------------------------
    def _note_added_locked(self, context: ContextName) -> None:
        count = self._context_counts.get(context, 0)
        self._context_counts[context] = count + 1
        if count == 0:
            presence = self._presence
            if presence:
                for effective, present in presence.items():
                    if not present and effective.matcher.matches(context):
                        presence[effective] = True

    def _note_removed_locked(self, context: ContextName) -> None:
        count = self._context_counts.get(context, 0)
        if count > 1:
            self._context_counts[context] = count - 1
            return
        self._context_counts.pop(context, None)
        presence = self._presence
        if presence:
            stale = [
                effective
                for effective, present in presence.items()
                if present and effective.matcher.matches(context)
            ]
            for effective in stale:
                del presence[effective]

    # -- interface: reads ---------------------------------------------
    def has_context(self, effective_context: ContextName) -> bool:
        with self._meta_lock:
            presence = self._presence
            present = presence.get(effective_context)
            if present is None:
                if len(presence) >= _PRESENCE_LIMIT:
                    presence.clear()
                matches = effective_context.matcher.matches
                present = presence[effective_context] = any(
                    matches(context) for context in self._context_counts
                )
            return present

    def user_roles(
        self, user_id: str, effective_context: ContextName
    ) -> frozenset[Role]:
        shard = self._shard_for(user_id)
        with shard.lock:
            entry = self._entry_locked(shard, user_id)
            roles: set[Role] = set()
            for bucket in entry.matching_buckets(effective_context):
                roles.update(bucket.role_counts)
            return frozenset(roles)

    def user_privilege_exercises(
        self, user_id: str, effective_context: ContextName
    ) -> list[Privilege]:
        shard = self._shard_for(user_id)
        with shard.lock:
            entry = self._entry_locked(shard, user_id)
            entries: list[tuple[int, str, Privilege]] = []
            for bucket in entry.matching_buckets(effective_context):
                entries.extend(
                    (record_id, request_id, privilege)
                    for request_id, (
                        record_id,
                        privilege,
                    ) in bucket.exercises.items()
                )
        entries.sort()
        seen_requests: set[str] = set()
        exercises: list[Privilege] = []
        for _, request_id, privilege in entries:
            if request_id in seen_requests:
                continue
            seen_requests.add(request_id)
            exercises.append(privilege)
        return exercises

    def find_user(
        self, user_id: str, effective_context: ContextName
    ) -> list[RetainedADIRecord]:
        shard = self._shard_for(user_id)
        with shard.lock:
            entry = self._entry_locked(shard, user_id)
            found: list[RetainedADIRecord] = []
            for bucket in entry.matching_buckets(effective_context):
                found.extend(bucket.records.values())
        found.sort(key=lambda record: record.record_id)
        return found

    def find(self, effective_context: ContextName) -> list[RetainedADIRecord]:
        return self._warm.find(effective_context)

    def records(self) -> Iterator[RetainedADIRecord]:
        return self._warm.records()

    def count(self) -> int:
        return self._warm.count()

    def context_counts(self) -> dict[ContextName, int]:
        with self._meta_lock:
            return dict(self._context_counts)

    # -- interface: mutations -----------------------------------------
    def _absorb_outcome_locked(self, outcome: ADIApplyOutcome) -> None:
        """Fold one committed warm mutation into the hot/meta layers.

        Caller holds the write lock, so no other mutation interleaves;
        per-user updates take the shard lock and are idempotent, which
        makes them safe against hydrations that already read the
        committed warm state.
        """
        with self._meta_lock:
            for record in outcome.purged_records:
                self._note_removed_locked(record.context_instance)
            for record in outcome.added:
                self._note_added_locked(record.context_instance)
        by_user: dict[
            str, tuple[list[RetainedADIRecord], list[RetainedADIRecord]]
        ] = {}
        for record in outcome.purged_records:
            by_user.setdefault(record.user_id, ([], []))[0].append(record)
        for record in outcome.added:
            by_user.setdefault(record.user_id, ([], []))[1].append(record)
        for user_id, (removed, added) in by_user.items():
            shard = self._shard_for(user_id)
            with shard.lock:
                entry = shard.entries.get(user_id)
                if entry is None:
                    continue  # cold user: warm already holds the truth
                shard.entries.move_to_end(user_id)
                for record in removed:
                    entry.remove(record)
                for record in added:
                    entry.add(record)

    def apply_detailed(self, mutation: ADIMutation) -> ADIApplyOutcome:
        with self._write_lock:
            outcome = self._warm.apply_detailed(mutation)
            self._absorb_outcome_locked(outcome)
        return outcome

    def add(self, record: RetainedADIRecord) -> RetainedADIRecord:
        with self._write_lock:
            stored = self._warm.add(record)
            self._absorb_outcome_locked(ADIApplyOutcome(0, [], [stored]))
        return stored

    def purge_context(self, effective_context: ContextName) -> int:
        return self.apply_detailed(
            ADIMutation(purge_contexts=[effective_context])
        ).purged

    def purge_user(self, user_id: str) -> int:
        with self._write_lock:
            shard = self._shard_for(user_id)
            with shard.lock:
                doomed = self._warm.find_user(user_id, _ROOT)
                purged = self._warm.purge_user(user_id)
                shard.entries.pop(user_id, None)
            with self._meta_lock:
                for record in doomed:
                    self._note_removed_locked(record.context_instance)
        return purged

    def purge_older_than(self, cutoff: float) -> int:
        with self._write_lock:
            doomed = [
                record
                for record in self._warm.records()
                if record.granted_at < cutoff
            ]
            purged = self._warm.purge_older_than(cutoff)
            self._absorb_outcome_locked(ADIApplyOutcome(purged, doomed, []))
        return purged

    def clear(self) -> int:
        with self._write_lock:
            removed = self._warm.clear()
            for shard in self._shards:
                with shard.lock:
                    shard.entries.clear()
            with self._meta_lock:
                self._context_counts = {}
                self._presence = {}
        return removed

    # -- lifecycle / plumbing -----------------------------------------
    @contextmanager
    def batch(self):
        with self._warm.batch():
            yield self

    def invalidate_policy_memos(self) -> None:
        self._warm.invalidate_policy_memos()
        with self._meta_lock:
            # Rebind, not clear: a concurrent query iterating the old
            # memo finishes against it undisturbed (same discipline as
            # _UserContextIndex.clear_memos).
            self._presence = {}
        for shard in self._shards:
            with shard.lock:
                for entry in shard.entries.values():
                    entry.clear_memos()

    def stats(self) -> dict:
        resident = 0
        evictions = 0
        hydrations = 0
        for shard in self._shards:
            with shard.lock:
                resident += len(shard.entries)
                evictions += shard.evictions
                hydrations += shard.hydrations
        warm_stats = self._warm.stats()
        return {
            "backend": "tiered",
            "records": warm_stats["records"],
            "resident_users": resident,
            "evictions": evictions,
            "hydrations": hydrations,
            "hot_capacity": self._hot_users,
            "hot_shards": len(self._shards),
            "warm": warm_stats,
        }

    @property
    def warm(self) -> RetainedADIStore:
        """The authoritative backing store (test/management access)."""
        return self._warm

    def resident_users(self) -> list[str]:
        """User ids currently resident in the hot layer (for tests)."""
        users: list[str] = []
        for shard in self._shards:
            with shard.lock:
                users.extend(shard.entries)
        return users

    def close(self) -> None:
        if self._owns_warm:
            self._warm.close()

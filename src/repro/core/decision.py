"""Decision request/response types exchanged between PEP and PDP.

Section 4.1 lists the parameters the AEF/PEP must pass to the ADF/PDP for
an MSoD-capable RBAC decision:

1. the user's attributes/roles — with the user's ID now *mandatory*, so
   that the PDP can link the user's sessions together;
2. the requested operation and its parameters;
3. the requested target object;
4. environmental/contextual information (e.g. time of day);
5. the business-context instance (kept as a separate parameter because
   the hierarchical matching rules of Section 4.2 apply to it).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from repro.core.constraints import Privilege, Role
from repro.core.context import ContextName
from repro.errors import PolicyError

if TYPE_CHECKING:  # avoid a hard dependency of core on the obs layer
    from repro.core.retained_adi import RetainedADIRecord
    from repro.obs.trace import DecisionTrace

_REQUEST_COUNTER = itertools.count(1)


def next_request_id() -> str:
    """A process-unique identifier for a decision request."""
    return f"req-{next(_REQUEST_COUNTER):08d}"


@dataclass(frozen=True, slots=True)
class DecisionRequest:
    """One access-control decision request (the five Section 4.1 inputs)."""

    user_id: str
    roles: tuple[Role, ...]
    operation: str
    target: str
    context_instance: ContextName
    timestamp: float = 0.0
    environment: Mapping[str, str] = field(default_factory=dict)
    request_id: str = field(default_factory=next_request_id)

    def __post_init__(self) -> None:
        if not self.user_id:
            raise PolicyError(
                "MSoD decisions require the user's ID (paper Section 4.1)"
            )
        if not self.context_instance.is_concrete:
            raise PolicyError(
                "the business-context instance passed by the PEP must be "
                f"concrete, got {self.context_instance}"
            )

    @property
    def privilege(self) -> Privilege:
        return Privilege(self.operation, self.target)


class Effect:
    """Decision outcomes."""

    GRANT = "grant"
    DENY = "deny"


@dataclass(frozen=True, slots=True)
class MSoDViolation:
    """Details of the constraint that triggered a deny."""

    policy_id: str
    #: A registry key from :data:`repro.core.constraints.CONSTRAINT_KINDS`
    #: ("MMER", "MMEP", "MMCD", "ADMIN_BOUNDARY", ...).  Free-form on the
    #: wire so new kinds are additive for v1/v2 peers.
    constraint_kind: str
    constraint_repr: str
    effective_context: ContextName
    detail: str


@dataclass(frozen=True, slots=True)
class Decision:
    """The PDP's answer, with MSoD diagnostics for auditing.

    ``adi_adds`` and ``adi_purged_contexts`` expose the retained-ADI
    mutation the grant committed, so the PERMIS PDP can log it to the
    secure audit trail and recovery can replay it (Section 5.2).

    ``policy_epoch`` and ``policy_digest`` identify the policy version
    (see :mod:`repro.core.policy_epoch`) the decision was evaluated
    under.  A decision is evaluated wholly under one version — the
    engine reads its active version once per request — so recovery and
    standby replay can re-apply it under the policy that produced it.
    The defaults (``0`` / ``""``) only appear on decisions deserialised
    from pre-epoch payloads.

    ``trace`` is the optional observability annotation: a
    :class:`~repro.obs.trace.DecisionTrace` attached by an enabled
    :class:`~repro.obs.trace.DecisionTracer`.  It is metadata about
    *how* the decision was computed, not part of the decision itself,
    so it is excluded from equality — decisions are bit-identical with
    tracing on or off.
    """

    effect: str
    request: DecisionRequest
    violation: MSoDViolation | None = None
    matched_policy_ids: tuple[str, ...] = ()
    records_added: int = 0
    records_purged: int = 0
    reason: str = ""
    adi_adds: tuple[RetainedADIRecord, ...] = ()
    adi_purged_contexts: tuple[ContextName, ...] = ()
    policy_epoch: int = 0
    policy_digest: str = ""
    trace: DecisionTrace | None = field(default=None, compare=False)

    @property
    def granted(self) -> bool:
        return self.effect == Effect.GRANT

    @property
    def denied(self) -> bool:
        return self.effect == Effect.DENY

    def __str__(self) -> str:
        verdict = self.effect.upper()
        core = (
            f"{verdict} {self.request.user_id} {self.request.operation}"
            f"@{self.request.target} [{self.request.context_instance}]"
        )
        if self.violation is not None:
            core += f" ({self.violation.constraint_kind}: {self.violation.detail})"
        return core

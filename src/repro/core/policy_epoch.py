"""Versioned policy epochs: content digests, swap reports, epoch history.

The MSoD engine can hot-swap its policy set without restarting
(:meth:`~repro.core.engine.MSoDEngine.swap_policy`).  Every active policy
set is identified by a **policy version**: a monotonically increasing
``epoch`` (starting at :data:`INITIAL_EPOCH`) plus a content ``digest``
over a canonical serialisation of the set.  The digest makes reloads
idempotent — re-applying a byte-different file with identical semantics
is detected as a no-op and leaves compiled indexes and memos warm —
while the epoch totally orders the versions a long-lived process has
enforced.

Decisions, traces and audit-trail records are stamped with the epoch and
digest they were evaluated under, and :class:`PolicyEpochLog` keeps a
bounded ``epoch -> policy set`` history so recovery and standby replay
can re-apply each historical decision under the policy that produced it
(see :func:`repro.audit.recovery.recover_retained_adi`).

:class:`CompiledPolicyMatcher` is the per-epoch compiled form of step-1
matching: the leading-type dispatch table and every policy context's
compiled matcher are built **once** at swap time (not lazily on the hot
path), fronted by a bounded instance → matched-policies memo.  The
compiled matcher is stamped with the epoch and digest it was built from
and rides in the engine's one active tuple, so a hot reload atomically
replaces compiled state together with the policy set itself.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Callable

from repro.core.context import ContextName
from repro.core.policy import MSoDPolicy, MSoDPolicySet
from repro.errors import PolicyError

#: The epoch of the policy set an engine was constructed with.
INITIAL_EPOCH = 1


def _canonical_policy(policy: MSoDPolicy) -> dict:
    """A JSON-able canonical form of one policy.

    Constraint members are sorted (MMER roles and MMEP privileges are
    set/multiset-valued), but policy order is preserved by the caller:
    step-1 matching reports policies in set order.

    Extension-kind constraints are emitted under a ``constraints`` key
    **only when present**, through each kind's ``canonical()`` form:
    a policy set without them serialises exactly as it did before the
    pluggable-kind redesign, so existing digests are stable across the
    upgrade.
    """
    canonical = {
        "id": policy.policy_id,
        "context": str(policy.business_context),
        "mmers": [
            [sorted(str(role) for role in mmer.roles), mmer.forbidden_cardinality]
            for mmer in policy.mmers
        ],
        "mmeps": [
            [
                sorted(str(privilege) for privilege in mmep.privileges),
                mmep.forbidden_cardinality,
            ]
            for mmep in policy.mmeps
        ],
        "first": str(policy.first_step) if policy.first_step else None,
        "last": str(policy.last_step) if policy.last_step else None,
    }
    if policy.extra_constraints:
        canonical["constraints"] = [
            constraint.canonical() for constraint in policy.extra_constraints
        ]
    return canonical


def policy_set_digest(policy_set: MSoDPolicySet) -> str:
    """SHA-256 content digest of a policy set's canonical serialisation.

    Two sets digest equal iff they enforce the same policies in the same
    order — whitespace, comments and attribute ordering in the source
    XML do not affect it.
    """
    canonical = json.dumps(
        [_canonical_policy(policy) for policy in policy_set],
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class CompiledPolicyMatcher:
    """Step-1 matching compiled once per policy epoch.

    The compilation is a two-level automaton over context names:

    1. *leading-type dispatch* — an instance ``T=v, ...`` can only match
       policies whose context is universal or starts with type ``T``, so
       the first transition is one dict lookup on the leading component
       type;
    2. *per-policy compiled matchers* — each bucket holds
       ``(compiled_matcher, policy)`` pairs with the
       :class:`~repro.core.context._CompiledMatcher` prebound, so the
       wildcard-aware prefix test runs as tuple-slice comparisons with
       no per-call attribute traffic or lazy compilation.

    Results are memoized per concrete instance (bounded; the map resets
    when full — request streams draw from a small set of live business
    contexts, so steady state is one dict hit per decision).  The object
    is immutable except for the memo, whose benign races (a lost insert,
    a concurrent reset) only cost a recomputation — safe for the
    multi-threaded embedders the engine supports.

    Stamped with the ``epoch``/``digest`` it was built from; the engine
    swaps it atomically with the policy set inside one tuple assignment,
    which is what keeps hot-reload invalidation of compiled state atomic.
    """

    __slots__ = (
        "epoch",
        "digest",
        "_root",
        "_buckets",
        "_memo",
        "_memo_limit",
        "_kind_counts",
    )

    def __init__(
        self,
        policy_set: MSoDPolicySet,
        epoch: int,
        digest: str,
        memo_limit: int = 4096,
    ) -> None:
        self.epoch = epoch
        self.digest = digest
        self._memo_limit = memo_limit
        self._memo: dict[ContextName, tuple[MSoDPolicy, ...]] = {}
        policies = tuple(policy_set)
        # Per-kind constraint census, precomputed at swap time so the
        # serving layer's `policy status` answers without a set scan.
        kind_counts: dict[str, int] = {}
        for policy in policies:
            for constraint in policy.constraints:
                kind_counts[constraint.kind] = (
                    kind_counts.get(constraint.kind, 0) + 1
                )
        self._kind_counts = kind_counts
        self._root = tuple(
            (policy.business_context.matcher, policy)
            for policy in policies
            if policy.business_context.is_root
        )
        leading_types = {
            policy.business_context[0].ctx_type
            for policy in policies
            if not policy.business_context.is_root
        }
        # Universal-context policies merged into every bucket, preserving
        # set order (step 1: "all policies apply and are selected").
        self._buckets = {
            ctx_type: tuple(
                (policy.business_context.matcher, policy)
                for policy in policies
                if policy.business_context.is_root
                or policy.business_context[0].ctx_type == ctx_type
            )
            for ctx_type in leading_types
        }

    def matching(self, instance: ContextName) -> tuple[MSoDPolicy, ...]:
        """All policies applying to ``instance``, in set order.

        Equivalent to :meth:`MSoDPolicySet.matching` under the epoch
        this matcher was compiled for.
        """
        memo = self._memo
        matched = memo.get(instance)
        if matched is not None:
            return matched
        if instance.is_root:
            bucket = self._root
        else:
            bucket = self._buckets.get(
                instance.component_types[0], self._root
            )
        matched = tuple(
            policy for matcher, policy in bucket if matcher.matches(instance)
        )
        if len(memo) >= self._memo_limit:
            memo.clear()
        memo[instance] = matched
        return matched

    def memo_size(self) -> int:
        return len(self._memo)

    @property
    def constraint_kind_counts(self) -> dict[str, int]:
        """Constraint count per registry kind across the compiled set."""
        return dict(self._kind_counts)


@dataclass(frozen=True, slots=True)
class PolicyVersion:
    """One enforced policy version: epoch, content digest, set size."""

    epoch: int
    digest: str
    policies: int

    def to_dict(self) -> dict:
        return {
            "epoch": self.epoch,
            "digest": self.digest,
            "policies": self.policies,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PolicyVersion":
        epoch = data.get("epoch")
        digest = data.get("digest")
        policies = data.get("policies")
        if not isinstance(epoch, int) or isinstance(epoch, bool) or epoch < 0:
            raise PolicyError(f"policy version epoch must be an int, got {epoch!r}")
        if not isinstance(digest, str):
            raise PolicyError("policy version digest must be a string")
        if not isinstance(policies, int) or isinstance(policies, bool):
            raise PolicyError("policy version size must be an int")
        return cls(epoch=epoch, digest=digest, policies=policies)

    def __str__(self) -> str:
        return f"epoch {self.epoch} ({self.digest[:12]}, {self.policies} policies)"


@dataclass(frozen=True, slots=True)
class PolicySwapReport:
    """The outcome of one :meth:`MSoDEngine.swap_policy` call.

    ``changed`` is ``False`` for a digest no-op: the offered set is
    semantically identical to the active one, so the epoch did not
    advance and no caches were invalidated.  ``findings`` carries the
    analyzer's non-fatal lint output (errors raise instead).
    """

    version: PolicyVersion
    previous: PolicyVersion
    changed: bool
    findings: tuple[str, ...] = ()

    def to_dict(self) -> dict:
        return {
            "version": self.version.to_dict(),
            "previous": self.previous.to_dict(),
            "changed": self.changed,
            "findings": list(self.findings),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PolicySwapReport":
        version = data.get("version")
        previous = data.get("previous")
        changed = data.get("changed")
        findings = data.get("findings", [])
        if not isinstance(version, dict) or not isinstance(previous, dict):
            raise PolicyError("swap report versions must be mappings")
        if not isinstance(changed, bool):
            raise PolicyError("swap report 'changed' must be a bool")
        if not isinstance(findings, list) or not all(
            isinstance(item, str) for item in findings
        ):
            raise PolicyError("swap report findings must be a list of strings")
        return cls(
            version=PolicyVersion.from_dict(version),
            previous=PolicyVersion.from_dict(previous),
            changed=changed,
            findings=tuple(findings),
        )


class PolicyEpochLog:
    """Bounded ``epoch -> policy set`` history of one engine.

    Reloads are administrative events, so the history is small; the
    bound only guards a pathological reload loop.  Eviction drops the
    oldest epochs first — exactly the ones whose audited decisions have
    long been purged or checkpointed past.
    """

    __slots__ = ("_limit", "_entries")

    def __init__(self, limit: int = 64) -> None:
        if limit < 1:
            raise PolicyError("PolicyEpochLog limit must be >= 1")
        self._limit = limit
        # Insertion-ordered: epochs only ever grow.
        self._entries: dict[int, tuple[MSoDPolicySet, str]] = {}

    def record(
        self, epoch: int, policy_set: MSoDPolicySet, digest: str
    ) -> None:
        self._entries[epoch] = (policy_set, digest)
        while len(self._entries) > self._limit:
            oldest = next(iter(self._entries))
            del self._entries[oldest]

    def resolve(self, epoch: int) -> MSoDPolicySet | None:
        """The policy set enforced at ``epoch``, if still remembered."""
        entry = self._entries.get(epoch)
        return entry[0] if entry is not None else None

    def forget_after(self, epoch: int) -> None:
        """Erase entries for epochs strictly greater than ``epoch``.

        Used by a rejected canary rollback: the staged candidate's
        epoch must not stay resolvable, or a later trail replay that
        resolves recorded epochs through this log could interpret
        history under a set that never served a decision.
        """
        for stale in [e for e in self._entries if e > epoch]:
            del self._entries[stale]

    @property
    def resolver(self) -> Callable[[int], MSoDPolicySet | None]:
        """:meth:`resolve` as a bare callable (for recovery plumbing)."""
        return self.resolve

    def versions(self) -> tuple[PolicyVersion, ...]:
        return tuple(
            PolicyVersion(epoch=epoch, digest=digest, policies=len(policy_set))
            for epoch, (policy_set, digest) in self._entries.items()
        )

    def __len__(self) -> int:
        return len(self._entries)

"""The MSoD enforcement engine: the 8-step algorithm of Section 4.2.

The engine is invoked by a PDP *after* its ordinary RBAC check has
returned an interim grant.  It evaluates every matching MSoD policy
against the retained ADI and either leaves the grant unaltered or turns
it into a deny.  Only granted requests mutate the retained ADI (the
Section 4.2 note), which the engine guarantees by buffering all store
mutations in an :class:`~repro.core.retained_adi.ADIMutation` and
committing it atomically iff the final decision is a grant.

Two evaluation modes are provided:

``strict`` (default)
    MMER/MMEP constraints are evaluated even on the request that *starts*
    a business-context instance.  This closes a corner case in the
    literal algorithm text: a user who simultaneously activates ``m``
    mutually exclusive roles in the very first in-context request would
    otherwise be granted (step 4 jumps straight to step 7, bypassing the
    constraint checks of steps 5 and 6).

``literal``
    Follows the published step order exactly — step 4 adds the
    context-starting record and jumps to step 7.  Kept for fidelity and
    for the ablation bench ``benchmarks/bench_algorithm_scaling.py``.
"""

from __future__ import annotations

import threading
import warnings
from typing import Iterable

from repro.core.constraints import AdminBoundary, Privilege
from repro.core.context import ContextName
from repro.core.decision import (
    Decision,
    DecisionRequest,
    Effect,
    MSoDViolation,
)
from repro.core.policy import MSoDPolicy, MSoDPolicySet
from repro.core.policy_epoch import (
    INITIAL_EPOCH,
    CompiledPolicyMatcher,
    PolicyEpochLog,
    PolicySwapReport,
    PolicyVersion,
    policy_set_digest,
)
from repro.core.retained_adi import (
    ADIMutation,
    ADIViewSnapshot,
    RetainedADIRecord,
    RetainedADIStore,
)
from repro.errors import PolicyError
from repro.obs.trace import NOOP_TRACER, DecisionTracer
from repro.perf import NOOP, PerfRecorder

#: Evaluation modes (see module docstring).
MODE_STRICT = "strict"
MODE_LITERAL = "literal"


class _AdminProbe:
    """Quacks like a DecisionRequest for admin-boundary evaluation.

    A management action carries no concrete business-context instance,
    so a real :class:`~repro.core.decision.DecisionRequest` cannot be
    built for it; boundary evaluation only reads ``user_id`` and
    ``privilege``.
    """

    __slots__ = ("user_id", "privilege")

    def __init__(self, user_id: str, privilege: Privilege) -> None:
        self.user_id = user_id
        self.privilege = privilege


class MSoDEngine:
    """Evaluates MSoD policies over a retained-ADI store."""

    def __init__(
        self,
        policy_set: MSoDPolicySet | None = None,
        store: RetainedADIStore | None = None,
        /,
        mode: str = MODE_STRICT,
        perf: PerfRecorder | None = None,
        tracer: DecisionTracer | None = None,
        **legacy,
    ) -> None:
        if legacy:
            unknown = set(legacy) - {"policy_set", "store"}
            if unknown:
                raise TypeError(
                    "MSoDEngine() got unexpected keyword argument(s) "
                    f"{sorted(unknown)}"
                )
            warnings.warn(
                "constructing MSoDEngine with policy_set=/store= keywords "
                "is deprecated; open a handle with repro.api.open_pdp "
                "instead (or pass them positionally)",
                DeprecationWarning,
                stacklevel=2,
            )
            if "policy_set" in legacy:
                if policy_set is not None:
                    raise TypeError("MSoDEngine() got policy_set twice")
                policy_set = legacy["policy_set"]
            if "store" in legacy:
                if store is not None:
                    raise TypeError("MSoDEngine() got store twice")
                store = legacy["store"]
        if policy_set is None or store is None:
            raise PolicyError(
                "MSoDEngine requires a policy set and a retained-ADI store"
            )
        if mode not in (MODE_STRICT, MODE_LITERAL):
            raise PolicyError(f"unknown engine mode {mode!r}")
        digest = policy_set_digest(policy_set)
        # The active policy version is one tuple, read exactly once at
        # the top of check(): a decision therefore evaluates wholly
        # under one version even while swap_policy runs concurrently.
        # The compiled step-1 matcher rides in the same tuple, so a swap
        # replaces policy set and compiled state in one assignment.
        self._active: tuple[MSoDPolicySet, int, str, CompiledPolicyMatcher] = (
            policy_set,
            INITIAL_EPOCH,
            digest,
            CompiledPolicyMatcher(policy_set, INITIAL_EPOCH, digest),
        )
        self._epoch_log = PolicyEpochLog()
        self._epoch_log.record(INITIAL_EPOCH, policy_set, digest)
        self._swap_lock = threading.Lock()
        self._store = store
        self._mode = mode
        self._perf = perf if perf is not None else NOOP
        self._tracer = tracer if tracer is not None else NOOP_TRACER

    # ------------------------------------------------------------------
    @property
    def policy_set(self) -> MSoDPolicySet:
        return self._active[0]

    @property
    def policy_epoch(self) -> int:
        """The monotonically increasing epoch of the active policy set."""
        return self._active[1]

    @property
    def policy_digest(self) -> str:
        """Content digest of the active policy set."""
        return self._active[2]

    def policy_version(self) -> PolicyVersion:
        """The active policy version as one consistent snapshot."""
        policy_set, epoch, digest, _ = self._active
        return PolicyVersion(epoch=epoch, digest=digest, policies=len(policy_set))

    @property
    def compiled_matcher(self) -> CompiledPolicyMatcher:
        """The step-1 matcher compiled for the active epoch."""
        return self._active[3]

    def policy_set_for_epoch(self, epoch: int) -> MSoDPolicySet | None:
        """The policy set enforced at ``epoch``, if still remembered."""
        return self._epoch_log.resolve(epoch)

    @property
    def epoch_log(self) -> PolicyEpochLog:
        return self._epoch_log

    @property
    def store(self) -> RetainedADIStore:
        return self._store

    @property
    def mode(self) -> str:
        return self._mode

    @property
    def perf(self) -> PerfRecorder:
        return self._perf

    @property
    def tracer(self) -> DecisionTracer:
        return self._tracer

    def swap_policy(
        self, policy_set: MSoDPolicySet, *, force: bool = False
    ) -> PolicySwapReport:
        """Atomically replace the active policy set (zero downtime).

        The new set is linted through the policy analyzer (errors raise
        :class:`~repro.errors.PolicyError`; warnings/infos are returned
        in the report).  A set whose content digest equals the active
        one is a **no-op**: the epoch does not advance and compiled
        indexes/memos stay warm — reloading the same file is idempotent.
        ``force=True`` advances the epoch even for an identical digest
        and overrides analyzer rejection (the error-severity findings
        are still returned in the report for the operator to see).

        A real swap invalidates the store's per-(user, effective-context)
        memos under the store's transaction discipline and installs the
        new ``(set, epoch, digest)`` tuple in one assignment, so no
        decision ever mixes two policy versions: requests already past
        the top of :meth:`check` finish under the old version, later
        requests see the new one.
        """
        from repro.verify.static import analyze_policy_set, render_findings

        report = analyze_policy_set(policy_set)
        if not report.ok and not force:
            raise PolicyError(
                "policy swap rejected: "
                + "; ".join(str(f) for f in report.errors)
            )
        rendered = render_findings(report)
        new_digest = policy_set_digest(policy_set)
        with self._swap_lock:
            _, epoch, digest, _ = self._active
            previous = self.policy_version()
            if new_digest == digest and not force:
                self._perf.incr("engine.policy_reload_noops")
                return PolicySwapReport(
                    version=previous,
                    previous=previous,
                    changed=False,
                    findings=rendered,
                )
            new_epoch = epoch + 1
            # Compile the new epoch's matcher before the store
            # transaction: decisions keep hitting the old compiled state
            # until the one-tuple swap below makes the new one visible.
            compiled = CompiledPolicyMatcher(policy_set, new_epoch, new_digest)
            with self._store.batch():
                self._store.invalidate_policy_memos()
                self._active = (policy_set, new_epoch, new_digest, compiled)
            self._epoch_log.record(new_epoch, policy_set, new_digest)
            self._perf.incr("engine.policy_reloads")
            return PolicySwapReport(
                version=PolicyVersion(
                    epoch=new_epoch,
                    digest=new_digest,
                    policies=len(policy_set),
                ),
                previous=previous,
                changed=True,
                findings=rendered,
            )

    def rollback_policy(
        self, policy_set: MSoDPolicySet, *, to_epoch: int
    ) -> None:
        """Restore ``policy_set`` as the active set at exactly ``to_epoch``.

        The inverse of a staged :meth:`swap_policy`: a rejected canary
        rollout must leave no trace in this engine's lineage, or a
        later replay that resolves recorded epochs through the epoch
        log could interpret history under the rejected candidate.
        Epoch-log entries above ``to_epoch`` are erased and the active
        tuple is restored under the same one-assignment discipline as a
        forward swap.  Callers must guarantee no decision was recorded
        under the epochs being erased (the cluster stages candidates
        only on non-deciding standbys).
        """
        new_digest = policy_set_digest(policy_set)
        with self._swap_lock:
            compiled = CompiledPolicyMatcher(policy_set, to_epoch, new_digest)
            with self._store.batch():
                self._store.invalidate_policy_memos()
                self._active = (policy_set, to_epoch, new_digest, compiled)
            self._epoch_log.forget_after(to_epoch)
            self._epoch_log.record(to_epoch, policy_set, new_digest)
            self._perf.incr("engine.policy_rollbacks")

    def replace_policy_set(self, policy_set: MSoDPolicySet) -> None:
        """Swap in a new policy set (PDP re-initialisation).

        Deprecated alias for :meth:`swap_policy` with ``force=True``
        (always advances the epoch, even for an identical digest).
        """
        self.swap_policy(policy_set, force=True)

    def admin_boundary_denial(
        self, user_id: str, privilege: Privilege
    ) -> str | None:
        """Deny detail if an active admin boundary forbids ``privilege``.

        The management-port SoD check: before a policy mutation
        (reload, export) the caller asks whether the acting principal
        crosses an :class:`~repro.core.constraints.AdminBoundary` of
        the *active* — soon to be outgoing — policy set.  Each boundary
        is evaluated over its policy's whole scope (the business-context
        pattern matches every retained instance), so operational
        decisions retained anywhere under the boundary's scope block
        the action.  Returns ``None`` when the privilege is unguarded
        or the principal is clean.
        """
        policy_set = self._active[0]
        probe = _AdminProbe(user_id, privilege)
        views = self._store.snapshot_views()
        for policy in policy_set:
            for constraint in policy.extra_constraints:
                if not isinstance(constraint, AdminBoundary):
                    continue
                if not constraint.matches_request(probe):
                    continue
                verdict = constraint.evaluate(
                    probe, policy.business_context, views
                )
                if not verdict.ok:
                    return verdict.detail
        return None

    # ------------------------------------------------------------------
    def check(self, request: DecisionRequest) -> Decision:
        """Run the Section 4.2 algorithm for one interim-granted request."""
        perf = self._perf
        timing = perf.enabled
        tracer = self._tracer
        tracing = tracer.enabled
        token = tracer.begin(request) if tracing else None
        started = perf.start() if timing else 0.0
        match_started = tracer.start() if tracing else 0.0
        perf.incr("engine.requests")
        # One atomic read of the active policy version: the whole
        # decision evaluates under this set/epoch even if swap_policy
        # installs a new one mid-request.
        policy_set, policy_epoch, policy_digest, compiled = self._active

        # Step 1: match the input business-context instance against the
        # business contexts in the MSoD set of policies, through the
        # matcher compiled for this epoch.
        matched_policies = compiled.matching(request.context_instance)
        if timing:
            perf.stop("engine.policy_match", started)
        if tracing:
            tracer.span("engine.match", match_started)
        if not matched_policies:
            perf.incr("engine.grants")
            perf.incr("engine.no_policy_matched")
            if timing:
                perf.stop("engine.check", started)
            decision = Decision(
                effect=Effect.GRANT,
                request=request,
                reason="no MSoD policy matches the business context",
                policy_epoch=policy_epoch,
                policy_digest=policy_digest,
            )
            return tracer.finish(token, decision) if tracing else decision
        perf.incr("engine.policies_matched", len(matched_policies))

        mutation = ADIMutation()
        matched_ids = tuple(policy.policy_id for policy in matched_policies)
        # One memoizing snapshot per request: the store is not mutated
        # until commit, so MMER/MMEP checks across all matched policies
        # share each (user, effective-context) history view.
        views = self._store.snapshot_views()

        # Step 2: for each matched MSoD policy...
        eval_started = perf.start() if timing else 0.0
        trace_eval_started = tracer.start() if tracing else 0.0
        for policy in matched_policies:
            violation = self._evaluate_policy(policy, request, mutation, views)
            if violation is not None:
                # Deny: discard the buffered mutation entirely.
                perf.incr("engine.denies")
                if timing:
                    perf.stop("engine.constraint_eval", eval_started)
                    perf.stop("engine.check", started)
                if tracing:
                    tracer.span("engine.constraints", trace_eval_started)
                decision = Decision(
                    effect=Effect.DENY,
                    request=request,
                    violation=violation,
                    matched_policy_ids=matched_ids,
                    reason=violation.detail,
                    policy_epoch=policy_epoch,
                    policy_digest=policy_digest,
                )
                return tracer.finish(token, decision) if tracing else decision
        if timing:
            perf.stop("engine.constraint_eval", eval_started)
        if tracing:
            tracer.span("engine.constraints", trace_eval_started)

        commit_started = perf.start() if timing else 0.0
        trace_commit_started = tracer.start() if tracing else 0.0
        records_purged = self._commit(mutation)
        if timing:
            perf.stop("engine.commit", commit_started)
            perf.stop("engine.check", started)
        if tracing:
            tracer.span("store.commit", trace_commit_started)
        perf.incr("engine.grants")
        perf.incr("engine.records_added", len(mutation.adds))
        perf.incr("engine.records_purged", records_purged)
        decision = Decision(
            effect=Effect.GRANT,
            request=request,
            matched_policy_ids=matched_ids,
            records_added=len(mutation.adds),
            records_purged=records_purged,
            reason="granted under MSoD",
            adi_adds=tuple(mutation.adds),
            adi_purged_contexts=tuple(mutation.purge_contexts),
            policy_epoch=policy_epoch,
            policy_digest=policy_digest,
        )
        return tracer.finish(token, decision) if tracing else decision

    # ------------------------------------------------------------------
    def _evaluate_policy(
        self,
        policy: MSoDPolicy,
        request: DecisionRequest,
        mutation: ADIMutation,
        views: ADIViewSnapshot,
    ) -> MSoDViolation | None:
        """Steps 3-7 for one matched policy.

        Returns a violation to deny, or ``None`` to continue; grants
        append their retained-ADI records to ``mutation``.
        """
        # Step 1 (tail): bind '!' components to the request's instance.
        effective_context = policy.business_context.instantiate(
            request.context_instance
        )
        pending: list[RetainedADIRecord] = []

        # Step 3: does the retained ADI already hold records for this
        # effective policy context?
        context_started = views.has_context(effective_context)

        if not context_started:
            # Step 4: the context has not started.  If the request is the
            # first step (or the policy has no first step), the context
            # starts now; otherwise MSoD enforcement has not begun for
            # this context instance and the policy imposes nothing.
            first = policy.first_step
            starts_now = first is None or first.matches(
                request.operation, request.target
            )
            if not starts_now:
                return None
            pending.append(self._base_record(request))
            if self._mode == MODE_LITERAL:
                # Literal step 4: "add a new entry ... then goto 7".
                self._finish_policy(policy, request, effective_context, pending, mutation)
                return None

        # Steps 5-6, generalised: evaluate every constraint of the
        # policy in declaration order (MMERs = step 5, MMEPs = step 6,
        # then extension kinds).  Each kind returns a typed verdict; the
        # engine materialises the records it asks for, so constraint
        # classes never touch the store or the record schema.
        for constraint in policy.constraints:
            verdict = constraint.evaluate(request, effective_context, views)
            if not verdict.ok:
                return MSoDViolation(
                    policy_id=policy.policy_id,
                    constraint_kind=constraint.kind,
                    constraint_repr=repr(constraint),
                    effective_context=effective_context,
                    detail=verdict.detail,
                )
            if verdict.grant_exercise:
                pending.append(self._base_record(request))
            elif verdict.grant_roles:
                pending.extend(
                    self._role_record(request, role)
                    for role in verdict.grant_roles
                )

        # Step 7: last-step handling / store the retainedADIlist.
        self._finish_policy(policy, request, effective_context, pending, mutation)
        return None

    def _finish_policy(
        self,
        policy: MSoDPolicy,
        request: DecisionRequest,
        effective_context: ContextName,
        pending: list[RetainedADIRecord],
        mutation: ADIMutation,
    ) -> None:
        """Step 7: purge on last step, otherwise store the pending list."""
        last = policy.last_step
        if last is not None and last.matches(request.operation, request.target):
            mutation.purge_contexts.append(effective_context)
        else:
            mutation.adds.extend(pending)

    def _commit(self, mutation: ADIMutation) -> int:
        """Apply a granted request's mutation; return purged-record count.

        Delegated to the store so backends can make the whole mutation
        atomic (the SQLite store runs it as one transaction).
        """
        return self._store.apply(mutation)

    # ------------------------------------------------------------------
    def _base_record(self, request: DecisionRequest) -> RetainedADIRecord:
        return RetainedADIRecord(
            user_id=request.user_id,
            roles=request.roles,
            operation=request.operation,
            target=request.target,
            context_instance=request.context_instance,
            granted_at=request.timestamp,
            request_id=request.request_id,
        )

    def _role_record(self, request: DecisionRequest, role) -> RetainedADIRecord:
        """Step 5.iv adds one record per matched activated role."""
        return RetainedADIRecord(
            user_id=request.user_id,
            roles=(role,),
            operation=request.operation,
            target=request.target,
            context_instance=request.context_instance,
            granted_at=request.timestamp,
            request_id=request.request_id,
        )

    # ------------------------------------------------------------------
    def notify_context_terminated(self, context: ContextName) -> int:
        """Implied termination (Section 2.2 / Section 3).

        When the application knows a business context [instance] has
        finished — e.g. because a *containing* context completed, "since
        all the contained ones must also be terminated" — it informs the
        engine, which purges the instance's history exactly as a granted
        last step would.  Returns the number of purged records.
        """
        return self._store.purge_context(context)

    def bulk_check(self, requests: Iterable[DecisionRequest]) -> list[Decision]:
        """Evaluate a request stream in order (benchmark convenience)."""
        return [self.check(request) for request in requests]

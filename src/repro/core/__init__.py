"""The paper's primary contribution: MSoD policies and their enforcement.

Public surface:

* :class:`~repro.core.context.ContextName` — hierarchical business
  contexts with ``*`` / ``!`` wildcards (Section 2.2).
* :class:`~repro.core.constraints.MMER` /
  :class:`~repro.core.constraints.MMEP` — multi-session mutually
  exclusive roles/privileges (Sections 2.3-2.4).
* :class:`~repro.core.policy.MSoDPolicy` /
  :class:`~repro.core.policy.MSoDPolicySet` — the policy model
  (Section 3).
* :class:`~repro.core.retained_adi.InMemoryRetainedADIStore` /
  :class:`~repro.core.retained_adi.SQLiteRetainedADIStore` /
  :class:`~repro.core.tiered.TieredADIStore` — retained-ADI backends
  (Sections 4.1, 5.2, 6; tiering in ``docs/SCALE.md``).
* :class:`~repro.core.engine.MSoDEngine` — the Section 4.2 enforcement
  algorithm.
* :class:`~repro.core.admin.RetainedADIManagementPort` — the Section 4.3
  management port.
"""

from repro.core.admin import (
    CONTROLLER_ROLE,
    RETAINED_ADI_TARGET,
    ManagementOutcome,
    RetainedADIManagementPort,
)
from repro.core.constraints import (
    CONSTRAINT_KINDS,
    MMCD,
    MMEP,
    MMER,
    POLICY_EXPORT_PRIVILEGE,
    POLICY_RELOAD_PRIVILEGE,
    POLICY_STORE_TARGET,
    AdminBoundary,
    ConstraintVerdict,
    MultiSessionConstraint,
    Privilege,
    Role,
    policy_store_boundary,
    register_constraint_kind,
)
from repro.core.context import (
    ALL_INSTANCES,
    PER_INSTANCE,
    ContextComponent,
    ContextHierarchy,
    ContextName,
    common_supercontext,
)
from repro.core.decision import (
    Decision,
    DecisionRequest,
    Effect,
    MSoDViolation,
    next_request_id,
)
from repro.core.engine import MODE_LITERAL, MODE_STRICT, MSoDEngine
from repro.core.explain import Explanation, TraceLine, explain
from repro.core.policy import MSoDPolicy, MSoDPolicySet, Step
from repro.core.policy_epoch import (
    INITIAL_EPOCH,
    CompiledPolicyMatcher,
    PolicyEpochLog,
    PolicySwapReport,
    PolicyVersion,
    policy_set_digest,
)
from repro.core.retained_adi import (
    ADIApplyOutcome,
    ADIMutation,
    ADIViewSnapshot,
    InMemoryRetainedADIStore,
    RetainedADIRecord,
    RetainedADIStore,
    SQLiteRetainedADIStore,
    store_digest,
)
from repro.core.tiered import TieredADIStore

__all__ = [
    "ALL_INSTANCES",
    "PER_INSTANCE",
    "ContextComponent",
    "ContextHierarchy",
    "ContextName",
    "common_supercontext",
    "Role",
    "Privilege",
    "MMER",
    "MMEP",
    "MMCD",
    "AdminBoundary",
    "MultiSessionConstraint",
    "ConstraintVerdict",
    "CONSTRAINT_KINDS",
    "register_constraint_kind",
    "POLICY_STORE_TARGET",
    "POLICY_RELOAD_PRIVILEGE",
    "POLICY_EXPORT_PRIVILEGE",
    "policy_store_boundary",
    "MSoDPolicy",
    "MSoDPolicySet",
    "Step",
    "INITIAL_EPOCH",
    "PolicyEpochLog",
    "CompiledPolicyMatcher",
    "PolicySwapReport",
    "PolicyVersion",
    "policy_set_digest",
    "RetainedADIRecord",
    "RetainedADIStore",
    "InMemoryRetainedADIStore",
    "SQLiteRetainedADIStore",
    "TieredADIStore",
    "ADIApplyOutcome",
    "ADIMutation",
    "ADIViewSnapshot",
    "store_digest",
    "Decision",
    "DecisionRequest",
    "Effect",
    "MSoDViolation",
    "next_request_id",
    "MSoDEngine",
    "explain",
    "Explanation",
    "TraceLine",
    "MODE_STRICT",
    "MODE_LITERAL",
    "RetainedADIManagementPort",
    "ManagementOutcome",
    "CONTROLLER_ROLE",
    "RETAINED_ADI_TARGET",
]

"""Explicit management of the retained ADI (paper Section 4.3).

For business contexts without a defined or implied last step the retained
ADI would grow without bound, degrading performance (the paper notes this
has performance, not security, implications).  Section 4.3 proposes a
*management port* on the PDP that treats the retained ADI itself as a
target resource protected by an RBAC policy: a role such as
``RetainedADIController`` is granted privileges like ``purge`` or
``remove record`` on the retained-ADI target.

:class:`RetainedADIManagementPort` implements exactly that: every
management call is itself an access-control decision against a small RBAC
policy before it touches the store.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.core.constraints import Role
from repro.core.context import ContextName
from repro.core.retained_adi import RetainedADIRecord, RetainedADIStore
from repro.errors import AdminError

#: The target URI under which the retained ADI is exposed for management.
RETAINED_ADI_TARGET = "pdp://management/retainedADI"

#: The role the paper suggests for retained-ADI administration.
CONTROLLER_ROLE = Role("permisRole", "RetainedADIController")

#: Management operations supported by the port.
OP_PURGE_CONTEXT = "purgeContext"
OP_PURGE_USER = "purgeUser"
OP_PURGE_OLDER_THAN = "purgeOlderThan"
OP_PURGE_ALL = "purgeAll"
OP_REMOVE_RECORD = "removeRecord"
OP_LIST_RECORDS = "listRecords"
OP_COUNT_RECORDS = "countRecords"

ALL_OPERATIONS = frozenset(
    {
        OP_PURGE_CONTEXT,
        OP_PURGE_USER,
        OP_PURGE_OLDER_THAN,
        OP_PURGE_ALL,
        OP_REMOVE_RECORD,
        OP_LIST_RECORDS,
        OP_COUNT_RECORDS,
    }
)

#: Read-only operations, useful for auditor-style roles.
READ_OPERATIONS = frozenset({OP_LIST_RECORDS, OP_COUNT_RECORDS})


@dataclass(frozen=True, slots=True)
class ManagementOutcome:
    """Result of a management-port call."""

    operation: str
    affected: int
    detail: str = ""


class RetainedADIManagementPort:
    """An RBAC-protected administrative interface over a retained-ADI store.

    Parameters
    ----------
    store:
        The retained-ADI store being managed.
    role_operations:
        The protecting RBAC policy: a mapping from role to the set of
        management operations that role may invoke.  Defaults to granting
        :data:`CONTROLLER_ROLE` every operation.
    """

    def __init__(
        self,
        store: RetainedADIStore,
        role_operations: Mapping[Role, frozenset[str]] | None = None,
    ) -> None:
        if role_operations is None:
            role_operations = {CONTROLLER_ROLE: ALL_OPERATIONS}
        for role, operations in role_operations.items():
            unknown = set(operations) - ALL_OPERATIONS
            if unknown:
                raise AdminError(
                    f"unknown management operations for {role}: {sorted(unknown)}"
                )
        self._store = store
        self._role_operations = {
            role: frozenset(operations)
            for role, operations in role_operations.items()
        }

    # ------------------------------------------------------------------
    def _authorize(self, roles: Iterable[Role], operation: str) -> None:
        """RBAC check: does any presented role grant the operation?"""
        if operation not in ALL_OPERATIONS:
            raise AdminError(f"unknown management operation {operation!r}")
        for role in roles:
            if operation in self._role_operations.get(role, frozenset()):
                return
        raise AdminError(
            f"no presented role is authorized for {operation!r} on "
            f"{RETAINED_ADI_TARGET}"
        )

    # ------------------------------------------------------------------
    def purge_context(
        self, roles: Iterable[Role], context: ContextName
    ) -> ManagementOutcome:
        """Administratively terminate a business context [instance]."""
        self._authorize(roles, OP_PURGE_CONTEXT)
        removed = self._store.purge_context(context)
        return ManagementOutcome(
            OP_PURGE_CONTEXT, removed, f"purged context [{context}]"
        )

    def purge_user(self, roles: Iterable[Role], user_id: str) -> ManagementOutcome:
        self._authorize(roles, OP_PURGE_USER)
        removed = self._store.purge_user(user_id)
        return ManagementOutcome(OP_PURGE_USER, removed, f"purged user {user_id!r}")

    def purge_older_than(
        self, roles: Iterable[Role], cutoff: float
    ) -> ManagementOutcome:
        self._authorize(roles, OP_PURGE_OLDER_THAN)
        removed = self._store.purge_older_than(cutoff)
        return ManagementOutcome(
            OP_PURGE_OLDER_THAN, removed, f"purged records older than {cutoff}"
        )

    def purge_all(self, roles: Iterable[Role]) -> ManagementOutcome:
        self._authorize(roles, OP_PURGE_ALL)
        removed = self._store.clear()
        return ManagementOutcome(OP_PURGE_ALL, removed, "purged all records")

    def remove_record(
        self, roles: Iterable[Role], record_id: int
    ) -> ManagementOutcome:
        """Remove one record by id (implemented as a filtered purge)."""
        self._authorize(roles, OP_REMOVE_RECORD)
        survivors = [
            record for record in self._store.records() if record.record_id != record_id
        ]
        before = self._store.count()
        if len(survivors) == before:
            return ManagementOutcome(OP_REMOVE_RECORD, 0, "record not found")
        self._store.clear()
        for record in survivors:
            self._store.add(record)
        return ManagementOutcome(
            OP_REMOVE_RECORD, before - len(survivors), f"removed record {record_id}"
        )

    def list_records(self, roles: Iterable[Role]) -> list[RetainedADIRecord]:
        self._authorize(roles, OP_LIST_RECORDS)
        return list(self._store.records())

    def count_records(self, roles: Iterable[Role]) -> int:
        self._authorize(roles, OP_COUNT_RECORDS)
        return self._store.count()

    # ------------------------------------------------------------------
    def scheduled_retention_sweep(
        self, roles: Iterable[Role], max_age_seconds: float, now: float | None = None
    ) -> ManagementOutcome:
        """Convenience: purge everything older than ``now - max_age``.

        Models the "management procedures delete the history information"
        escape hatch of Section 2.2.
        """
        if now is None:
            now = time.time()
        return self.purge_older_than(roles, now - max_age_seconds)

"""The tax-office simulation: Example 2 at organisational scale.

Runs many tax-refund process instances through the workflow engine and
a PDP carrying the paper's Section-3 MMEP policy, with a configurable
rate of *misbehaving* staff who attempt the three forbidden moves:

* a manager approving the same refund twice (``repeat_approval``);
* an approving manager collecting the results (``approver_combines``);
* the preparing clerk confirming their own check (``clerk_confirms_own``).

The same seeded schedule replayed without MSoD counts how many of those
attempts would have succeeded — the per-rule counterfactual for
Example 2, complementing the bank simulation's Example-1 counterfactual.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core import ContextName, InMemoryRetainedADIStore, MSoDEngine, Privilege, Role
from repro.core.policy import MSoDPolicySet
from repro.errors import WorkflowError
from repro.framework import (
    PolicyEnforcementPoint,
    ReferenceRBACMSoDPDP,
    RoleTargetAccessPolicy,
    SimulatedClock,
)
from repro.simulation.model import SimulationError
from repro.workflow import ProcessInstance, tax_refund_process
from repro.xmlpolicy import tax_refund_policy_set

CLERK = Role("employee", "Clerk")
MANAGER = Role("employee", "Manager")
PREPARE = Privilege("prepareCheck", "http://www.myTaxOffice.com/Check")
APPROVE = Privilege("approve/disapproveCheck", "http://www.myTaxOffice.com/Check")
COMBINE = Privilege("combineResults", "http://secret.location.com/results")
CONFIRM = Privilege("confirmCheck", "http://secret.location.com/audit")

RULE_REPEAT_APPROVAL = "repeat_approval"
RULE_APPROVER_COMBINES = "approver_combines"
RULE_CLERK_CONFIRMS_OWN = "clerk_confirms_own"
RULES = (RULE_REPEAT_APPROVAL, RULE_APPROVER_COMBINES, RULE_CLERK_CONFIRMS_OWN)


@dataclass(frozen=True, slots=True)
class TaxOfficeConfig:
    """Parameters of one simulated tax office."""

    seed: int = 42
    n_clerks: int = 6
    n_managers: int = 8
    n_processes: int = 50
    misbehaviour_rate: float = 0.3

    def __post_init__(self) -> None:
        if self.n_clerks < 2:
            raise SimulationError("need at least 2 clerks")
        if self.n_managers < 4:
            raise SimulationError("need at least 4 managers")
        if self.n_processes < 1:
            raise SimulationError("need at least 1 process")
        if not 0.0 <= self.misbehaviour_rate <= 1.0:
            raise SimulationError("misbehaviour_rate must be in [0, 1]")


@dataclass(slots=True)
class TaxOfficeReport:
    """Outcomes of one run."""

    config: TaxOfficeConfig
    enforced: bool
    processes_completed: int = 0
    decisions: int = 0
    attempted: dict = field(default_factory=lambda: {rule: 0 for rule in RULES})
    breached: dict = field(default_factory=lambda: {rule: 0 for rule in RULES})
    denied: dict = field(default_factory=lambda: {rule: 0 for rule in RULES})

    @property
    def total_attempted(self) -> int:
        return sum(self.attempted.values())

    @property
    def total_breached(self) -> int:
        return sum(self.breached.values())

    @property
    def total_denied(self) -> int:
        return sum(self.denied.values())


class TaxOfficeSimulation:
    """One reproducible simulated tax office."""

    def __init__(self, config: TaxOfficeConfig, enforced: bool = True) -> None:
        self._config = config
        self._enforced = enforced
        self._rng = random.Random(config.seed)
        access = RoleTargetAccessPolicy(
            {CLERK: [PREPARE, CONFIRM], MANAGER: [APPROVE, COMBINE]}
        )
        msod = tax_refund_policy_set() if enforced else MSoDPolicySet()
        engine = MSoDEngine(msod, InMemoryRetainedADIStore())
        self._pep = PolicyEnforcementPoint(
            ReferenceRBACMSoDPDP(access, engine), SimulatedClock()
        )
        self._clerks = [f"clerk{i:02d}" for i in range(config.n_clerks)]
        self._managers = [f"mgr{i:02d}" for i in range(config.n_managers)]

    @property
    def pep(self) -> PolicyEnforcementPoint:
        return self._pep

    # ------------------------------------------------------------------
    def _attempt(self, report, instance, task, user, roles, rule=None):
        """One task attempt; rule names the violated rule (ground truth)."""
        try:
            decision = instance.attempt(task, user, roles)
        except WorkflowError:
            # Task already complete (a granted breach consumed the slot).
            return None
        report.decisions += 1
        if rule is not None:
            report.attempted[rule] += 1
            if decision.granted:
                report.breached[rule] += 1
            else:
                report.denied[rule] += 1
        return decision

    def run(self) -> TaxOfficeReport:
        config = self._config
        report = TaxOfficeReport(config=config, enforced=self._enforced)
        for serial in range(config.n_processes):
            self._run_process(report, serial)
        return report

    def _run_process(self, report: TaxOfficeReport, serial: int) -> None:
        rng = self._rng
        config = self._config
        instance = ProcessInstance(
            tax_refund_process(),
            f"proc{serial:05d}",
            ContextName.parse("TaxOffice=Leeds"),
            self._pep,
        )
        clerk1, clerk2 = rng.sample(self._clerks, 2)
        mgr1, mgr2, collector = rng.sample(self._managers, 3)

        self._attempt(report, instance, "T1", clerk1, [CLERK])

        self._attempt(report, instance, "T2", mgr1, [MANAGER])
        if rng.random() < config.misbehaviour_rate:
            # mgr1 tries to push the refund through alone.
            self._attempt(
                report, instance, "T2", mgr1, [MANAGER],
                rule=RULE_REPEAT_APPROVAL,
            )
        self._attempt(report, instance, "T2", mgr2, [MANAGER])

        if rng.random() < config.misbehaviour_rate:
            # an approving manager tries to also collect the decisions.
            self._attempt(
                report, instance, "T3", mgr1, [MANAGER],
                rule=RULE_APPROVER_COMBINES,
            )
        self._attempt(report, instance, "T3", collector, [MANAGER])

        if rng.random() < config.misbehaviour_rate:
            # the preparing clerk tries to confirm their own check.
            self._attempt(
                report, instance, "T4", clerk1, [CLERK],
                rule=RULE_CLERK_CONFIRMS_OWN,
            )
        self._attempt(report, instance, "T4", clerk2, [CLERK])

        if instance.is_complete():
            report.processes_completed += 1


def run_paired_tax_simulation(
    config: TaxOfficeConfig,
) -> tuple[TaxOfficeReport, TaxOfficeReport]:
    """The same seeded schedule with and without MSoD enforcement."""
    enforced = TaxOfficeSimulation(config, enforced=True).run()
    unenforced = TaxOfficeSimulation(config, enforced=False).run()
    return enforced, unenforced

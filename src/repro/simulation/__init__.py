"""Organisational-scale simulation of the paper's bank scenario."""

from repro.simulation.bank import (
    ENFORCEMENT_MSOD,
    ENFORCEMENT_NONE,
    BankSimulation,
    run_paired_simulation,
)
from repro.simulation.model import (
    PeriodStats,
    SimulationConfig,
    SimulationError,
    SimulationReport,
)
from repro.simulation.tax_office import (
    RULE_APPROVER_COMBINES,
    RULE_CLERK_CONFIRMS_OWN,
    RULE_REPEAT_APPROVAL,
    RULES,
    TaxOfficeConfig,
    TaxOfficeReport,
    TaxOfficeSimulation,
    run_paired_tax_simulation,
)

__all__ = [
    "SimulationConfig",
    "SimulationReport",
    "PeriodStats",
    "SimulationError",
    "BankSimulation",
    "run_paired_simulation",
    "ENFORCEMENT_MSOD",
    "ENFORCEMENT_NONE",
    "TaxOfficeConfig",
    "TaxOfficeReport",
    "TaxOfficeSimulation",
    "run_paired_tax_simulation",
    "RULES",
    "RULE_REPEAT_APPROVAL",
    "RULE_APPROVER_COMBINES",
    "RULE_CLERK_CONFIRMS_OWN",
]

"""The bank-year simulation: Example 1 at organisational scale.

Drives the full PERMIS stack — privilege allocation, directory, CVS,
PDP with the Section-3 bank MSoD policy, retained ADI — through many
periods of staff activity with promotions, multi-branch work and
period-closing audits.  Running the same script of events with
``enforcement="none"`` (MSoD switched off) measures how many
separation-of-duty failures the mechanism actually prevents.
"""

from __future__ import annotations

import random

from repro.core import ContextName, Privilege, Role
from repro.core.decision import Effect
from repro.permis import (
    LdapDirectory,
    PermisPDP,
    PermisPolicyBuilder,
    PrivilegeAllocator,
    TrustStore,
)
from repro.simulation.model import (
    PeriodStats,
    SimulationConfig,
    SimulationError,
    SimulationReport,
)
from repro.xmlpolicy import bank_policy_set

TELLER = Role("employee", "Teller")
AUDITOR = Role("employee", "Auditor")
HANDLE_CASH = Privilege("handleCash", "till://main")
AUDIT_BOOKS = Privilege("auditBooks", "ledger://main")
COMMIT_AUDIT = Privilege("CommitAudit", "http://audit.location.com/audit")

SOA_DN = "cn=SOA,o=bank,c=gb"
ENFORCEMENT_MSOD = "msod"
ENFORCEMENT_NONE = "none"


class BankSimulation:
    """One reproducible simulated bank."""

    def __init__(
        self, config: SimulationConfig, enforcement: str = ENFORCEMENT_MSOD
    ) -> None:
        if enforcement not in (ENFORCEMENT_MSOD, ENFORCEMENT_NONE):
            raise SimulationError(f"unknown enforcement mode {enforcement!r}")
        self._config = config
        self._enforcement = enforcement
        self._rng = random.Random(config.seed)
        self._clock = 0.0

        self._directory = LdapDirectory()
        self._soa = PrivilegeAllocator(SOA_DN, b"sim-soa-key", self._directory)
        trust = TrustStore()
        trust.trust(self._soa.soa_dn, self._soa.verification_key)
        builder = (
            PermisPolicyBuilder()
            .allow_assignment(SOA_DN, [TELLER, AUDITOR], "o=bank,c=gb")
            .grant(TELLER, [HANDLE_CASH])
            .grant(AUDITOR, [AUDIT_BOOKS, COMMIT_AUDIT])
        )
        if enforcement == ENFORCEMENT_MSOD:
            builder.with_msod(bank_policy_set())
        self._pdp = PermisPDP(builder.build(), trust, self._directory)

        # Staff roster: ~80% tellers, 20% auditors.  Credentials are
        # re-issued on promotion; old ones lapse at the period boundary.
        self._roles: dict[str, Role] = {}
        for index in range(config.n_staff):
            dn = f"cn=staff{index:03d},o=bank,c=gb"
            role = AUDITOR if index % 5 == 0 else TELLER
            self._roles[dn] = role

    @property
    def pdp(self) -> PermisPDP:
        return self._pdp

    # ------------------------------------------------------------------
    def _tick(self) -> float:
        self._clock += 1.0
        return self._clock

    def _duty(self, role: Role) -> Privilege:
        return HANDLE_CASH if role == TELLER else AUDIT_BOOKS

    def run(self) -> SimulationReport:
        """Simulate every period; returns the aggregate report."""
        report = SimulationReport(
            config=self._config, enforcement=self._enforcement
        )
        for period in range(self._config.n_periods):
            report.periods.append(self._run_period(period))
        return report

    # ------------------------------------------------------------------
    def _run_period(self, period: int) -> PeriodStats:
        config = self._config
        stats = PeriodStats(period=period)
        period_start = self._tick()
        duties_performed: dict[str, set[Role]] = {}

        # Fresh credentials for everyone, valid for this period only.
        period_end_estimate = (
            period_start
            + config.n_staff * (config.actions_per_staff_period + 2)
            + 10
        )
        for dn, role in self._roles.items():
            self._soa.issue(dn, [role], period_start, period_end_estimate)

        # Staff work in randomised order, one session per action.  The
        # period is split around the promotion round: staff promoted
        # mid-period have live teller history when they first try to
        # audit — the Example-1 hazard.
        workload = [
            dn
            for dn in self._roles
            for _ in range(config.actions_per_staff_period)
        ]
        self._rng.shuffle(workload)
        midpoint = len(workload) // 2

        def act(dn: str) -> None:
            role = self._roles[dn]
            privilege = self._duty(role)
            branch = f"B{self._rng.randrange(config.n_branches)}"
            context = ContextName.parse(f"Branch={branch}, Period=P{period}")
            decision = self._pdp.decision(
                dn,
                privilege.operation,
                privilege.target,
                context,
                roles=[role],
                at=self._tick(),
            )
            stats.decisions += 1
            if decision.effect == Effect.GRANT:
                stats.grants += 1
                duties_performed.setdefault(dn, set()).add(role)
            elif decision.violation is not None:
                stats.msod_denials += 1
            else:
                stats.rbac_denials += 1

        for dn in workload[:midpoint]:
            act(dn)

        # Mid-period promotions: some tellers become auditors NOW and
        # receive the new credential while their teller history is live.
        for dn, role in list(self._roles.items()):
            if role == TELLER and self._rng.random() < config.promotion_rate:
                self._roles[dn] = AUDITOR
                self._soa.issue(dn, [AUDITOR], period_start, period_end_estimate)

        for dn in workload[midpoint:]:
            act(dn)

        # Period-end audit: a never-promoted auditor commits the audit,
        # closing the period's business context instance.
        closers = [dn for dn, role in self._roles.items() if role == AUDITOR]
        closer = closers[0] if closers else next(iter(self._roles))
        decision = self._pdp.decision(
            closer,
            COMMIT_AUDIT.operation,
            COMMIT_AUDIT.target,
            ContextName.parse(f"Branch=B0, Period=P{period}"),
            roles=[AUDITOR],
            at=self._tick(),
        )
        stats.decisions += 1
        if decision.effect == Effect.GRANT:
            stats.grants += 1
            duties_performed.setdefault(closer, set()).add(AUDITOR)
        elif decision.violation is not None:
            stats.msod_denials += 1
        else:
            stats.rbac_denials += 1

        stats.cross_duty_staff = sum(
            1 for duties in duties_performed.values() if len(duties) >= 2
        )
        return stats


def run_paired_simulation(
    config: SimulationConfig,
) -> tuple[SimulationReport, SimulationReport]:
    """Run the same seeded script with and without MSoD enforcement.

    Because both runs share the config seed, their promotion and
    workload schedules are identical — the only difference is whether
    the PDP runs the Section-4.2 algorithm.
    """
    enforced = BankSimulation(config, ENFORCEMENT_MSOD).run()
    unenforced = BankSimulation(config, ENFORCEMENT_NONE).run()
    return enforced, unenforced

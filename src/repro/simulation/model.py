"""Configuration and reporting types for the organisational simulation.

The simulation models the paper's motivating organisation: a bank whose
staff change duties over time (tellers promoted to auditors), work in
many short access-control sessions, and are audited each period.  It is
the laptop-scale stand-in for the production workloads the paper's
introduction motivates (see the substitution table in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError


class SimulationError(ReproError):
    """Invalid simulation configuration or state."""


@dataclass(frozen=True, slots=True)
class SimulationConfig:
    """Parameters of one simulated run.

    Attributes
    ----------
    seed:
        RNG seed; two runs with equal configs are identical.
    n_staff:
        Total staff.  Roughly 80% start as tellers, 20% as auditors.
    n_branches:
        Branches of the bank (context component ``Branch``).
    n_periods:
        Audit periods to simulate (context component ``Period``).
    actions_per_staff_period:
        How many duty actions each staff member attempts per period,
        each in its own access-control session.
    promotion_rate:
        Probability that a teller is promoted to auditor in a period
        (the Example-1 hazard: their cash-handling history is still
        live until the period's audit commits).
    """

    seed: int = 2007
    n_staff: int = 40
    n_branches: int = 3
    n_periods: int = 6
    actions_per_staff_period: int = 4
    promotion_rate: float = 0.15

    def __post_init__(self) -> None:
        if self.n_staff < 2:
            raise SimulationError("need at least 2 staff")
        if self.n_branches < 1:
            raise SimulationError("need at least 1 branch")
        if self.n_periods < 1:
            raise SimulationError("need at least 1 period")
        if self.actions_per_staff_period < 1:
            raise SimulationError("need at least 1 action per staff-period")
        if not 0.0 <= self.promotion_rate <= 1.0:
            raise SimulationError("promotion_rate must be in [0, 1]")


@dataclass(slots=True)
class PeriodStats:
    """Outcomes of one audit period."""

    period: int
    decisions: int = 0
    grants: int = 0
    msod_denials: int = 0
    rbac_denials: int = 0
    cross_duty_staff: int = 0  # staff who held both duties this period

    @property
    def denials(self) -> int:
        return self.msod_denials + self.rbac_denials


@dataclass(slots=True)
class SimulationReport:
    """Aggregate outcomes of a run."""

    config: SimulationConfig
    enforcement: str  # "msod" or "none"
    periods: list[PeriodStats] = field(default_factory=list)

    @property
    def decisions(self) -> int:
        return sum(stats.decisions for stats in self.periods)

    @property
    def grants(self) -> int:
        return sum(stats.grants for stats in self.periods)

    @property
    def msod_denials(self) -> int:
        return sum(stats.msod_denials for stats in self.periods)

    @property
    def separation_failures(self) -> int:
        """Staff-periods where one person performed both duties.

        With MSoD enforcement this must be zero; without it, each one is
        a potential fraud the paper's mechanism exists to prevent.
        """
        return sum(stats.cross_duty_staff for stats in self.periods)

"""Secure audit trail and retained-ADI recovery (Section 5.2, ref [5])."""

from repro.audit.recovery import (
    RecoveryReport,
    decision_event_payload,
    recover_retained_adi,
)
from repro.audit.trail import (
    EVENT_ADMIN,
    EVENT_DECISION,
    EVENT_PURGE,
    GENESIS_HASH,
    AuditEvent,
    AuditTrailManager,
    SecureAuditTrail,
)

__all__ = [
    "SecureAuditTrail",
    "AuditTrailManager",
    "AuditEvent",
    "GENESIS_HASH",
    "EVENT_DECISION",
    "EVENT_PURGE",
    "EVENT_ADMIN",
    "decision_event_payload",
    "recover_retained_adi",
    "RecoveryReport",
]

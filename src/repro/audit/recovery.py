"""Retained-ADI recovery from secure audit trails (paper Section 5.2).

"At start up, the PDP reads in its policy, and then processes the last
*n* audit trails starting from time *t* ... It extracts the retained ADI
from these according to its current set of MSoD policies.  Once its
retained ADI is recovered to memory, the PDP is ready to start making
access control decisions again."

The paper flags this replay as its scalability limitation (Section 6);
``benchmarks/bench_recovery_scalability.py`` measures it against the
SQLite store that needs no replay.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.context import ContextName
from repro.core.decision import Decision, Effect
from repro.core.policy import MSoDPolicySet
from repro.core.retained_adi import RetainedADIRecord, RetainedADIStore
from repro.audit.trail import (
    EVENT_DECISION,
    EVENT_PURGE,
    AuditTrailManager,
)


def decision_event_payload(decision: Decision) -> dict:
    """Serialise a decision (and its ADI mutation) for the audit trail."""
    request = decision.request
    return {
        "effect": decision.effect,
        "reason": decision.reason,
        "request": {
            "user_id": request.user_id,
            "roles": [[role.role_type, role.value] for role in request.roles],
            "operation": request.operation,
            "target": request.target,
            "context_instance": str(request.context_instance),
            "request_id": request.request_id,
            "timestamp": request.timestamp,
        },
        "matched_policies": list(decision.matched_policy_ids),
        "adi_adds": [record.to_dict() for record in decision.adi_adds],
        "adi_purges": [str(context) for context in decision.adi_purged_contexts],
    }


@dataclass(frozen=True, slots=True)
class RecoveryReport:
    """Statistics from one recovery run."""

    events_scanned: int
    records_replayed: int
    records_skipped: int
    purges_replayed: int

    @property
    def recovered(self) -> int:
        return self.records_replayed


def recover_retained_adi(
    trails: AuditTrailManager,
    policy_set: MSoDPolicySet,
    store: RetainedADIStore,
    last_n_trails: int | None = None,
    since: float = 0.0,
) -> RecoveryReport:
    """Rebuild a retained-ADI store by replaying granted decisions.

    Only records whose business-context instance is still matched by the
    *current* policy set are recovered ("according to its current set of
    MSoD policies"); purge events replay unconditionally so contexts
    terminated before the restart stay terminated.
    """
    events_scanned = 0
    replayed = 0
    skipped = 0
    purges = 0
    for event in trails.events(last_n_trails=last_n_trails, since=since):
        events_scanned += 1
        if event.event_type == EVENT_DECISION:
            payload = event.payload
            if payload.get("effect") != Effect.GRANT:
                continue
            for context_text in payload.get("adi_purges", ()):
                store.purge_context(ContextName.parse(context_text))
                purges += 1
            for record_dict in payload.get("adi_adds", ()):
                record = RetainedADIRecord.from_dict(record_dict)
                if policy_set.is_relevant(record.context_instance):
                    store.add(record)
                    replayed += 1
                else:
                    skipped += 1
        elif event.event_type == EVENT_PURGE:
            context = ContextName.parse(event.payload["context"])
            store.purge_context(context)
            purges += 1
    return RecoveryReport(
        events_scanned=events_scanned,
        records_replayed=replayed,
        records_skipped=skipped,
        purges_replayed=purges,
    )

"""Retained-ADI recovery from secure audit trails (paper Section 5.2).

"At start up, the PDP reads in its policy, and then processes the last
*n* audit trails starting from time *t* ... It extracts the retained ADI
from these according to its current set of MSoD policies.  Once its
retained ADI is recovered to memory, the PDP is ready to start making
access control decisions again."

The paper flags this replay as its scalability limitation (Section 6);
``benchmarks/bench_recovery_scalability.py`` measures it against the
SQLite store that needs no replay.

Replay is **idempotent**: records already present in the target store
are not added twice, so running the same recovery repeatedly — or
resuming a partially-applied one — converges on the same store.  That
property is what lets :mod:`repro.cluster` reuse this exact code path
as *replication*: a warm standby simply re-runs recovery over its
primary's shipped trails on every catch-up tick (see
``docs/CLUSTER.md``).  The cluster extensions ride along as optional
parameters: ``journal`` captures every decision outcome by request id
(the standby's exactly-once dedupe table), ``min_epoch`` drops events
written by a deposed primary after its fencing epoch, and
``max_events`` stops at a sealed lineage cutoff.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, MutableMapping, Optional

from repro.core.context import ContextName
from repro.core.decision import Decision, Effect
from repro.core.policy import MSoDPolicySet
from repro.core.retained_adi import RetainedADIRecord, RetainedADIStore
from repro.audit.trail import (
    EVENT_DECISION,
    EVENT_PURGE,
    AuditEvent,
    AuditTrailManager,
)


def decision_event_payload(decision: Decision) -> dict:
    """Serialise a decision (and its ADI mutation) for the audit trail."""
    request = decision.request
    return {
        "effect": decision.effect,
        "reason": decision.reason,
        "request": {
            "user_id": request.user_id,
            "roles": [[role.role_type, role.value] for role in request.roles],
            "operation": request.operation,
            "target": request.target,
            "context_instance": str(request.context_instance),
            "request_id": request.request_id,
            "timestamp": request.timestamp,
        },
        "matched_policies": list(decision.matched_policy_ids),
        "adi_adds": [record.to_dict() for record in decision.adi_adds],
        "adi_purges": [str(context) for context in decision.adi_purged_contexts],
        # Which policy regime produced this decision.  Distinct from the
        # cluster fencing "epoch" the audit sink stamps: that versions
        # the *primary lineage*, this versions the *policy set*.
        "policy_epoch": decision.policy_epoch,
        "policy_digest": decision.policy_digest,
    }


def _record_key(record: RetainedADIRecord) -> tuple:
    """The identity of a retained record, independent of ``record_id``."""
    return (
        record.user_id,
        tuple(sorted((role.role_type, role.value) for role in record.roles)),
        record.operation,
        record.target,
        str(record.context_instance),
        record.granted_at,
        record.request_id,
    )


class _PreexistingRecords:
    """Multiset of record identities already present in the store.

    One grant may legitimately retain several identity-equal records
    (step 5.iv adds one per matched constraint), so this is a counted
    multiset, not a set: each replayed add *consumes* one pre-existing
    copy if available and only hits the store when none remain.
    Replayed purges discard the unconsumed copies they would have
    removed from the store.  The result is the invariant that makes
    replay idempotent — N passes over the same trail leave the store
    exactly as one pass does.
    """

    def __init__(self, store: RetainedADIStore) -> None:
        self._counts: dict[tuple, int] = {}
        self._contexts: dict[tuple, ContextName] = {}
        for record in store.records():
            key = _record_key(record)
            self._counts[key] = self._counts.get(key, 0) + 1
            self._contexts[key] = record.context_instance

    def consume(self, record: RetainedADIRecord) -> bool:
        """Match one pre-existing copy; True when the add must be skipped."""
        key = _record_key(record)
        remaining = self._counts.get(key, 0)
        if remaining <= 0:
            return False
        if remaining == 1:
            del self._counts[key]
            del self._contexts[key]
        else:
            self._counts[key] = remaining - 1
        return True

    def purge(self, effective_context: ContextName) -> None:
        dead = [
            key
            for key, context in self._contexts.items()
            if context.is_equal_or_subordinate_to(effective_context)
        ]
        for key in dead:
            del self._counts[key]
            del self._contexts[key]


@dataclass(frozen=True, slots=True)
class RecoveryReport:
    """Statistics from one recovery run."""

    events_scanned: int
    records_replayed: int
    records_skipped: int
    purges_replayed: int

    @property
    def recovered(self) -> int:
        return self.records_replayed


def recover_retained_adi(
    trails: AuditTrailManager | None,
    policy_set: MSoDPolicySet,
    store: RetainedADIStore,
    last_n_trails: int | None = None,
    since: float = 0.0,
    *,
    journal: MutableMapping[str, dict] | None = None,
    min_epoch: int = 0,
    max_events: int | None = None,
    policy_resolver: Optional[
        Callable[[int], MSoDPolicySet | None]
    ] = None,
    user_filter: Callable[[str], bool] | None = None,
    events: Iterable[AuditEvent] | None = None,
) -> RecoveryReport:
    """Rebuild a retained-ADI store by replaying granted decisions.

    Only records whose business-context instance is still matched by the
    *current* policy set are recovered ("according to its current set of
    MSoD policies"); purge events replay unconditionally so contexts
    terminated before the restart stay terminated.  Records already in
    ``store`` are not added twice, so the call is idempotent.

    Parameters
    ----------
    journal:
        Optional mapping populated with every decision event's payload
        keyed by ``request_id`` (grants *and* denies).  A cluster
        standby uses this as its exactly-once table: a client retrying
        a decide whose outcome the dead primary already committed gets
        the recorded answer instead of a double evaluation.
    min_epoch:
        Skip decision/purge events stamped with a cluster epoch below
        this floor — a deposed primary's post-fencing writes.
    max_events:
        Stop after scanning this many events (a sealed shard lineage's
        cutoff: anything a deposed primary appended beyond the seal is
        outside the authoritative history).
    policy_resolver:
        Optional ``policy_epoch -> MSoDPolicySet | None`` (see
        :meth:`~repro.core.engine.MSoDEngine.policy_set_for_epoch`).
        When the trail spans a hot reload, each decision event carries
        the ``policy_epoch`` it was made under; resolving it replays
        the event's ADI adds under the policy that *produced* them, so
        records granted before the reload survive recovery even when
        the current set no longer matches their context.  Unresolvable
        epochs (history evicted, pre-epoch trails) fall back to the
        current ``policy_set``, which is the paper's original
        "according to its current set of MSoD policies" behaviour.
    user_filter:
        Optional ``user_id -> bool`` predicate restricting which adds
        are replayed and which decision outcomes enter ``journal``;
        events for other users are skipped (purges still replay
        unconditionally — context termination is store-wide).
        This is the targeted-hydration hook for the tiered store: when
        its warm layer may lag the audit trail, the ``hydrator``
        callback replays just the faulting user's history instead of
        the whole org (see ``docs/SCALE.md``).
    events:
        Optional pre-verified event source replacing
        ``trails.events(...)`` (``trails`` may then be ``None``).  A
        cluster standby passes an incremental
        :class:`~repro.audit.trail.TrailFollower` stream here so each
        catch-up tick replays only the new tail instead of re-parsing
        and re-verifying the whole lineage.  When the source is
        stateful (a follower advances its position as it yields),
        bound it with ``itertools.islice`` *before* passing it rather
        than via ``max_events`` — the ``max_events`` check pulls one
        event past the cutoff and discards it.
    """
    events_scanned = 0
    replayed = 0
    skipped = 0
    purges = 0
    preexisting = _PreexistingRecords(store)
    if events is None:
        events = trails.events(last_n_trails=last_n_trails, since=since)
    for event in events:
        if max_events is not None and events_scanned >= max_events:
            break
        events_scanned += 1
        epoch = event.payload.get("epoch", 0) if event.payload else 0
        if isinstance(epoch, int) and epoch < min_epoch:
            skipped += 1
            continue
        if event.event_type == EVENT_DECISION:
            payload = event.payload
            if journal is not None:
                request = payload.get("request", {})
                request_id = request.get("request_id")
                if request_id and (
                    user_filter is None
                    or user_filter(request.get("user_id", ""))
                ):
                    journal[request_id] = payload
            if payload.get("effect") != Effect.GRANT:
                continue
            for context_text in payload.get("adi_purges", ()):
                context = ContextName.parse(context_text)
                store.purge_context(context)
                preexisting.purge(context)
                purges += 1
            effective_set = policy_set
            if policy_resolver is not None:
                event_policy_epoch = payload.get("policy_epoch")
                if (
                    isinstance(event_policy_epoch, int)
                    and not isinstance(event_policy_epoch, bool)
                    and event_policy_epoch > 0
                ):
                    resolved = policy_resolver(event_policy_epoch)
                    if resolved is not None:
                        effective_set = resolved
            for record_dict in payload.get("adi_adds", ()):
                record = RetainedADIRecord.from_dict(record_dict)
                if user_filter is not None and not user_filter(
                    record.user_id
                ):
                    skipped += 1
                elif not effective_set.is_relevant(record.context_instance):
                    skipped += 1
                elif preexisting.consume(record):
                    skipped += 1
                else:
                    store.add(record)
                    replayed += 1
        elif event.event_type == EVENT_PURGE:
            context = ContextName.parse(event.payload["context"])
            store.purge_context(context)
            preexisting.purge(context)
            purges += 1
    return RecoveryReport(
        events_scanned=events_scanned,
        records_replayed=replayed,
        records_skipped=skipped,
        purges_replayed=purges,
    )

"""A tamper-evident secure audit trail (paper Section 5.2, reference [5]).

The paper logs every PDP request/response in "a cryptographically
protected log of events in stable storage" (a PKI-based secure audit web
service).  We reproduce its tamper-evidence with stdlib primitives:

* each trail is an append-only JSONL file;
* record *i* carries ``hash_i = SHA-256(hash_{i-1} || canonical payload)``
  (a hash chain, so any modification, insertion, deletion or reordering
  breaks verification from that point on);
* each record additionally carries ``tag_i = HMAC-SHA256(key, hash_i)``,
  standing in for the per-record digital signature of the PKI service —
  an attacker without the trail key cannot re-seal a forged chain.

The substitution (HMAC for PKI signatures) preserves the property the
MSoD implementation relies on: recovered retained ADI comes from a log
that cannot be silently altered.
"""

from __future__ import annotations

import hashlib
import hmac
import json
import os
from dataclasses import dataclass
from typing import Iterator

from repro.errors import AuditTrailError

GENESIS_HASH = "0" * 64

#: Event types written by the PERMIS PDP.
EVENT_DECISION = "decision"
EVENT_PURGE = "purge"
EVENT_ADMIN = "admin"


def _canonical(payload: dict) -> bytes:
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()


def _chain_hash(prev_hash: str, payload: dict) -> str:
    digest = hashlib.sha256()
    digest.update(prev_hash.encode())
    digest.update(_canonical(payload))
    return digest.hexdigest()


def _seal(key: bytes, record_hash: str) -> str:
    return hmac.new(key, record_hash.encode(), hashlib.sha256).hexdigest()


@dataclass(frozen=True, slots=True)
class AuditEvent:
    """One verified event read back from a trail."""

    seq: int
    timestamp: float
    event_type: str
    payload: dict


class SecureAuditTrail:
    """One append-only, hash-chained, HMAC-sealed trail file.

    A hash chain alone cannot detect *truncation* — removing the final
    records leaves a shorter but internally consistent chain.  Each
    append therefore also rewrites a sealed checkpoint sidecar
    (``<path>.chk``) recording the expected record count and chain tip;
    verification compares the replayed chain against it.
    """

    def __init__(self, path: str, key: bytes) -> None:
        if not key:
            raise AuditTrailError("audit trail key must be non-empty")
        self._path = path
        self._key = key
        self._last_hash = GENESIS_HASH
        self._next_seq = 0
        if os.path.exists(path):
            # Re-open an existing trail: verify and pick up the chain tip.
            for _ in self.verify_and_read():
                pass

    @property
    def path(self) -> str:
        return self._path

    @property
    def record_count(self) -> int:
        return self._next_seq

    # ------------------------------------------------------------------
    def append(self, event_type: str, timestamp: float, payload: dict) -> int:
        """Append one event; returns its sequence number."""
        body = {
            "seq": self._next_seq,
            "ts": timestamp,
            "type": event_type,
            "payload": payload,
        }
        record_hash = _chain_hash(self._last_hash, body)
        line = dict(body, hash=record_hash, tag=_seal(self._key, record_hash))
        try:
            with open(self._path, "a", encoding="utf-8") as handle:
                handle.write(json.dumps(line, sort_keys=True))
                handle.write("\n")
        except OSError as exc:
            raise AuditTrailError(f"cannot append to {self._path!r}: {exc}") from exc
        self._last_hash = record_hash
        self._next_seq += 1
        self._write_checkpoint()
        return body["seq"]

    # ------------------------------------------------------------------
    @property
    def _checkpoint_path(self) -> str:
        return self._path + ".chk"

    def _checkpoint_tag(self, count: int, last_hash: str) -> str:
        return _seal(self._key, f"{count}|{last_hash}")

    def _write_checkpoint(self) -> None:
        checkpoint = {
            "count": self._next_seq,
            "last_hash": self._last_hash,
            "tag": self._checkpoint_tag(self._next_seq, self._last_hash),
        }
        try:
            with open(self._checkpoint_path, "w", encoding="utf-8") as handle:
                json.dump(checkpoint, handle)
        except OSError as exc:
            raise AuditTrailError(
                f"cannot write checkpoint {self._checkpoint_path!r}: {exc}"
            ) from exc

    def _verify_checkpoint(self, count: int, last_hash: str) -> None:
        """Detect truncation (or checkpoint tampering) after a replay."""
        if not os.path.exists(self._checkpoint_path):
            if count:
                raise AuditTrailError(
                    f"{self._path}: checkpoint file missing for a non-empty "
                    "trail (possible truncation)"
                )
            return
        try:
            with open(self._checkpoint_path, "r", encoding="utf-8") as handle:
                checkpoint = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise AuditTrailError(
                f"{self._path}: unreadable checkpoint: {exc}"
            ) from exc
        expected_tag = self._checkpoint_tag(
            checkpoint.get("count", -1), checkpoint.get("last_hash", "")
        )
        if not hmac.compare_digest(checkpoint.get("tag", ""), expected_tag):
            raise AuditTrailError(f"{self._path}: checkpoint seal invalid")
        if checkpoint["count"] != count or checkpoint["last_hash"] != last_hash:
            raise AuditTrailError(
                f"{self._path}: trail does not match its checkpoint "
                f"(expected {checkpoint['count']} records, found {count}; "
                "possible truncation)"
            )

    # ------------------------------------------------------------------
    def verify_and_read(self) -> Iterator[AuditEvent]:
        """Yield every event, verifying the chain and seals as it goes.

        Raises :class:`~repro.errors.AuditTrailError` at the first record
        whose hash chain or HMAC seal does not verify.  Also updates the
        in-memory chain tip so :meth:`append` continues the chain.
        """
        if not os.path.exists(self._path):
            self._verify_checkpoint(0, GENESIS_HASH)
            return
        prev_hash = GENESIS_HASH
        expected_seq = 0
        with open(self._path, "r", encoding="utf-8") as handle:
            for line_no, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise AuditTrailError(
                        f"{self._path}:{line_no}: corrupt JSON"
                    ) from exc
                body = {
                    "seq": record.get("seq"),
                    "ts": record.get("ts"),
                    "type": record.get("type"),
                    "payload": record.get("payload"),
                }
                if body["seq"] != expected_seq:
                    raise AuditTrailError(
                        f"{self._path}:{line_no}: sequence break "
                        f"(expected {expected_seq}, got {body['seq']})"
                    )
                record_hash = _chain_hash(prev_hash, body)
                if record.get("hash") != record_hash:
                    raise AuditTrailError(
                        f"{self._path}:{line_no}: hash chain broken"
                    )
                if not hmac.compare_digest(
                    record.get("tag", ""), _seal(self._key, record_hash)
                ):
                    raise AuditTrailError(
                        f"{self._path}:{line_no}: HMAC seal invalid"
                    )
                prev_hash = record_hash
                expected_seq += 1
                yield AuditEvent(
                    seq=body["seq"],
                    timestamp=body["ts"],
                    event_type=body["type"],
                    payload=body["payload"],
                )
        self._verify_checkpoint(expected_seq, prev_hash)
        self._last_hash = prev_hash
        self._next_seq = expected_seq

    def verify(self) -> int:
        """Verify the whole trail; return the number of valid records."""
        count = 0
        for _ in self.verify_and_read():
            count += 1
        return count


class AuditTrailManager:
    """A directory of rotated trails, as processed at PDP start-up.

    Section 5.2: "the PDP ... processes the last *n* audit trails
    starting from time *t* (where *t* and *n* are administrative
    parameters)".  The manager rotates the active trail after
    ``max_records`` events and can list/select trails for recovery.
    """

    def __init__(self, directory: str, key: bytes, max_records: int = 10_000) -> None:
        if max_records < 1:
            raise AuditTrailError("max_records must be >= 1")
        os.makedirs(directory, exist_ok=True)
        self._directory = directory
        self._key = key
        self._max_records = max_records
        self._active: SecureAuditTrail | None = None
        existing = self.trail_paths()
        if existing:
            self._active = SecureAuditTrail(existing[-1], key)

    @property
    def directory(self) -> str:
        return self._directory

    def trail_paths(self) -> list[str]:
        """All trail files, oldest first (lexicographic index order)."""
        names = sorted(
            name
            for name in os.listdir(self._directory)
            if name.startswith("audit-") and name.endswith(".log")
        )
        return [os.path.join(self._directory, name) for name in names]

    def _new_trail(self) -> SecureAuditTrail:
        index = len(self.trail_paths())
        path = os.path.join(self._directory, f"audit-{index:06d}.log")
        return SecureAuditTrail(path, self._key)

    def append(self, event_type: str, timestamp: float, payload: dict) -> None:
        """Append to the active trail, rotating when it is full."""
        if self._active is None or self._active.record_count >= self._max_records:
            self._active = self._new_trail()
        self._active.append(event_type, timestamp, payload)

    def last_trails(self, n: int) -> list[SecureAuditTrail]:
        """The last ``n`` trails (or all of them when fewer exist)."""
        if n < 0:
            raise AuditTrailError("n must be >= 0")
        return [
            SecureAuditTrail(path, self._key) for path in self.trail_paths()[-n:]
        ] if n else []

    def verify_all(self) -> int:
        """Verify every trail in the directory; return total records.

        Raises :class:`~repro.errors.AuditTrailError` at the first trail
        that fails its hash chain, seals or checkpoint.
        """
        total = 0
        for path in self.trail_paths():
            total += SecureAuditTrail(path, self._key).verify()
        return total

    def events(
        self, last_n_trails: int | None = None, since: float = 0.0
    ) -> Iterator[AuditEvent]:
        """Verified events from the last *n* trails, from time *t* on."""
        paths = self.trail_paths()
        if last_n_trails is not None:
            paths = paths[-last_n_trails:] if last_n_trails else []
        for path in paths:
            trail = SecureAuditTrail(path, self._key)
            for event in trail.verify_and_read():
                if event.timestamp >= since:
                    yield event

"""A tamper-evident secure audit trail (paper Section 5.2, reference [5]).

The paper logs every PDP request/response in "a cryptographically
protected log of events in stable storage" (a PKI-based secure audit web
service).  We reproduce its tamper-evidence with stdlib primitives:

* each trail is an append-only JSONL file;
* record *i* carries ``hash_i = SHA-256(hash_{i-1} || canonical payload)``
  (a hash chain, so any modification, insertion, deletion or reordering
  breaks verification from that point on);
* each record additionally carries ``tag_i = HMAC-SHA256(key, hash_i)``,
  standing in for the per-record digital signature of the PKI service —
  an attacker without the trail key cannot re-seal a forged chain.

The substitution (HMAC for PKI signatures) preserves the property the
MSoD implementation relies on: recovered retained ADI comes from a log
that cannot be silently altered.
"""

from __future__ import annotations

import hashlib
import hmac
import json
import os
import warnings
from dataclasses import dataclass
from typing import Iterator

from repro.errors import AuditTrailError

GENESIS_HASH = "0" * 64

#: Event types written by the PERMIS PDP.
EVENT_DECISION = "decision"
EVENT_PURGE = "purge"
EVENT_ADMIN = "admin"


def _canonical(payload: dict) -> bytes:
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()


def _chain_hash(prev_hash: str, payload: dict) -> str:
    digest = hashlib.sha256()
    digest.update(prev_hash.encode())
    digest.update(_canonical(payload))
    return digest.hexdigest()


def _seal(key: bytes, record_hash: str) -> str:
    return hmac.new(key, record_hash.encode(), hashlib.sha256).hexdigest()


@dataclass(frozen=True, slots=True)
class AuditEvent:
    """One verified event read back from a trail."""

    seq: int
    timestamp: float
    event_type: str
    payload: dict


class SecureAuditTrail:
    """One append-only, hash-chained, HMAC-sealed trail file.

    A hash chain alone cannot detect *truncation* — removing the final
    records leaves a shorter but internally consistent chain.  Each
    append therefore also rewrites a sealed checkpoint sidecar
    (``<path>.chk``) recording the expected record count and chain tip;
    verification compares the replayed chain against it.

    Crash tolerance: a process dying mid-append leaves either a *torn*
    final line (partial JSON) or a fully-written record whose checkpoint
    rewrite never happened.  Both are expected outcomes of a crash, not
    tampering, so replay skips the torn tail with a warning (and the
    next ``append`` truncates it away before writing) and tolerates a
    trail exactly one record ahead of its checkpoint.  Anything else —
    a torn line *before* the tail, a chain break, a bad seal, a trail
    behind its checkpoint — still raises.

    ``fsync=True`` makes every append durable (flush + ``os.fsync``)
    before returning; the cluster's log-shipping replication relies on
    this so an acknowledged decision survives primary death.

    ``tolerate_ahead=True`` marks a *live reader* — a process replaying
    a trail that another process is still appending to (the cluster's
    standby catch-up).  The reader's ``readlines()`` snapshot and its
    checkpoint read are not atomic with the writer's append, so the
    checkpoint may legitimately record *more* records than the snapshot
    holds; a live reader accepts that (each record it did read still
    verified its own chain link and seal) instead of mistaking the race
    for truncation.  The default strict mode — a trail's own writer
    re-opening it, or an integrity audit — still raises.
    """

    def __init__(
        self,
        path: str,
        key: bytes,
        *,
        fsync: bool = False,
        tolerate_ahead: bool = False,
    ) -> None:
        if not key:
            raise AuditTrailError("audit trail key must be non-empty")
        self._path = path
        self._key = key
        self._fsync = fsync
        self._tolerate_ahead = tolerate_ahead
        self._last_hash = GENESIS_HASH
        self._next_seq = 0
        self._byte_size = 0
        self._torn_offset: int | None = None
        if os.path.exists(path):
            # Re-open an existing trail: verify and pick up the chain tip.
            for _ in self.verify_and_read():
                pass

    @property
    def path(self) -> str:
        return self._path

    @property
    def record_count(self) -> int:
        return self._next_seq

    @property
    def byte_size(self) -> int:
        """Bytes occupied by the verified records (torn tail excluded)."""
        return self._byte_size

    # ------------------------------------------------------------------
    def append(self, event_type: str, timestamp: float, payload: dict) -> int:
        """Append one event; returns its sequence number."""
        body = {
            "seq": self._next_seq,
            "ts": timestamp,
            "type": event_type,
            "payload": payload,
        }
        record_hash = _chain_hash(self._last_hash, body)
        line = dict(body, hash=record_hash, tag=_seal(self._key, record_hash))
        data = (json.dumps(line, sort_keys=True) + "\n").encode("utf-8")
        try:
            if self._torn_offset is not None:
                # Repair a crash-torn tail before continuing the chain,
                # so the partial line never precedes a valid record.
                with open(self._path, "r+b") as handle:
                    handle.truncate(self._torn_offset)
                self._torn_offset = None
            with open(self._path, "ab") as handle:
                handle.write(data)
                if self._fsync:
                    handle.flush()
                    os.fsync(handle.fileno())
        except OSError as exc:
            raise AuditTrailError(f"cannot append to {self._path!r}: {exc}") from exc
        self._last_hash = record_hash
        self._next_seq += 1
        self._byte_size += len(data)
        self._write_checkpoint()
        return body["seq"]

    # ------------------------------------------------------------------
    @property
    def _checkpoint_path(self) -> str:
        return self._path + ".chk"

    def _checkpoint_tag(self, count: int, last_hash: str) -> str:
        return _seal(self._key, f"{count}|{last_hash}")

    def _write_checkpoint(self) -> None:
        checkpoint = {
            "count": self._next_seq,
            "last_hash": self._last_hash,
            "tag": self._checkpoint_tag(self._next_seq, self._last_hash),
        }
        # Write-to-temp + atomic rename: a concurrent reader (the
        # standby's catch-up) and a crash mid-write both see either the
        # previous complete checkpoint or the new one, never a partial
        # file — a torn .chk would make the whole trail unloadable and
        # block failover.
        tmp_path = self._checkpoint_path + ".tmp"
        try:
            with open(tmp_path, "w", encoding="utf-8") as handle:
                json.dump(checkpoint, handle)
                if self._fsync:
                    handle.flush()
                    os.fsync(handle.fileno())
            os.replace(tmp_path, self._checkpoint_path)
        except OSError as exc:
            raise AuditTrailError(
                f"cannot write checkpoint {self._checkpoint_path!r}: {exc}"
            ) from exc

    def _verify_checkpoint(self, count: int, last_hash: str) -> None:
        """Detect truncation (or checkpoint tampering) after a replay."""
        if not os.path.exists(self._checkpoint_path):
            if count == 1:
                # The appender crashed (or is mid-append) between the
                # very first record and the very first checkpoint write.
                # The record's own seal verified, so accept it — the
                # same window the `count == checkpoint + 1` branch
                # covers once a checkpoint exists.
                warnings.warn(
                    f"{self._path}: no checkpoint yet for a one-record "
                    "trail (crash or in-flight first append); accepting "
                    "the sealed record",
                    stacklevel=2,
                )
                return
            if count:
                raise AuditTrailError(
                    f"{self._path}: checkpoint file missing for a non-empty "
                    "trail (possible truncation)"
                )
            return
        try:
            with open(self._checkpoint_path, "r", encoding="utf-8") as handle:
                checkpoint = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise AuditTrailError(
                f"{self._path}: unreadable checkpoint: {exc}"
            ) from exc
        expected_tag = self._checkpoint_tag(
            checkpoint.get("count", -1), checkpoint.get("last_hash", "")
        )
        if not hmac.compare_digest(checkpoint.get("tag", ""), expected_tag):
            raise AuditTrailError(f"{self._path}: checkpoint seal invalid")
        if count == checkpoint["count"] + 1:
            # One verified record beyond the checkpoint: the appender
            # crashed (or is mid-append) between writing the record and
            # rewriting the sidecar.  The extra record's own seal already
            # verified, so this is not a forgery — accept and warn.
            warnings.warn(
                f"{self._path}: trail is one record ahead of its checkpoint "
                "(crash or in-flight append); accepting the sealed record",
                stacklevel=2,
            )
            return
        if self._tolerate_ahead and checkpoint["count"] > count:
            # Live reader: the writer appended (and atomically renamed a
            # newer checkpoint) between this reader's readlines()
            # snapshot and the checkpoint read.  Every record the
            # snapshot did contain verified its chain link and seal, so
            # the prefix is good; the missing suffix arrives on the next
            # catch-up tick.  Not a truncation: truncation makes the
            # *checkpoint* newer than the trail for a quiescent file,
            # which strict mode (the writer re-opening its own trail,
            # `verify_all`) still rejects.
            return
        if checkpoint["count"] != count or checkpoint["last_hash"] != last_hash:
            raise AuditTrailError(
                f"{self._path}: trail does not match its checkpoint "
                f"(expected {checkpoint['count']} records, found {count}; "
                "possible truncation)"
            )

    # ------------------------------------------------------------------
    def verify_and_read(self) -> Iterator[AuditEvent]:
        """Yield every event, verifying the chain and seals as it goes.

        Raises :class:`~repro.errors.AuditTrailError` at the first record
        whose hash chain or HMAC seal does not verify — except for a
        *torn final line* (partial JSON where the appender crashed or is
        still writing), which is skipped with a warning; the next
        :meth:`append` truncates it away.  Also updates the in-memory
        chain tip so :meth:`append` continues the chain.
        """
        if not os.path.exists(self._path):
            self._verify_checkpoint(0, GENESIS_HASH)
            return
        prev_hash = GENESIS_HASH
        expected_seq = 0
        offset = 0
        valid_offset = 0
        self._torn_offset = None
        with open(self._path, "rb") as handle:
            raw_lines = handle.readlines()
        for line_no, raw in enumerate(raw_lines, start=1):
            offset += len(raw)
            try:
                line = raw.decode("utf-8").strip()
            except UnicodeDecodeError:
                line = None
            if line == "":
                valid_offset = offset
                continue
            record = None
            if line is not None:
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    record = None
            if record is None or not isinstance(record, dict):
                if line_no == len(raw_lines):
                    # A torn tail: the appender died (or is still
                    # writing) mid-line.  Every *sealed* record before
                    # it is intact, so recover those instead of
                    # refusing the whole trail.
                    warnings.warn(
                        f"{self._path}:{line_no}: skipping torn final "
                        "line (crash mid-append)",
                        stacklevel=2,
                    )
                    self._torn_offset = valid_offset
                    break
                raise AuditTrailError(
                    f"{self._path}:{line_no}: corrupt JSON"
                )
            body = {
                "seq": record.get("seq"),
                "ts": record.get("ts"),
                "type": record.get("type"),
                "payload": record.get("payload"),
            }
            if body["seq"] != expected_seq:
                raise AuditTrailError(
                    f"{self._path}:{line_no}: sequence break "
                    f"(expected {expected_seq}, got {body['seq']})"
                )
            record_hash = _chain_hash(prev_hash, body)
            if record.get("hash") != record_hash:
                raise AuditTrailError(
                    f"{self._path}:{line_no}: hash chain broken"
                )
            if not hmac.compare_digest(
                record.get("tag", ""), _seal(self._key, record_hash)
            ):
                raise AuditTrailError(
                    f"{self._path}:{line_no}: HMAC seal invalid"
                )
            prev_hash = record_hash
            expected_seq += 1
            valid_offset = offset
            yield AuditEvent(
                seq=body["seq"],
                timestamp=body["ts"],
                event_type=body["type"],
                payload=body["payload"],
            )
        self._verify_checkpoint(expected_seq, prev_hash)
        self._last_hash = prev_hash
        self._next_seq = expected_seq
        self._byte_size = valid_offset

    def verify(self) -> int:
        """Verify the whole trail; return the number of valid records."""
        count = 0
        for _ in self.verify_and_read():
            count += 1
        return count


class TrailFollower:
    """Resumable, verifying live reader over a rotated trail lineage.

    The reshard migration's transfer primitive: a target shard follows
    a source lineage the way a standby follows its primary, but with a
    *serialisable position* — ``(segment, byte offset, chain tip,
    seq)`` — so the coordinator can persist it and a restarted (or
    different) process resumes exactly where the last poll stopped.
    Each :meth:`poll` seeks to the stored offset and yields only the
    events appended since, verifying every record's chain link and
    HMAC seal against the stored tip as it goes; cost is proportional
    to the **new tail**, not the lineage's whole history.

    Rotation seals segments — the manager only ever appends to the
    newest file — so a segment read to its end is advanced past once a
    newer one exists (each segment restarts its chain at the genesis
    hash).  A torn or still-being-written final line stops the poll at
    the last verified record without advancing the position; the next
    poll retries it.  Tampering anywhere in the polled tail still
    raises.  The checkpoint sidecar is *not* consulted: a follower
    only ever accepts records whose own seals verify, and truncation
    detection remains the writer's (and ``verify_all``'s) concern.
    """

    def __init__(
        self, directory: str, key: bytes, *, position: dict | None = None
    ) -> None:
        if not key:
            raise AuditTrailError("audit trail key must be non-empty")
        self._directory = directory
        self._key = key
        if position:
            self._segment = int(position["segment"])
            self._offset = int(position["offset"])
            self._prev_hash = str(position["hash"])
            self._seq = int(position["seq"])
        else:
            self._segment = 0
            self._offset = 0
            self._prev_hash = GENESIS_HASH
            self._seq = 0

    def position(self) -> dict:
        """The resume point: serialise, persist, pass back as ``position``."""
        return {
            "segment": self._segment,
            "offset": self._offset,
            "hash": self._prev_hash,
            "seq": self._seq,
        }

    def _segment_paths(self) -> list[str]:
        try:
            names = sorted(
                name
                for name in os.listdir(self._directory)
                if name.startswith("audit-") and name.endswith(".log")
            )
        except FileNotFoundError:
            return []
        return [os.path.join(self._directory, name) for name in names]

    def poll(self) -> Iterator[AuditEvent]:
        """Yield the events appended since the last poll, verified."""
        while True:
            paths = self._segment_paths()
            if self._segment >= len(paths):
                return
            yield from self._poll_segment(paths[self._segment])
            # Advance only when a re-listed directory shows a newer
            # segment — and then only after one more poll of ours: the
            # writer may have appended to it *and* rotated between our
            # read and the re-listing.  Once a newer segment exists,
            # ours is sealed, so that final poll drains it completely.
            paths = self._segment_paths()
            if self._segment >= len(paths) - 1:
                return
            yield from self._poll_segment(paths[self._segment])
            self._segment += 1
            self._offset = 0
            self._prev_hash = GENESIS_HASH
            self._seq = 0

    def _poll_segment(self, path: str) -> Iterator[AuditEvent]:
        try:
            with open(path, "rb") as handle:
                handle.seek(self._offset)
                raw_lines = handle.readlines()
        except OSError as exc:
            raise AuditTrailError(f"cannot read {path!r}: {exc}") from exc
        offset = self._offset
        for raw in raw_lines:
            offset += len(raw)
            try:
                line = raw.decode("utf-8").strip()
            except UnicodeDecodeError:
                line = None
            if line == "":
                self._offset = offset
                continue
            record = None
            if line is not None and raw.endswith(b"\n"):
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    record = None
            if record is None or not isinstance(record, dict):
                # Partial final line: the writer is mid-append (it
                # completes next poll) or crashed mid-line (the next
                # append truncates it).  Either way, stop *without*
                # advancing — never treat it as tampering.
                return
            body = {
                "seq": record.get("seq"),
                "ts": record.get("ts"),
                "type": record.get("type"),
                "payload": record.get("payload"),
            }
            if body["seq"] != self._seq:
                raise AuditTrailError(
                    f"{path}: sequence break at follower offset "
                    f"{self._offset} (expected {self._seq}, got "
                    f"{body['seq']})"
                )
            record_hash = _chain_hash(self._prev_hash, body)
            if record.get("hash") != record_hash:
                raise AuditTrailError(
                    f"{path}: hash chain broken at seq {self._seq}"
                )
            if not hmac.compare_digest(
                record.get("tag", ""), _seal(self._key, record_hash)
            ):
                raise AuditTrailError(
                    f"{path}: HMAC seal invalid at seq {self._seq}"
                )
            self._prev_hash = record_hash
            self._seq += 1
            self._offset = offset
            yield AuditEvent(
                seq=body["seq"],
                timestamp=body["ts"],
                event_type=body["type"],
                payload=body["payload"],
            )


class AuditTrailManager:
    """A directory of rotated trails, as processed at PDP start-up.

    Section 5.2: "the PDP ... processes the last *n* audit trails
    starting from time *t* (where *t* and *n* are administrative
    parameters)".  The manager rotates the active trail after
    ``max_records`` events — or, when ``max_bytes`` is set, once the
    active trail file reaches that many bytes, whichever comes first
    (bounded files keep follower catch-up and recovery replay O(file),
    whatever the per-event payload size).  ``fsync=True`` makes every
    append durable before it is acknowledged.

    ``tolerate_ahead=True`` makes this a *live-reader* manager: every
    trail it opens tolerates a checkpoint recording more records than
    the read snapshot holds (see :class:`SecureAuditTrail`).  The
    cluster's standby catch-up and failover sealing use this; a trail
    directory's own writer must not.
    """

    def __init__(
        self,
        directory: str,
        key: bytes,
        max_records: int = 10_000,
        *,
        max_bytes: int | None = None,
        fsync: bool = False,
        tolerate_ahead: bool = False,
    ) -> None:
        if max_records < 1:
            raise AuditTrailError("max_records must be >= 1")
        if max_bytes is not None and max_bytes < 1:
            raise AuditTrailError("max_bytes must be >= 1 (or None)")
        os.makedirs(directory, exist_ok=True)
        self._directory = directory
        self._key = key
        self._max_records = max_records
        self._max_bytes = max_bytes
        self._fsync = fsync
        self._tolerate_ahead = tolerate_ahead
        self._active: SecureAuditTrail | None = None
        existing = self.trail_paths()
        if existing:
            self._active = SecureAuditTrail(
                existing[-1], key, fsync=fsync, tolerate_ahead=tolerate_ahead
            )

    @property
    def directory(self) -> str:
        return self._directory

    def trail_paths(self) -> list[str]:
        """All trail files, oldest first (lexicographic index order)."""
        names = sorted(
            name
            for name in os.listdir(self._directory)
            if name.startswith("audit-") and name.endswith(".log")
        )
        return [os.path.join(self._directory, name) for name in names]

    def _new_trail(self) -> SecureAuditTrail:
        index = len(self.trail_paths())
        path = os.path.join(self._directory, f"audit-{index:06d}.log")
        return SecureAuditTrail(path, self._key, fsync=self._fsync)

    def _active_is_full(self) -> bool:
        active = self._active
        if active is None:
            return True
        if active.record_count >= self._max_records:
            return True
        return (
            self._max_bytes is not None
            and active.record_count > 0
            and active.byte_size >= self._max_bytes
        )

    def append(self, event_type: str, timestamp: float, payload: dict) -> None:
        """Append to the active trail, rotating when it is full."""
        if self._active_is_full():
            self._active = self._new_trail()
        self._active.append(event_type, timestamp, payload)

    def last_trails(self, n: int) -> list[SecureAuditTrail]:
        """The last ``n`` trails (or all of them when fewer exist)."""
        if n < 0:
            raise AuditTrailError("n must be >= 0")
        return [
            SecureAuditTrail(
                path, self._key, tolerate_ahead=self._tolerate_ahead
            )
            for path in self.trail_paths()[-n:]
        ] if n else []

    def verify_all(self) -> int:
        """Verify every trail in the directory; return total records.

        Raises :class:`~repro.errors.AuditTrailError` at the first trail
        that fails its hash chain, seals or checkpoint.
        """
        total = 0
        for path in self.trail_paths():
            total += SecureAuditTrail(path, self._key).verify()
        return total

    def events(
        self, last_n_trails: int | None = None, since: float = 0.0
    ) -> Iterator[AuditEvent]:
        """Verified events from the last *n* trails, from time *t* on."""
        paths = self.trail_paths()
        if last_n_trails is not None:
            paths = paths[-last_n_trails:] if last_n_trails else []
        for path in paths:
            trail = SecureAuditTrail(
                path, self._key, tolerate_ahead=self._tolerate_ahead
            )
            for event in trail.verify_and_read():
                if event.timestamp >= since:
                    yield event

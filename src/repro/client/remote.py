"""Remote PDP clients: the existing PEP, pointed at a network service.

:class:`RemotePDP` implements the
:class:`~repro.framework.pdp.PolicyDecisionPoint` protocol over the
JSON-lines wire format, so a
:class:`~repro.framework.pep.PolicyEnforcementPoint` works unchanged
whether its PDP is in-process or a socket away.  :class:`AsyncRemotePDP`
is the asyncio variant for async applications.

Retry discipline — only provably idempotent work is retried:

* *connect* failures (typed :class:`~repro.errors.PDPConnectError`):
  nothing reached the server, so every operation — ``decide``
  included — is retried with jittered exponential backoff.
* *overload* rejections: the server sheds load **before** queueing, so
  the request never entered a shard; retried after the server's
  ``retry_after`` hint (plus jitter).
* ``healthz``/``metrics``: read-only; retried on any transport error.
* a ``decide`` that failed **after** the request was written is *not*
  retried — the server may have committed the grant to the retained
  ADI, and replaying it could double-record history.  The caller gets a
  typed :class:`~repro.errors.PDPUnavailableError` instead.
"""

from __future__ import annotations

import asyncio
import itertools
import random
import socket
import threading
import time

from repro.core.decision import Decision, DecisionRequest
from repro.core.policy_epoch import PolicySwapReport, PolicyVersion
from repro.errors import (
    PDPConnectError,
    PDPFencedError,
    PDPNotPrimaryError,
    PDPOverloadedError,
    PDPUnavailableError,
    PolicyError,
    ProtocolError,
)
from repro.framework.pdp import PolicyDecisionPoint
from repro.perf import NOOP, PerfRecorder
from repro.server import protocol

_FRAME_COUNTER = itertools.count(1)


def _next_frame_id() -> str:
    return f"c-{next(_FRAME_COUNTER):08d}"


def _check_response(frame: dict, frame_id: str) -> dict:
    """Validate a response envelope; raise the typed error it carries."""
    if frame.get("id") != frame_id:
        raise ProtocolError(
            f"response id {frame.get('id')!r} does not match request "
            f"id {frame_id!r} (connection used concurrently?)"
        )
    if frame.get("ok") is True:
        return frame
    error = frame.get("error")
    if not isinstance(error, dict):
        raise ProtocolError("response is neither ok nor a valid error frame")
    kind = error.get("kind")
    detail = str(error.get("detail", ""))
    if kind == protocol.ERR_OVERLOADED:
        retry_after = error.get("retry_after")
        raise PDPOverloadedError(
            f"remote PDP overloaded: {detail}",
            retry_after=float(retry_after) if retry_after else 0.0,
        )
    if kind == protocol.ERR_PROTOCOL:
        raise ProtocolError(f"remote PDP rejected the frame: {detail}")
    if kind == protocol.ERR_FENCED:
        raise PDPFencedError(f"remote PDP fenced the request: {detail}")
    if kind == protocol.ERR_NOT_PRIMARY:
        raise PDPNotPrimaryError(f"remote PDP is not primary: {detail}")
    if kind == protocol.ERR_POLICY:
        # A rejected policy-reload: caller error, never retried (and the
        # server's active policy is untouched).
        raise PolicyError(f"remote PDP rejected the policy: {detail}")
    raise PDPUnavailableError(f"remote PDP error ({kind}): {detail}")


def _policy_source_to_xml(policy) -> str:
    """Normalise a ``PolicySource`` to canonical wire XML.

    Accepts the same union as :func:`repro.api.open_pdp` (an
    :class:`MSoDPolicySet`, a path, or an XML string) and parses/
    validates it *locally* first, so a malformed source fails on the
    client without a round trip.
    """
    from repro.api import load_policy_source
    from repro.xmlpolicy import write_policy_set

    return write_policy_set(load_policy_source(policy), pretty=False)


def _version_from_status_body(body) -> PolicyVersion:
    version = body.get("version") if isinstance(body, dict) else None
    try:
        return PolicyVersion.from_dict(version if isinstance(version, dict) else {})
    except PolicyError as exc:
        raise ProtocolError(f"invalid policy-status body: {exc}") from exc


def _report_from_reload_body(body) -> PolicySwapReport:
    try:
        return PolicySwapReport.from_dict(body if isinstance(body, dict) else {})
    except PolicyError as exc:
        raise ProtocolError(f"invalid policy-reload body: {exc}") from exc


class _Backoff:
    """Full-jitter exponential backoff shared by both client variants."""

    def __init__(
        self, base: float, cap: float, rng: random.Random | None
    ) -> None:
        self._base = base
        self._cap = cap
        self._rng = rng if rng is not None else random.Random()

    def delay(self, attempt: int, floor: float = 0.0) -> float:
        ceiling = min(self._cap, self._base * (2**attempt))
        return floor + self._rng.uniform(0.0, ceiling)


# ---------------------------------------------------------------------------
# Synchronous client
# ---------------------------------------------------------------------------
class _SyncConnection:
    """One blocking socket speaking newline-delimited JSON frames."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float,
        connect_timeout: float | None = None,
    ) -> None:
        self._timeout = timeout
        self._sock = socket.create_connection(
            (host, port),
            timeout=connect_timeout if connect_timeout is not None else timeout,
        )
        self._sock.settimeout(timeout)
        self._file = self._sock.makefile("rb")

    def exchange(self, frame: dict, timeout: float | None = None) -> dict:
        if timeout is not None:
            self._sock.settimeout(timeout)
        try:
            self._sock.sendall(protocol.encode_frame(frame))
            line = self._file.readline(protocol.MAX_FRAME_BYTES + 1)
        finally:
            if timeout is not None:
                self._sock.settimeout(self._timeout)
        if not line.endswith(b"\n"):
            raise PDPUnavailableError(
                "connection closed mid-response"
                if not line
                else "oversized or truncated response frame"
            )
        return protocol.decode_frame(line)

    def close(self) -> None:
        try:
            self._file.close()
            self._sock.close()
        except OSError:  # pragma: no cover - best-effort teardown
            pass


class RemotePDP(PolicyDecisionPoint):
    """A :class:`PolicyDecisionPoint` backed by a remote MSoD server.

    Thread-safe: a bounded pool of pooled connections serves concurrent
    callers (each request has exclusive use of one connection for its
    round trip, preserving the one-frame-in-flight protocol invariant).

    Parameters
    ----------
    host, port:
        The server address.
    pool_size:
        Maximum concurrent connections (callers beyond it queue).
    timeout:
        Per-operation socket timeout, seconds.
    health_timeout:
        Socket timeout for ``healthz`` probes only; defaults to the
        general ``timeout``.  A cluster health checker sets this much
        lower than the decide timeout so a dead node is detected in
        probe-time, not decide-time (failover satellite).
    max_retries:
        Extra attempts for retriable failures (see module docstring).
    backoff_base, backoff_cap:
        Full-jitter exponential backoff parameters, seconds.
    rng:
        Injectable randomness source for deterministic tests.
    perf:
        Optional recorder for client-side counters (``client.calls``,
        ``client.retries``, ``client.overload_rejections``,
        ``client.transport_failures``) and the ``client.call``
        round-trip stage histogram.
    """

    def __init__(
        self,
        host: str,
        port: int,
        pool_size: int = 4,
        timeout: float = 5.0,
        health_timeout: float | None = None,
        max_retries: int = 2,
        backoff_base: float = 0.02,
        backoff_cap: float = 0.5,
        rng: random.Random | None = None,
        perf: PerfRecorder | None = None,
    ) -> None:
        self._host = host
        self._port = port
        self._timeout = timeout
        self._health_timeout = (
            health_timeout if health_timeout is not None else timeout
        )
        self._max_retries = max_retries
        self._backoff = _Backoff(backoff_base, backoff_cap, rng)
        self._slots = threading.BoundedSemaphore(pool_size)
        self._idle: list[_SyncConnection] = []
        self._idle_lock = threading.Lock()
        self._closed = False
        self._perf = perf if perf is not None else NOOP

    @property
    def perf(self) -> PerfRecorder:
        return self._perf

    # -- connection pool ----------------------------------------------
    def _acquire(self, connect_timeout: float | None = None) -> _SyncConnection:
        with self._idle_lock:
            if self._idle:
                return self._idle.pop()
        try:
            return _SyncConnection(
                self._host,
                self._port,
                self._timeout,
                connect_timeout=connect_timeout,
            )
        except OSError as exc:
            raise PDPConnectError(
                f"cannot connect to PDP at {self._host}:{self._port}: {exc}"
            ) from exc

    def _release(self, conn: _SyncConnection, reusable: bool) -> None:
        if reusable and not self._closed:
            with self._idle_lock:
                self._idle.append(conn)
        else:
            conn.close()

    def close(self) -> None:
        """Close every pooled connection.  Idempotent."""
        self._closed = True
        with self._idle_lock:
            idle, self._idle = self._idle, []
        for conn in idle:
            conn.close()

    def __enter__(self) -> "RemotePDP":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- one round trip ------------------------------------------------
    def _exchange_once(
        self, frame: dict, frame_id: str, timeout: float | None = None
    ) -> dict:
        """One request/response on one pooled connection."""
        with self._slots:
            conn = self._acquire(connect_timeout=timeout)
            reusable = False
            try:
                try:
                    response = conn.exchange(frame, timeout=timeout)
                except (OSError, EOFError) as exc:
                    raise PDPUnavailableError(
                        f"PDP transport failure: {exc}"
                    ) from exc
                reusable = True
                return _check_response(response, frame_id)
            finally:
                self._release(conn, reusable)

    def _call(
        self,
        op: str,
        retriable: bool,
        op_timeout: float | None = None,
        **fields,
    ) -> dict:
        perf = self._perf
        timing = perf.enabled
        perf.incr("client.calls")
        attempt = 0
        while True:
            frame_id = _next_frame_id()
            frame = protocol.request_frame(op, frame_id, **fields)
            started = perf.start() if timing else 0.0
            try:
                response = self._exchange_once(
                    frame, frame_id, timeout=op_timeout
                )
                if timing:
                    perf.stop("client.call", started)
                return response
            except PDPOverloadedError as exc:
                # Shed *before* queueing: always safe to retry.
                perf.incr("client.overload_rejections")
                if attempt >= self._max_retries:
                    raise
                time.sleep(self._backoff.delay(attempt, floor=exc.retry_after))
            except PDPConnectError:
                # Nothing was sent: safe to retry even a decide.
                perf.incr("client.transport_failures")
                if attempt >= self._max_retries:
                    raise
                time.sleep(self._backoff.delay(attempt))
            except PDPUnavailableError:
                perf.incr("client.transport_failures")
                if not retriable or attempt >= self._max_retries:
                    raise
                time.sleep(self._backoff.delay(attempt))
            perf.incr("client.retries")
            attempt += 1

    # -- the PolicyDecisionPoint protocol ------------------------------
    def decide(
        self, request: DecisionRequest, *, epoch: int | None = None
    ) -> Decision:
        """Evaluate one request on the remote PDP.

        Raises :class:`PDPUnavailableError` (or its
        :class:`PDPOverloadedError` subclass once the retry budget for
        overload rejections is exhausted) instead of socket errors.

        ``epoch``, when given, rides on the decide frame; a cluster
        node compares it against its own fencing epoch and answers
        ``fenced`` (:class:`~repro.errors.PDPFencedError`) when the
        client's routing table is stale.  Plain single-node servers
        ignore the field.
        """
        fields: dict = {"request": protocol.request_to_wire(request)}
        if epoch is not None:
            fields["epoch"] = epoch
        response = self._call(
            protocol.OP_DECIDE,
            retriable=False,  # post-send decide retries could double-record
            **fields,
        )
        return protocol.decision_from_wire(response.get("decision"))

    # -- control verbs -------------------------------------------------
    def healthz(self) -> dict:
        """The server's health snapshot (status + per-shard backlog).

        Uses the dedicated ``health_timeout`` (connect and read), so a
        probe against a hung node fails fast even when the decide
        timeout is generous.
        """
        return self._call(
            protocol.OP_HEALTHZ,
            retriable=True,
            op_timeout=self._health_timeout,
        ).get("body", {})

    def metrics(self) -> dict:
        """The server's metrics snapshot (perf counters + shard stats)."""
        return self._call(protocol.OP_METRICS, retriable=True).get("body", {})

    def metrics_text(self) -> str:
        """The server's metrics in Prometheus text exposition format."""
        body = self._call(
            protocol.OP_METRICS,
            retriable=True,
            format=protocol.METRICS_FORMAT_PROMETHEUS,
        ).get("body")
        if not isinstance(body, str):
            raise ProtocolError("prometheus metrics body must be a string")
        return body

    def slowlog(self) -> dict:
        """The server's slowest-decision traces (requires server tracing)."""
        return self._call(protocol.OP_SLOWLOG, retriable=True).get("body", {})

    # -- policy management ---------------------------------------------
    def policy_status(self) -> dict:
        """The ``policy-status`` body: active version + reload count."""
        return self._call(protocol.OP_POLICY_STATUS, retriable=True).get(
            "body", {}
        )

    def policy_version(self) -> PolicyVersion:
        """The policy version the server currently decides under."""
        return _version_from_status_body(self.policy_status())

    def reload_policy(self, policy) -> PolicySwapReport:
        """Atomically swap the server's policy set (zero downtime).

        Same ``PolicySource`` union and semantics as
        :meth:`repro.api.LocalPDP.reload_policy`: the source is parsed
        and validated locally, shipped as canonical XML, and swapped in
        by the server between micro-batches.  Safe to retry — reloading
        an identical set is a digest no-op on the server — and a
        server-side rejection raises
        :class:`~repro.errors.PolicyError`, leaving the active policy
        untouched.
        """
        body = self._call(
            protocol.OP_POLICY_RELOAD,
            retriable=True,
            policy_xml=_policy_source_to_xml(policy),
        ).get("body")
        return _report_from_reload_body(body)


# ---------------------------------------------------------------------------
# Asyncio client
# ---------------------------------------------------------------------------
class AsyncRemotePDP:
    """The asyncio twin of :class:`RemotePDP`.

    Same wire protocol, retry discipline and pooling semantics, with
    coroutine methods (``await pdp.decide(request)``) for applications
    that live on an event loop.
    """

    def __init__(
        self,
        host: str,
        port: int,
        pool_size: int = 4,
        timeout: float = 5.0,
        health_timeout: float | None = None,
        max_retries: int = 2,
        backoff_base: float = 0.02,
        backoff_cap: float = 0.5,
        rng: random.Random | None = None,
    ) -> None:
        self._host = host
        self._port = port
        self._timeout = timeout
        self._health_timeout = (
            health_timeout if health_timeout is not None else timeout
        )
        self._max_retries = max_retries
        self._backoff = _Backoff(backoff_base, backoff_cap, rng)
        self._pool_size = pool_size
        self._slots: asyncio.Semaphore | None = None
        self._idle: list[tuple[asyncio.StreamReader, asyncio.StreamWriter]] = []
        self._closed = False

    def _semaphore(self) -> asyncio.Semaphore:
        if self._slots is None:
            self._slots = asyncio.Semaphore(self._pool_size)
        return self._slots

    async def _acquire(
        self, timeout: float | None = None
    ) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        if self._idle:
            return self._idle.pop()
        try:
            return await asyncio.wait_for(
                asyncio.open_connection(
                    self._host, self._port, limit=protocol.MAX_FRAME_BYTES
                ),
                timeout=timeout if timeout is not None else self._timeout,
            )
        except (OSError, asyncio.TimeoutError) as exc:
            raise PDPConnectError(
                f"cannot connect to PDP at {self._host}:{self._port}: {exc}"
            ) from exc

    async def _release(
        self,
        conn: tuple[asyncio.StreamReader, asyncio.StreamWriter],
        reusable: bool,
    ) -> None:
        if reusable and not self._closed:
            self._idle.append(conn)
        else:
            _, writer = conn
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, ConnectionError):  # pragma: no cover
                pass

    async def close(self) -> None:
        """Close every pooled connection.  Idempotent."""
        self._closed = True
        idle, self._idle = self._idle, []
        for conn in idle:
            await self._release(conn, reusable=False)

    async def __aenter__(self) -> "AsyncRemotePDP":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -- one round trip ------------------------------------------------
    async def _exchange_once(
        self, frame: dict, frame_id: str, timeout: float | None = None
    ) -> dict:
        op_timeout = timeout if timeout is not None else self._timeout
        async with self._semaphore():
            conn = await self._acquire(timeout=timeout)
            reader, writer = conn
            reusable = False
            try:
                try:
                    writer.write(protocol.encode_frame(frame))
                    await asyncio.wait_for(
                        writer.drain(), timeout=op_timeout
                    )
                    line = await asyncio.wait_for(
                        reader.readline(), timeout=op_timeout
                    )
                except (
                    OSError,
                    ConnectionError,
                    asyncio.TimeoutError,
                    asyncio.LimitOverrunError,
                    ValueError,
                ) as exc:
                    raise PDPUnavailableError(
                        f"PDP transport failure: {exc}"
                    ) from exc
                if not line.endswith(b"\n"):
                    raise PDPUnavailableError("connection closed mid-response")
                reusable = True
                return _check_response(protocol.decode_frame(line), frame_id)
            finally:
                await self._release(conn, reusable)

    async def _call(
        self,
        op: str,
        retriable: bool,
        op_timeout: float | None = None,
        **fields,
    ) -> dict:
        attempt = 0
        while True:
            frame_id = _next_frame_id()
            frame = protocol.request_frame(op, frame_id, **fields)
            try:
                return await self._exchange_once(
                    frame, frame_id, timeout=op_timeout
                )
            except PDPOverloadedError as exc:
                if attempt >= self._max_retries:
                    raise
                await asyncio.sleep(
                    self._backoff.delay(attempt, floor=exc.retry_after)
                )
            except PDPConnectError:
                # Nothing was sent: safe to retry even a decide.
                if attempt >= self._max_retries:
                    raise
                await asyncio.sleep(self._backoff.delay(attempt))
            except PDPUnavailableError:
                if not retriable or attempt >= self._max_retries:
                    raise
                await asyncio.sleep(self._backoff.delay(attempt))
            attempt += 1

    # -- verbs ---------------------------------------------------------
    async def decide(
        self, request: DecisionRequest, *, epoch: int | None = None
    ) -> Decision:
        """Evaluate one request on the remote PDP (coroutine)."""
        fields: dict = {"request": protocol.request_to_wire(request)}
        if epoch is not None:
            fields["epoch"] = epoch
        response = await self._call(
            protocol.OP_DECIDE,
            retriable=False,
            **fields,
        )
        return protocol.decision_from_wire(response.get("decision"))

    async def healthz(self) -> dict:
        """The server's health snapshot (coroutine; fast timeout)."""
        return (
            await self._call(
                protocol.OP_HEALTHZ,
                retriable=True,
                op_timeout=self._health_timeout,
            )
        ).get("body", {})

    async def metrics(self) -> dict:
        """The server's metrics snapshot (coroutine)."""
        return (await self._call(protocol.OP_METRICS, retriable=True)).get(
            "body", {}
        )

    async def metrics_text(self) -> str:
        """The server's Prometheus text exposition (coroutine)."""
        body = (
            await self._call(
                protocol.OP_METRICS,
                retriable=True,
                format=protocol.METRICS_FORMAT_PROMETHEUS,
            )
        ).get("body")
        if not isinstance(body, str):
            raise ProtocolError("prometheus metrics body must be a string")
        return body

    async def slowlog(self) -> dict:
        """The server's slowest-decision traces (coroutine)."""
        return (await self._call(protocol.OP_SLOWLOG, retriable=True)).get(
            "body", {}
        )

    # -- policy management ---------------------------------------------
    async def policy_status(self) -> dict:
        """The ``policy-status`` body (coroutine)."""
        return (
            await self._call(protocol.OP_POLICY_STATUS, retriable=True)
        ).get("body", {})

    async def policy_version(self) -> PolicyVersion:
        """The policy version the server currently decides under."""
        return _version_from_status_body(await self.policy_status())

    async def reload_policy(self, policy) -> PolicySwapReport:
        """Atomically swap the server's policy set (coroutine)."""
        body = (
            await self._call(
                protocol.OP_POLICY_RELOAD,
                retriable=True,
                policy_xml=_policy_source_to_xml(policy),
            )
        ).get("body")
        return _report_from_reload_body(body)

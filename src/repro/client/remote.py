"""Remote PDP clients: the existing PEP, pointed at a network service.

:class:`RemotePDP` implements the
:class:`~repro.framework.pdp.PolicyDecisionPoint` protocol over the
JSON-lines wire format, so a
:class:`~repro.framework.pep.PolicyEnforcementPoint` works unchanged
whether its PDP is in-process or a socket away.  :class:`AsyncRemotePDP`
is the asyncio variant for async applications.

Retry discipline — only provably idempotent work is retried:

* *connect* failures (typed :class:`~repro.errors.PDPConnectError`):
  nothing reached the server, so every operation — ``decide``
  included — is retried with jittered exponential backoff.
* *overload* rejections: the server sheds load **before** queueing, so
  the request never entered a shard; retried after the server's
  ``retry_after`` hint (plus jitter).
* ``healthz``/``metrics``: read-only; retried on any transport error.
* a ``decide`` that failed **after** the request was written is *not*
  retried — the server may have committed the grant to the retained
  ADI, and replaying it could double-record history.  The caller gets a
  typed :class:`~repro.errors.PDPUnavailableError` instead.
"""

from __future__ import annotations

import asyncio
import itertools
import random
import socket
import threading
import time
from collections import deque

from repro.core.decision import Decision, DecisionRequest
from repro.core.policy_epoch import PolicySwapReport, PolicyVersion
from repro.errors import (
    PDPConnectError,
    PDPFencedError,
    PDPNotPrimaryError,
    PDPOverloadedError,
    PDPUnavailableError,
    PolicyError,
    ProtocolError,
)
from repro.framework.pdp import PolicyDecisionPoint
from repro.perf import NOOP, PerfRecorder
from repro.server import protocol

_FRAME_COUNTER = itertools.count(1)


def _next_frame_id() -> str:
    return f"c-{next(_FRAME_COUNTER):08d}"


def _error_to_exception(error) -> Exception:
    """Map a wire error object to the typed exception it represents.

    Shared by whole-frame (v1 and v2) and per-entry (``decide-batch``)
    error handling, so a fenced or overloaded entry inside a batch
    raises exactly what the same failure raises on a v1 round trip.
    """
    if not isinstance(error, dict):
        return ProtocolError("response is neither ok nor a valid error frame")
    kind = error.get("kind")
    detail = str(error.get("detail", ""))
    if kind == protocol.ERR_OVERLOADED:
        retry_after = error.get("retry_after")
        return PDPOverloadedError(
            f"remote PDP overloaded: {detail}",
            retry_after=float(retry_after) if retry_after else 0.0,
        )
    if kind == protocol.ERR_PROTOCOL:
        return ProtocolError(f"remote PDP rejected the frame: {detail}")
    if kind == protocol.ERR_FENCED:
        return PDPFencedError(f"remote PDP fenced the request: {detail}")
    if kind == protocol.ERR_NOT_PRIMARY:
        return PDPNotPrimaryError(f"remote PDP is not primary: {detail}")
    if kind == protocol.ERR_POLICY:
        # A rejected policy-reload: caller error, never retried (and the
        # server's active policy is untouched).
        return PolicyError(f"remote PDP rejected the policy: {detail}")
    return PDPUnavailableError(f"remote PDP error ({kind}): {detail}")


def _check_response(frame: dict, frame_id: str) -> dict:
    """Validate a response envelope; raise the typed error it carries."""
    if frame.get("id") != frame_id:
        raise ProtocolError(
            f"response id {frame.get('id')!r} does not match request "
            f"id {frame_id!r} (connection used concurrently?)"
        )
    if frame.get("ok") is True:
        return frame
    raise _error_to_exception(frame.get("error"))


def _policy_source_to_xml(policy) -> str:
    """Normalise a ``PolicySource`` to canonical wire XML.

    Accepts the same union as :func:`repro.api.open_pdp` (an
    :class:`MSoDPolicySet`, a path, or an XML string) and parses/
    validates it *locally* first, so a malformed source fails on the
    client without a round trip.
    """
    from repro.api import load_policy_source
    from repro.xmlpolicy import write_policy_set

    return write_policy_set(load_policy_source(policy), pretty=False)


def _version_from_status_body(body) -> PolicyVersion:
    version = body.get("version") if isinstance(body, dict) else None
    try:
        return PolicyVersion.from_dict(version if isinstance(version, dict) else {})
    except PolicyError as exc:
        raise ProtocolError(f"invalid policy-status body: {exc}") from exc


def _report_from_reload_body(body) -> PolicySwapReport:
    try:
        return PolicySwapReport.from_dict(body if isinstance(body, dict) else {})
    except PolicyError as exc:
        raise ProtocolError(f"invalid policy-reload body: {exc}") from exc


class _Backoff:
    """Full-jitter exponential backoff shared by both client variants."""

    def __init__(
        self, base: float, cap: float, rng: random.Random | None
    ) -> None:
        self._base = base
        self._cap = cap
        self._rng = rng if rng is not None else random.Random()

    def delay(self, attempt: int, floor: float = 0.0) -> float:
        ceiling = min(self._cap, self._base * (2**attempt))
        return floor + self._rng.uniform(0.0, ceiling)


# ---------------------------------------------------------------------------
# Pipelined protocol-v2 transport (shared slot type + sync connection)
# ---------------------------------------------------------------------------
class _BatchSlot:
    """One submitted decide awaiting its batch-entry result."""

    __slots__ = ("request", "epoch", "event", "decision", "error")

    def __init__(self, request: dict, epoch: int | None) -> None:
        self.request = request
        self.epoch = epoch
        self.event = threading.Event()
        self.decision: dict | None = None
        self.error: Exception | None = None

    def resolve(self, decision: dict | None, error: Exception | None) -> None:
        self.decision = decision
        self.error = error
        self.event.set()


class _PipelinedV2Connection:
    """One negotiated protocol-v2 connection with pipelined batches.

    Concurrent ``decide`` callers enqueue slots; a sender thread drains
    them into ``decide-batch`` frames (grouped by fencing epoch, up to
    ``batch_max`` requests per frame) and keeps at most ``window``
    correlated frames in flight; a reader thread matches responses by
    frame id and resolves slots as they complete, out of order.

    The idempotent-only retry discipline maps onto queue position at
    failure time: a slot still **unsent** when the transport dies fails
    with :class:`PDPConnectError` (nothing reached the server — always
    safe to retry), a slot in a frame that was **sent** fails with
    :class:`PDPUnavailableError` (the server may still evaluate and
    commit it — never replayed).
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float,
        batch_max: int,
        window: int,
        perf: PerfRecorder,
    ) -> None:
        self._timeout = timeout
        self._batch_max = batch_max
        self._perf = perf
        try:
            self._sock = socket.create_connection((host, port), timeout=timeout)
        except OSError as exc:
            raise PDPConnectError(
                f"cannot connect to PDP at {host}:{port}: {exc}"
            ) from exc
        self._sock.settimeout(timeout)
        self._file = self._sock.makefile("rb")
        try:
            self.version = self._handshake()
        except BaseException:
            self._file.close()
            self._sock.close()
            raise
        # Blocking IO from here on: slot waits enforce the timeout and
        # kill the socket when the server goes quiet, which unblocks
        # both threads.
        self._sock.settimeout(None)
        self._cond = threading.Condition()
        self._queue: deque[_BatchSlot] = deque()
        self._pending: dict[str, list[_BatchSlot]] = {}
        self._window = threading.Semaphore(window)
        self._dead: Exception | None = None
        self._sender = threading.Thread(
            target=self._sender_loop, name="repro-pdp-sender", daemon=True
        )
        self._reader = threading.Thread(
            target=self._reader_loop, name="repro-pdp-reader", daemon=True
        )
        self._sender.start()
        self._reader.start()

    def _handshake(self) -> int:
        frame_id = _next_frame_id()
        try:
            self._sock.sendall(
                protocol.encode_frame(protocol.hello_frame(frame_id))
            )
            line = self._file.readline(protocol.MAX_FRAME_BYTES + 1)
        except OSError as exc:
            # hello is side-effect free, so a lost handshake is always a
            # connect-class (retriable) failure.
            raise PDPConnectError(f"handshake failed: {exc}") from exc
        if not line.endswith(b"\n"):
            raise PDPConnectError("connection closed during handshake")
        response = _check_response(protocol.decode_frame(line), frame_id)
        version = protocol.hello_body_version(response.get("body"))
        if version < protocol.PROTOCOL_VERSION_2:
            raise ProtocolError(
                f"server negotiated protocol v{version}; v2 required"
            )
        return version

    @property
    def is_dead(self) -> bool:
        return self._dead is not None

    # -- submit --------------------------------------------------------
    def decide(self, request: dict, epoch: int | None) -> dict | None:
        slot = _BatchSlot(request, epoch)
        with self._cond:
            if self._dead is not None:
                raise PDPConnectError(
                    f"pipelined connection lost: {self._dead}"
                )
            self._queue.append(slot)
            self._cond.notify()
        if not slot.event.wait(self._timeout):
            self._fail(
                PDPUnavailableError(
                    f"no response within {self._timeout}s; "
                    "pipelined connection dropped"
                )
            )
            slot.event.wait(1.0)
            if not slot.event.is_set():  # pragma: no cover - _fail resolves all
                raise PDPUnavailableError("pipelined connection wedged")
        if slot.error is not None:
            raise slot.error
        return slot.decision

    # -- sender thread -------------------------------------------------
    def _sender_loop(self) -> None:
        while True:
            with self._cond:
                while not self._queue and self._dead is None:
                    self._cond.wait()
                if self._dead is not None:
                    return
                batch = [self._queue.popleft()]
                epoch = batch[0].epoch
                while (
                    self._queue
                    and len(batch) < self._batch_max
                    and self._queue[0].epoch == epoch
                ):
                    batch.append(self._queue.popleft())
            # The batch now belongs to this thread: resolve it here on
            # any pre-send failure (nothing has reached the server yet).
            acquired = False
            while not acquired:
                if self._dead is not None:
                    exc = PDPConnectError(
                        f"pipelined connection lost: {self._dead}"
                    )
                    for slot in batch:
                        slot.resolve(None, exc)
                    return
                acquired = self._window.acquire(timeout=0.1)
            frame_id = _next_frame_id()
            frame: dict = {
                "op": protocol.OP_DECIDE_BATCH,
                "id": frame_id,
                "requests": [slot.request for slot in batch],
            }
            if epoch is not None:
                frame["epoch"] = epoch
            try:
                payload = protocol.encode_frame_v2(frame)
            except ProtocolError as exc:
                # Unencodable request: fail this batch, keep the wire.
                self._window.release()
                for slot in batch:
                    slot.resolve(None, exc)
                continue
            with self._cond:
                if self._dead is not None:
                    exc = PDPConnectError(
                        f"pipelined connection lost: {self._dead}"
                    )
                    for slot in batch:
                        slot.resolve(None, exc)
                    return
                self._pending[frame_id] = batch
            try:
                self._sock.sendall(payload)
            except OSError as exc:
                # sendall may have transmitted part of the frame: the
                # whole batch counts as sent (ambiguous on the server).
                self._fail(
                    PDPUnavailableError(f"PDP transport failure: {exc}")
                )
                return
            perf = self._perf
            if perf.enabled:
                perf.incr("client.frames_out")
                perf.incr("client.bytes_out", len(payload))
                perf.observe_size("client.batch_size", len(batch))

    # -- reader thread -------------------------------------------------
    def _reader_loop(self) -> None:
        try:
            while True:
                header = self._read_exactly(protocol.V2_HEADER_BYTES)
                length = protocol.v2_payload_length(header)
                payload = self._read_exactly(length)
                frame = protocol.decode_frame_v2(payload)
                if self._perf.enabled:
                    self._perf.incr("client.frames_in")
                    self._perf.incr(
                        "client.bytes_in", protocol.V2_HEADER_BYTES + length
                    )
                self._resolve_frame(frame)
        except PDPUnavailableError as exc:
            self._fail(exc)
        except ProtocolError as exc:
            self._fail(
                PDPUnavailableError(f"protocol violation from server: {exc}")
            )
        except OSError as exc:
            self._fail(PDPUnavailableError(f"PDP transport failure: {exc}"))
        finally:
            try:
                self._file.close()
            except OSError:  # pragma: no cover - best-effort teardown
                pass

    def _read_exactly(self, n: int) -> bytes:
        data = self._file.read(n)
        if data is None or len(data) != n:
            raise PDPUnavailableError("connection closed by server")
        return data

    def _resolve_frame(self, frame: dict) -> None:
        frame_id = frame.get("id")
        with self._cond:
            batch = self._pending.pop(frame_id, None)
        if batch is None:
            raise ProtocolError(f"unsolicited response id {frame_id!r}")
        self._window.release()
        if frame.get("ok") is not True:
            # Whole-frame error (e.g. shutting-down): same typed mapping
            # a v1 round trip would get.
            error = _error_to_exception(frame.get("error"))
            for slot in batch:
                slot.resolve(None, error)
            return
        entries = protocol.batch_result_entries(frame, expected=len(batch))
        for slot, entry in zip(batch, entries):
            if entry.get("ok") is True:
                slot.resolve(entry.get("decision"), None)
            else:
                slot.resolve(None, _error_to_exception(entry.get("error")))

    # -- teardown ------------------------------------------------------
    def _fail(self, exc: Exception) -> None:
        with self._cond:
            if self._dead is None:
                self._dead = exc
            unsent = list(self._queue)
            self._queue.clear()
            pending = list(self._pending.values())
            self._pending.clear()
            self._cond.notify_all()
        connect_exc = PDPConnectError(
            f"pipelined connection lost before send: {exc}"
        )
        for slot in unsent:
            slot.resolve(None, connect_exc)
        for batch in pending:
            for slot in batch:
                slot.resolve(None, exc)
        # shutdown (not file.close) unblocks a reader parked in read():
        # closing the buffered file here would block on the read lock
        # the reader holds.  The reader closes the file as it exits.
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:  # pragma: no cover - already torn down
            pass
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - best-effort teardown
            pass

    def close(self) -> None:
        self._fail(PDPUnavailableError("pipelined connection closed"))


# ---------------------------------------------------------------------------
# Synchronous client
# ---------------------------------------------------------------------------
class _SyncConnection:
    """One blocking socket speaking newline-delimited JSON frames."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float,
        connect_timeout: float | None = None,
    ) -> None:
        self._timeout = timeout
        self._sock = socket.create_connection(
            (host, port),
            timeout=connect_timeout if connect_timeout is not None else timeout,
        )
        self._sock.settimeout(timeout)
        self._file = self._sock.makefile("rb")

    def exchange(self, frame: dict, timeout: float | None = None) -> dict:
        if timeout is not None:
            self._sock.settimeout(timeout)
        try:
            self._sock.sendall(protocol.encode_frame(frame))
            line = self._file.readline(protocol.MAX_FRAME_BYTES + 1)
        finally:
            if timeout is not None:
                self._sock.settimeout(self._timeout)
        if not line.endswith(b"\n"):
            raise PDPUnavailableError(
                "connection closed mid-response"
                if not line
                else "oversized or truncated response frame"
            )
        return protocol.decode_frame(line)

    def close(self) -> None:
        try:
            self._file.close()
            self._sock.close()
        except OSError:  # pragma: no cover - best-effort teardown
            pass


class RemotePDP(PolicyDecisionPoint):
    """A :class:`PolicyDecisionPoint` backed by a remote MSoD server.

    Thread-safe: a bounded pool of pooled connections serves concurrent
    callers (each request has exclusive use of one connection for its
    round trip, preserving the one-frame-in-flight protocol invariant).

    Parameters
    ----------
    host, port:
        The server address.
    pool_size:
        Maximum concurrent connections (callers beyond it queue).
    timeout:
        Per-operation socket timeout, seconds.
    health_timeout:
        Socket timeout for ``healthz`` probes only; defaults to the
        general ``timeout``.  A cluster health checker sets this much
        lower than the decide timeout so a dead node is detected in
        probe-time, not decide-time (failover satellite).
    max_retries:
        Extra attempts for retriable failures (see module docstring).
    backoff_base, backoff_cap:
        Full-jitter exponential backoff parameters, seconds.
    rng:
        Injectable randomness source for deterministic tests.
    perf:
        Optional recorder for client-side counters (``client.calls``,
        ``client.retries``, ``client.overload_rejections``,
        ``client.transport_failures``) and the ``client.call``
        round-trip stage histogram.
    protocol_version:
        ``"auto"`` (default) negotiates protocol v2 on the first decide
        and falls back to v1 when the server rejects the ``hello``;
        ``"v2"`` requires v2 (raising
        :class:`~repro.errors.ProtocolError` against a v1-only server);
        ``"v1"`` pins the JSON-lines protocol.  Control verbs always
        use v1 pooled connections — only ``decide`` rides the
        pipelined binary transport.
    batch_max:
        Most decide requests coalesced into one ``decide-batch`` frame
        (v2 only).
    pipeline_window:
        Most correlated v2 frames in flight per connection before
        submission blocks (v2 only).
    """

    def __init__(
        self,
        host: str,
        port: int,
        pool_size: int = 4,
        timeout: float = 5.0,
        health_timeout: float | None = None,
        max_retries: int = 2,
        backoff_base: float = 0.02,
        backoff_cap: float = 0.5,
        rng: random.Random | None = None,
        perf: PerfRecorder | None = None,
        protocol_version: str = "auto",
        batch_max: int = 32,
        pipeline_window: int = 8,
    ) -> None:
        if protocol_version not in ("auto", "v1", "v2"):
            raise ValueError(
                "protocol_version must be 'auto', 'v1' or 'v2', "
                f"got {protocol_version!r}"
            )
        self._host = host
        self._port = port
        self._timeout = timeout
        self._health_timeout = (
            health_timeout if health_timeout is not None else timeout
        )
        self._max_retries = max_retries
        self._backoff = _Backoff(backoff_base, backoff_cap, rng)
        self._slots = threading.BoundedSemaphore(pool_size)
        self._idle: list[_SyncConnection] = []
        self._idle_lock = threading.Lock()
        self._closed = False
        self._perf = perf if perf is not None else NOOP
        self._protocol_version = protocol_version
        self._batch_max = batch_max
        self._pipeline_window = pipeline_window
        self._negotiated: int | None = 1 if protocol_version == "v1" else None
        self._pipe: _PipelinedV2Connection | None = None
        self._pipe_lock = threading.Lock()

    @property
    def perf(self) -> PerfRecorder:
        return self._perf

    @property
    def negotiated_protocol(self) -> int | None:
        """The decide protocol in use: 1, 2, or None before negotiation."""
        return self._negotiated

    # -- connection pool ----------------------------------------------
    def _acquire(self, connect_timeout: float | None = None) -> _SyncConnection:
        with self._idle_lock:
            if self._idle:
                return self._idle.pop()
        try:
            return _SyncConnection(
                self._host,
                self._port,
                self._timeout,
                connect_timeout=connect_timeout,
            )
        except OSError as exc:
            raise PDPConnectError(
                f"cannot connect to PDP at {self._host}:{self._port}: {exc}"
            ) from exc

    def _release(self, conn: _SyncConnection, reusable: bool) -> None:
        if reusable and not self._closed:
            with self._idle_lock:
                self._idle.append(conn)
        else:
            conn.close()

    def close(self) -> None:
        """Close every pooled connection.  Idempotent."""
        self._closed = True
        with self._idle_lock:
            idle, self._idle = self._idle, []
        for conn in idle:
            conn.close()
        with self._pipe_lock:
            pipe, self._pipe = self._pipe, None
        if pipe is not None:
            pipe.close()

    def __enter__(self) -> "RemotePDP":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- one round trip ------------------------------------------------
    def _exchange_once(
        self, frame: dict, frame_id: str, timeout: float | None = None
    ) -> dict:
        """One request/response on one pooled connection."""
        with self._slots:
            conn = self._acquire(connect_timeout=timeout)
            reusable = False
            try:
                try:
                    response = conn.exchange(frame, timeout=timeout)
                except (OSError, EOFError) as exc:
                    raise PDPUnavailableError(
                        f"PDP transport failure: {exc}"
                    ) from exc
                reusable = True
                return _check_response(response, frame_id)
            finally:
                self._release(conn, reusable)

    def _call(
        self,
        op: str,
        retriable: bool,
        op_timeout: float | None = None,
        **fields,
    ) -> dict:
        perf = self._perf
        timing = perf.enabled
        perf.incr("client.calls")
        attempt = 0
        while True:
            frame_id = _next_frame_id()
            frame = protocol.request_frame(op, frame_id, **fields)
            started = perf.start() if timing else 0.0
            try:
                response = self._exchange_once(
                    frame, frame_id, timeout=op_timeout
                )
                if timing:
                    perf.stop("client.call", started)
                return response
            except PDPOverloadedError as exc:
                # Shed *before* queueing: always safe to retry.
                perf.incr("client.overload_rejections")
                if attempt >= self._max_retries:
                    raise
                time.sleep(self._backoff.delay(attempt, floor=exc.retry_after))
            except PDPConnectError:
                # Nothing was sent: safe to retry even a decide.
                perf.incr("client.transport_failures")
                if attempt >= self._max_retries:
                    raise
                time.sleep(self._backoff.delay(attempt))
            except PDPUnavailableError:
                perf.incr("client.transport_failures")
                if not retriable or attempt >= self._max_retries:
                    raise
                time.sleep(self._backoff.delay(attempt))
            perf.incr("client.retries")
            attempt += 1

    # -- the PolicyDecisionPoint protocol ------------------------------
    def decide(
        self, request: DecisionRequest, *, epoch: int | None = None
    ) -> Decision:
        """Evaluate one request on the remote PDP.

        Raises :class:`PDPUnavailableError` (or its
        :class:`PDPOverloadedError` subclass once the retry budget for
        overload rejections is exhausted) instead of socket errors.

        ``epoch``, when given, rides on the decide frame; a cluster
        node compares it against its own fencing epoch and answers
        ``fenced`` (:class:`~repro.errors.PDPFencedError`) when the
        client's routing table is stale.  Plain single-node servers
        ignore the field.
        """
        if self._negotiated != 1:
            return self._decide_pipelined(request, epoch)
        return self._decide_v1(request, epoch)

    def _decide_v1(
        self, request: DecisionRequest, epoch: int | None
    ) -> Decision:
        fields: dict = {"request": protocol.request_to_wire(request)}
        if epoch is not None:
            fields["epoch"] = epoch
        response = self._call(
            protocol.OP_DECIDE,
            retriable=False,  # post-send decide retries could double-record
            **fields,
        )
        return protocol.decision_from_wire(response.get("decision"))

    # -- pipelined v2 path ---------------------------------------------
    def _pipeline(self) -> _PipelinedV2Connection | None:
        """The shared pipelined v2 connection, (re)establishing it.

        Returns ``None`` when decides should speak v1 instead: either
        the pinned setting, or an ``"auto"`` client whose server
        rejected the hello (the fallback is then remembered for the
        client's lifetime).
        """
        with self._pipe_lock:
            if self._negotiated == 1:
                return None
            pipe = self._pipe
            if pipe is not None and not pipe.is_dead:
                return pipe
            if pipe is not None:
                pipe.close()
                self._pipe = None
            try:
                pipe = _PipelinedV2Connection(
                    self._host,
                    self._port,
                    timeout=self._timeout,
                    batch_max=self._batch_max,
                    window=self._pipeline_window,
                    perf=self._perf,
                )
            except ProtocolError:
                # The server answered the hello but cannot speak v2.
                if self._protocol_version == "auto":
                    self._negotiated = 1
                    return None
                raise
            self._negotiated = pipe.version
            self._pipe = pipe
            return pipe

    def _decide_pipelined(
        self, request: DecisionRequest, epoch: int | None
    ) -> Decision:
        perf = self._perf
        timing = perf.enabled
        perf.incr("client.calls")
        wire = protocol.request_to_wire(request)
        attempt = 0
        while True:
            started = perf.start() if timing else 0.0
            try:
                pipe = self._pipeline()
                if pipe is None:  # fell back to v1 during negotiation
                    return self._decide_v1(request, epoch)
                decision = pipe.decide(wire, epoch)
                if timing:
                    perf.stop("client.call", started)
                return protocol.decision_from_wire_delta(decision, request)
            except PDPOverloadedError as exc:
                # Shed *before* queueing: always safe to retry.
                perf.incr("client.overload_rejections")
                if attempt >= self._max_retries:
                    raise
                time.sleep(self._backoff.delay(attempt, floor=exc.retry_after))
            except PDPConnectError:
                # The slot never left the client: safe to retry.
                perf.incr("client.transport_failures")
                if attempt >= self._max_retries:
                    raise
                time.sleep(self._backoff.delay(attempt))
            except PDPUnavailableError:
                # Sent but unanswered: ambiguous, never replayed.
                perf.incr("client.transport_failures")
                raise
            perf.incr("client.retries")
            attempt += 1

    # -- control verbs -------------------------------------------------
    def healthz(self) -> dict:
        """The server's health snapshot (status + per-shard backlog).

        Uses the dedicated ``health_timeout`` (connect and read), so a
        probe against a hung node fails fast even when the decide
        timeout is generous.
        """
        return self._call(
            protocol.OP_HEALTHZ,
            retriable=True,
            op_timeout=self._health_timeout,
        ).get("body", {})

    def metrics(self) -> dict:
        """The server's metrics snapshot (perf counters + shard stats)."""
        return self._call(protocol.OP_METRICS, retriable=True).get("body", {})

    def metrics_text(self) -> str:
        """The server's metrics in Prometheus text exposition format."""
        body = self._call(
            protocol.OP_METRICS,
            retriable=True,
            format=protocol.METRICS_FORMAT_PROMETHEUS,
        ).get("body")
        if not isinstance(body, str):
            raise ProtocolError("prometheus metrics body must be a string")
        return body

    def slowlog(self) -> dict:
        """The server's slowest-decision traces (requires server tracing)."""
        return self._call(protocol.OP_SLOWLOG, retriable=True).get("body", {})

    # -- policy management ---------------------------------------------
    def policy_status(self) -> dict:
        """The ``policy-status`` body: active version + reload count."""
        return self._call(protocol.OP_POLICY_STATUS, retriable=True).get(
            "body", {}
        )

    def policy_version(self) -> PolicyVersion:
        """The policy version the server currently decides under."""
        return _version_from_status_body(self.policy_status())

    def reload_policy(
        self,
        policy,
        *,
        verify: bool = False,
        max_flips: int = 0,
        force: bool = False,
        principal: str | None = None,
    ) -> PolicySwapReport:
        """Atomically swap the server's policy set (zero downtime).

        Same ``PolicySource`` union and semantics as
        :meth:`repro.api.LocalPDP.reload_policy`: the source is parsed
        and validated locally, shipped as canonical XML, and swapped in
        by the server between micro-batches.  Safe to retry — reloading
        an identical set is a digest no-op on the server — and a
        server-side rejection raises
        :class:`~repro.errors.PolicyError`, leaving the active policy
        untouched.

        ``verify=True`` runs the server-side verification gate first
        (static analysis plus, when the server records an audit trail,
        the differential what-if replay): error findings or more than
        ``max_flips`` flipped decisions refuse the swap; ``force=True``
        overrides the gate.

        ``principal`` names the acting operator; when the server's
        outgoing policy set carries admin-boundary constraints over the
        policy store, a principal with retained operational decisions
        is refused (``force`` does not override the boundary).
        """
        extra = {} if principal is None else {"principal": principal}
        body = self._call(
            protocol.OP_POLICY_RELOAD,
            retriable=True,
            policy_xml=_policy_source_to_xml(policy),
            verify=verify,
            max_flips=max_flips,
            force=force,
            **extra,
        ).get("body")
        return _report_from_reload_body(body)

    def verify_policy(self, policy) -> dict:
        """Server-side static verification of a candidate set.

        Returns the structured :class:`~repro.verify.static.VerifyReport`
        body (``{"ok", "counts", "findings"}``) without swapping
        anything.
        """
        body = self._call(
            protocol.OP_VERIFY,
            retriable=True,
            policy_xml=_policy_source_to_xml(policy),
        ).get("body")
        if not isinstance(body, dict):
            raise ProtocolError("verify body must be an object")
        return body

    def what_if(self, policy) -> dict:
        """Differentially replay the server's audit trail under a candidate.

        Returns the :class:`~repro.verify.whatif.WhatIfReport` body.
        Raises :class:`~repro.errors.PolicyError` when the server holds
        no recorded trail.
        """
        body = self._call(
            protocol.OP_WHATIF,
            retriable=True,
            policy_xml=_policy_source_to_xml(policy),
        ).get("body")
        if not isinstance(body, dict):
            raise ProtocolError("whatif body must be an object")
        return body


# ---------------------------------------------------------------------------
# Asyncio client
# ---------------------------------------------------------------------------
class _AsyncPipelinedV2:
    """Asyncio twin of :class:`_PipelinedV2Connection`.

    Concurrent ``decide`` coroutines append to a buffer; a flush task
    coalesces the buffer into ``decide-batch`` frames (grouped by
    fencing epoch, bounded by the in-flight window) and a reader task
    resolves per-entry futures by correlation id.  The same unsent →
    retriable / sent → :class:`PDPUnavailableError` discipline applies.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        version: int,
        timeout: float,
        batch_max: int,
        window: int,
    ) -> None:
        self._stream_reader = reader
        self._writer = writer
        self.version = version
        self._timeout = timeout
        self._batch_max = batch_max
        self._window = asyncio.Semaphore(window)
        self._buffer: list[tuple[asyncio.Future, dict, int | None]] = []
        self._pending: dict[str, list[asyncio.Future]] = {}
        self._dead: Exception | None = None
        self._flush_task: asyncio.Task | None = None
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop()
        )

    @classmethod
    async def open(
        cls,
        host: str,
        port: int,
        timeout: float,
        batch_max: int,
        window: int,
    ) -> "_AsyncPipelinedV2":
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(
                    host, port, limit=protocol.MAX_FRAME_BYTES_V2
                ),
                timeout=timeout,
            )
        except (OSError, asyncio.TimeoutError) as exc:
            raise PDPConnectError(
                f"cannot connect to PDP at {host}:{port}: {exc}"
            ) from exc
        try:
            frame_id = _next_frame_id()
            writer.write(protocol.encode_frame(protocol.hello_frame(frame_id)))
            await asyncio.wait_for(writer.drain(), timeout=timeout)
            line = await asyncio.wait_for(reader.readline(), timeout=timeout)
            if not line.endswith(b"\n"):
                # hello is side-effect free: always retriable.
                raise PDPConnectError("connection closed during handshake")
            response = _check_response(protocol.decode_frame(line), frame_id)
            version = protocol.hello_body_version(response.get("body"))
            if version < protocol.PROTOCOL_VERSION_2:
                raise ProtocolError(
                    f"server negotiated protocol v{version}; v2 required"
                )
        except (OSError, ConnectionError, asyncio.TimeoutError) as exc:
            writer.close()
            raise PDPConnectError(f"handshake failed: {exc}") from exc
        except BaseException:
            writer.close()
            raise
        return cls(reader, writer, version, timeout, batch_max, window)

    @property
    def is_dead(self) -> bool:
        return self._dead is not None

    # -- submit --------------------------------------------------------
    async def decide(self, request: dict, epoch: int | None) -> dict | None:
        if self._dead is not None:
            raise PDPConnectError(f"pipelined connection lost: {self._dead}")
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._buffer.append((future, request, epoch))
        if self._flush_task is None or self._flush_task.done():
            self._flush_task = asyncio.get_running_loop().create_task(
                self._flush()
            )
        try:
            return await asyncio.wait_for(future, timeout=self._timeout)
        except asyncio.TimeoutError:
            exc = PDPUnavailableError(
                f"no response within {self._timeout}s; "
                "pipelined connection dropped"
            )
            self._fail(exc)
            raise exc from None

    # -- flush task ----------------------------------------------------
    async def _flush(self) -> None:
        # One event-loop tick lets concurrent decide() callers land in
        # the buffer before the first frame is cut.
        await asyncio.sleep(0)
        while self._buffer and self._dead is None:
            epoch = self._buffer[0][2]
            batch: list[tuple[asyncio.Future, dict, int | None]] = []
            while (
                self._buffer
                and len(batch) < self._batch_max
                and self._buffer[0][2] == epoch
            ):
                batch.append(self._buffer.pop(0))
            await self._window.acquire()
            if self._dead is not None:
                exc = PDPConnectError(
                    f"pipelined connection lost: {self._dead}"
                )
                for future, _, _ in batch:
                    if not future.done():
                        future.set_exception(exc)
                return
            frame_id = _next_frame_id()
            frame: dict = {
                "op": protocol.OP_DECIDE_BATCH,
                "id": frame_id,
                "requests": [request for _, request, _ in batch],
            }
            if epoch is not None:
                frame["epoch"] = epoch
            try:
                payload = protocol.encode_frame_v2(frame)
            except ProtocolError as exc:
                self._window.release()
                for future, _, _ in batch:
                    if not future.done():
                        future.set_exception(exc)
                continue
            self._pending[frame_id] = [future for future, _, _ in batch]
            try:
                self._writer.write(payload)
                await self._writer.drain()
            except (OSError, ConnectionError) as exc:
                self._fail(
                    PDPUnavailableError(f"PDP transport failure: {exc}")
                )
                return

    # -- reader task ---------------------------------------------------
    async def _read_loop(self) -> None:
        try:
            while True:
                header = await self._stream_reader.readexactly(
                    protocol.V2_HEADER_BYTES
                )
                length = protocol.v2_payload_length(header)
                payload = await self._stream_reader.readexactly(length)
                self._resolve_frame(protocol.decode_frame_v2(payload))
        except asyncio.CancelledError:  # close() cancels the loop
            raise
        except ProtocolError as exc:
            self._fail(
                PDPUnavailableError(f"protocol violation from server: {exc}")
            )
        except (OSError, ConnectionError, asyncio.IncompleteReadError) as exc:
            self._fail(PDPUnavailableError(f"PDP transport failure: {exc}"))

    def _resolve_frame(self, frame: dict) -> None:
        frame_id = frame.get("id")
        futures = self._pending.pop(frame_id, None)
        if futures is None:
            raise ProtocolError(f"unsolicited response id {frame_id!r}")
        self._window.release()
        if frame.get("ok") is not True:
            error = _error_to_exception(frame.get("error"))
            for future in futures:
                if not future.done():
                    future.set_exception(error)
            return
        entries = protocol.batch_result_entries(frame, expected=len(futures))
        for future, entry in zip(futures, entries):
            if future.done():
                continue
            if entry.get("ok") is True:
                future.set_result(entry.get("decision"))
            else:
                future.set_exception(_error_to_exception(entry.get("error")))

    # -- teardown ------------------------------------------------------
    def _fail(self, exc: Exception) -> None:
        if self._dead is None:
            self._dead = exc
        buffered, self._buffer = self._buffer, []
        pending, self._pending = list(self._pending.values()), {}
        connect_exc = PDPConnectError(
            f"pipelined connection lost before send: {exc}"
        )
        for future, _, _ in buffered:
            if not future.done():
                future.set_exception(connect_exc)
        for futures in pending:
            for future in futures:
                if not future.done():
                    future.set_exception(exc)
        # Wake a flush task parked on an exhausted in-flight window; it
        # re-checks _dead and exits.
        self._window.release()
        self._writer.close()

    async def close(self) -> None:
        self._fail(PDPUnavailableError("pipelined connection closed"))
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        except Exception:  # pragma: no cover - teardown best-effort
            pass
        try:
            await self._writer.wait_closed()
        except (OSError, ConnectionError):  # pragma: no cover
            pass


class AsyncRemotePDP:
    """The asyncio twin of :class:`RemotePDP`.

    Same wire protocol, retry discipline and pooling semantics, with
    coroutine methods (``await pdp.decide(request)``) for applications
    that live on an event loop.  ``protocol_version``/``batch_max``/
    ``pipeline_window`` mirror :class:`RemotePDP`: in ``"auto"`` or
    ``"v2"`` mode decides ride one pipelined binary connection whose
    flush task coalesces concurrent callers into ``decide-batch``
    frames, while control verbs stay on v1 pooled connections.
    """

    def __init__(
        self,
        host: str,
        port: int,
        pool_size: int = 4,
        timeout: float = 5.0,
        health_timeout: float | None = None,
        max_retries: int = 2,
        backoff_base: float = 0.02,
        backoff_cap: float = 0.5,
        rng: random.Random | None = None,
        protocol_version: str = "auto",
        batch_max: int = 32,
        pipeline_window: int = 8,
    ) -> None:
        if protocol_version not in ("auto", "v1", "v2"):
            raise ValueError(
                "protocol_version must be 'auto', 'v1' or 'v2', "
                f"got {protocol_version!r}"
            )
        self._host = host
        self._port = port
        self._timeout = timeout
        self._health_timeout = (
            health_timeout if health_timeout is not None else timeout
        )
        self._max_retries = max_retries
        self._backoff = _Backoff(backoff_base, backoff_cap, rng)
        self._pool_size = pool_size
        self._slots: asyncio.Semaphore | None = None
        self._idle: list[tuple[asyncio.StreamReader, asyncio.StreamWriter]] = []
        self._closed = False
        self._protocol_version = protocol_version
        self._batch_max = batch_max
        self._pipeline_window = pipeline_window
        self._negotiated: int | None = 1 if protocol_version == "v1" else None
        self._pipe: _AsyncPipelinedV2 | None = None
        self._pipe_lock: asyncio.Lock | None = None

    @property
    def negotiated_protocol(self) -> int | None:
        """The decide protocol in use: 1, 2, or None before negotiation."""
        return self._negotiated

    def _semaphore(self) -> asyncio.Semaphore:
        if self._slots is None:
            self._slots = asyncio.Semaphore(self._pool_size)
        return self._slots

    async def _acquire(
        self, timeout: float | None = None
    ) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        if self._idle:
            return self._idle.pop()
        try:
            return await asyncio.wait_for(
                asyncio.open_connection(
                    self._host, self._port, limit=protocol.MAX_FRAME_BYTES
                ),
                timeout=timeout if timeout is not None else self._timeout,
            )
        except (OSError, asyncio.TimeoutError) as exc:
            raise PDPConnectError(
                f"cannot connect to PDP at {self._host}:{self._port}: {exc}"
            ) from exc

    async def _release(
        self,
        conn: tuple[asyncio.StreamReader, asyncio.StreamWriter],
        reusable: bool,
    ) -> None:
        if reusable and not self._closed:
            self._idle.append(conn)
        else:
            _, writer = conn
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, ConnectionError):  # pragma: no cover
                pass

    async def close(self) -> None:
        """Close every pooled connection.  Idempotent."""
        self._closed = True
        idle, self._idle = self._idle, []
        for conn in idle:
            await self._release(conn, reusable=False)
        pipe, self._pipe = self._pipe, None
        if pipe is not None:
            await pipe.close()

    async def __aenter__(self) -> "AsyncRemotePDP":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -- one round trip ------------------------------------------------
    async def _exchange_once(
        self, frame: dict, frame_id: str, timeout: float | None = None
    ) -> dict:
        op_timeout = timeout if timeout is not None else self._timeout
        async with self._semaphore():
            conn = await self._acquire(timeout=timeout)
            reader, writer = conn
            reusable = False
            try:
                try:
                    writer.write(protocol.encode_frame(frame))
                    await asyncio.wait_for(
                        writer.drain(), timeout=op_timeout
                    )
                    line = await asyncio.wait_for(
                        reader.readline(), timeout=op_timeout
                    )
                except (
                    OSError,
                    ConnectionError,
                    asyncio.TimeoutError,
                    asyncio.LimitOverrunError,
                    ValueError,
                ) as exc:
                    raise PDPUnavailableError(
                        f"PDP transport failure: {exc}"
                    ) from exc
                if not line.endswith(b"\n"):
                    raise PDPUnavailableError("connection closed mid-response")
                reusable = True
                return _check_response(protocol.decode_frame(line), frame_id)
            finally:
                await self._release(conn, reusable)

    async def _call(
        self,
        op: str,
        retriable: bool,
        op_timeout: float | None = None,
        **fields,
    ) -> dict:
        attempt = 0
        while True:
            frame_id = _next_frame_id()
            frame = protocol.request_frame(op, frame_id, **fields)
            try:
                return await self._exchange_once(
                    frame, frame_id, timeout=op_timeout
                )
            except PDPOverloadedError as exc:
                if attempt >= self._max_retries:
                    raise
                await asyncio.sleep(
                    self._backoff.delay(attempt, floor=exc.retry_after)
                )
            except PDPConnectError:
                # Nothing was sent: safe to retry even a decide.
                if attempt >= self._max_retries:
                    raise
                await asyncio.sleep(self._backoff.delay(attempt))
            except PDPUnavailableError:
                if not retriable or attempt >= self._max_retries:
                    raise
                await asyncio.sleep(self._backoff.delay(attempt))
            attempt += 1

    # -- verbs ---------------------------------------------------------
    async def decide(
        self, request: DecisionRequest, *, epoch: int | None = None
    ) -> Decision:
        """Evaluate one request on the remote PDP (coroutine)."""
        if self._negotiated != 1:
            return await self._decide_pipelined(request, epoch)
        return await self._decide_v1(request, epoch)

    async def _decide_v1(
        self, request: DecisionRequest, epoch: int | None
    ) -> Decision:
        fields: dict = {"request": protocol.request_to_wire(request)}
        if epoch is not None:
            fields["epoch"] = epoch
        response = await self._call(
            protocol.OP_DECIDE,
            retriable=False,
            **fields,
        )
        return protocol.decision_from_wire(response.get("decision"))

    # -- pipelined v2 path ---------------------------------------------
    async def _pipeline(self) -> _AsyncPipelinedV2 | None:
        if self._pipe_lock is None:
            self._pipe_lock = asyncio.Lock()
        async with self._pipe_lock:
            if self._negotiated == 1:
                return None
            pipe = self._pipe
            if pipe is not None and not pipe.is_dead:
                return pipe
            if pipe is not None:
                await pipe.close()
                self._pipe = None
            try:
                pipe = await _AsyncPipelinedV2.open(
                    self._host,
                    self._port,
                    timeout=self._timeout,
                    batch_max=self._batch_max,
                    window=self._pipeline_window,
                )
            except ProtocolError:
                # The server answered the hello but cannot speak v2.
                if self._protocol_version == "auto":
                    self._negotiated = 1
                    return None
                raise
            self._negotiated = pipe.version
            self._pipe = pipe
            return pipe

    async def _decide_pipelined(
        self, request: DecisionRequest, epoch: int | None
    ) -> Decision:
        wire = protocol.request_to_wire(request)
        attempt = 0
        while True:
            try:
                pipe = await self._pipeline()
                if pipe is None:  # fell back to v1 during negotiation
                    return await self._decide_v1(request, epoch)
                decision = await pipe.decide(wire, epoch)
                return protocol.decision_from_wire_delta(decision, request)
            except PDPOverloadedError as exc:
                if attempt >= self._max_retries:
                    raise
                await asyncio.sleep(
                    self._backoff.delay(attempt, floor=exc.retry_after)
                )
            except PDPConnectError:
                # The slot never left the client: safe to retry.
                if attempt >= self._max_retries:
                    raise
                await asyncio.sleep(self._backoff.delay(attempt))
            except PDPUnavailableError:
                # Sent but unanswered: ambiguous, never replayed.
                raise
            attempt += 1

    async def healthz(self) -> dict:
        """The server's health snapshot (coroutine; fast timeout)."""
        return (
            await self._call(
                protocol.OP_HEALTHZ,
                retriable=True,
                op_timeout=self._health_timeout,
            )
        ).get("body", {})

    async def metrics(self) -> dict:
        """The server's metrics snapshot (coroutine)."""
        return (await self._call(protocol.OP_METRICS, retriable=True)).get(
            "body", {}
        )

    async def metrics_text(self) -> str:
        """The server's Prometheus text exposition (coroutine)."""
        body = (
            await self._call(
                protocol.OP_METRICS,
                retriable=True,
                format=protocol.METRICS_FORMAT_PROMETHEUS,
            )
        ).get("body")
        if not isinstance(body, str):
            raise ProtocolError("prometheus metrics body must be a string")
        return body

    async def slowlog(self) -> dict:
        """The server's slowest-decision traces (coroutine)."""
        return (await self._call(protocol.OP_SLOWLOG, retriable=True)).get(
            "body", {}
        )

    # -- policy management ---------------------------------------------
    async def policy_status(self) -> dict:
        """The ``policy-status`` body (coroutine)."""
        return (
            await self._call(protocol.OP_POLICY_STATUS, retriable=True)
        ).get("body", {})

    async def policy_version(self) -> PolicyVersion:
        """The policy version the server currently decides under."""
        return _version_from_status_body(await self.policy_status())

    async def reload_policy(
        self,
        policy,
        *,
        verify: bool = False,
        max_flips: int = 0,
        force: bool = False,
        principal: str | None = None,
    ) -> PolicySwapReport:
        """Atomically swap the server's policy set (coroutine)."""
        extra = {} if principal is None else {"principal": principal}
        body = (
            await self._call(
                protocol.OP_POLICY_RELOAD,
                retriable=True,
                policy_xml=_policy_source_to_xml(policy),
                verify=verify,
                max_flips=max_flips,
                force=force,
                **extra,
            )
        ).get("body")
        return _report_from_reload_body(body)

    async def verify_policy(self, policy) -> dict:
        """Server-side static verification of a candidate (coroutine)."""
        body = (
            await self._call(
                protocol.OP_VERIFY,
                retriable=True,
                policy_xml=_policy_source_to_xml(policy),
            )
        ).get("body")
        if not isinstance(body, dict):
            raise ProtocolError("verify body must be an object")
        return body

    async def what_if(self, policy) -> dict:
        """Differential replay of the server's trail (coroutine)."""
        body = (
            await self._call(
                protocol.OP_WHATIF,
                retriable=True,
                policy_xml=_policy_source_to_xml(policy),
            )
        ).get("body")
        if not isinstance(body, dict):
            raise ProtocolError("whatif body must be an object")
        return body

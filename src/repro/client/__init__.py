"""repro.client — remote Policy Decision Point clients.

:class:`RemotePDP` (sync) and :class:`AsyncRemotePDP` (asyncio) speak
the :mod:`repro.server.protocol` wire format to a running
``python -m repro serve`` instance.  ``RemotePDP`` implements the
:class:`~repro.framework.pdp.PolicyDecisionPoint` protocol, so the
existing :class:`~repro.framework.pep.PolicyEnforcementPoint` is a
*remote* PEP simply by being constructed with one.
"""

from repro.client.remote import AsyncRemotePDP, RemotePDP
from repro.errors import PDPOverloadedError, PDPUnavailableError

__all__ = [
    "RemotePDP",
    "AsyncRemotePDP",
    "PDPUnavailableError",
    "PDPOverloadedError",
]

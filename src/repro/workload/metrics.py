"""Running checkers over workloads and tabulating detection rates."""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:  # avoid a runtime cycle with repro.baselines
    from repro.baselines.base import SoDChecker

from repro.workload.events import (
    ALL_CLASSES,
    BENIGN,
    DetectionReport,
    Scenario,
)


def run_comparison(
    checkers: "Sequence[SoDChecker]", scenarios: Iterable[Scenario]
) -> list[DetectionReport]:
    """Run every checker over the same scenario stream.

    Each checker keeps state across scenarios (as a live system would);
    scenarios are isolated by construction (fresh users, sessions and
    context instances), so cross-talk only occurs where a mechanism is
    genuinely context-blind — which is part of what is being measured.
    """
    scenario_list = list(scenarios)
    reports = []
    for checker in checkers:
        checker.reset()
        report = DetectionReport(checker_name=checker.name)
        for scenario in scenario_list:
            report.record(checker.run_scenario(scenario))
        reports.append(report)
    return reports


def format_detection_table(reports: Sequence[DetectionReport]) -> str:
    """Render the who-catches-what table the benches print.

    Cells are detection rates per conflict class; the benign column is a
    false-positive rate (lower is better).
    """
    labels = [label for label in ALL_CLASSES if any(
        label in report.per_class for report in reports
    )]
    header = ["checker"] + [
        f"{label} (FP)" if label == BENIGN else label for label in labels
    ]
    rows = [header]
    for report in reports:
        row = [report.checker_name]
        for label in labels:
            if label in report.per_class:
                row.append(f"{report.detection_rate(label):.2f}")
            else:
                row.append("-")
        rows.append(row)
    widths = [
        max(len(row[column]) for row in rows) for column in range(len(header))
    ]
    lines = []
    for index, row in enumerate(rows):
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        )
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)

"""The neutral scenario/event model used by the baseline comparison.

Every separation-of-duty mechanism hooks a different enforcement point:
ANSI SSD blocks role *assignment*, ANSI DSD blocks role *activation*,
MSoD / anti-roles / transaction control expressions block *access*.  To
compare them fairly, a workload is a stream of :class:`Scenario` objects
— short scripts of assignment, activation and access steps with a
ground-truth label — and each checker blocks whichever step its
mechanism can see.  A scenario counts as *detected* when any of its
steps is blocked.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.core.constraints import Role
from repro.core.context import ContextName

STEP_ASSIGN = "assign"
STEP_ACTIVATE = "activate"
STEP_ACCESS = "access"

#: Ground-truth conflict classes injected by the generator.
BENIGN = "benign"
SAME_SESSION = "same_session"  # conflicting roles co-active in one session
SINGLE_AUTHORITY = "single_authority"  # both roles assigned by one authority
CROSS_SESSION = "cross_session"  # conflict spans sessions, same context
FEDERATED_UNLINKED = "federated_unlinked"  # per-session handles, no linking
FEDERATED_LINKED = "federated_linked"  # aliases linked to a local identity
REPEATED_PRIVILEGE = "repeated_privilege"  # cap-1 privilege exercised twice
OBJECT_COMPLETION = "object_completion"  # one user completes prepare+confirm

VIOLATION_CLASSES = (
    SAME_SESSION,
    SINGLE_AUTHORITY,
    CROSS_SESSION,
    FEDERATED_UNLINKED,
    FEDERATED_LINKED,
    REPEATED_PRIVILEGE,
    OBJECT_COMPLETION,
)

ALL_CLASSES = (BENIGN,) + VIOLATION_CLASSES


@dataclass(frozen=True, slots=True)
class Step:
    """One step of a scenario script.

    ``user_id`` is the true identity; ``presented_id`` is the identifier
    the enforcement point actually sees (a Shibboleth handle, a Liberty
    alias, or the true id).  ``authority`` names the domain that assigned
    the roles in play.
    """

    kind: str
    user_id: str
    presented_id: str
    session_id: str
    authority: str
    roles: tuple[Role, ...]
    operation: str = ""
    target: str = ""
    context_instance: ContextName | None = None
    timestamp: float = 0.0

    @property
    def is_access(self) -> bool:
        return self.kind == STEP_ACCESS


@dataclass(frozen=True, slots=True)
class Scenario:
    """A labelled script: benign traffic or one injected violation."""

    scenario_id: str
    label: str
    steps: tuple[Step, ...]
    description: str = ""

    @property
    def is_violation(self) -> bool:
        return self.label != BENIGN

    def access_steps(self) -> Iterator[Step]:
        return (step for step in self.steps if step.is_access)


@dataclass(slots=True)
class ScenarioOutcome:
    """How one checker fared on one scenario."""

    scenario: Scenario
    blocked: bool
    blocked_step: int | None = None
    reason: str = ""

    @property
    def correct(self) -> bool:
        """Blocked iff the scenario really was a violation."""
        return self.blocked == self.scenario.is_violation


@dataclass(slots=True)
class DetectionReport:
    """Aggregated detection statistics for one checker."""

    checker_name: str
    per_class: dict[str, list[ScenarioOutcome]] = field(default_factory=dict)

    def record(self, outcome: ScenarioOutcome) -> None:
        self.per_class.setdefault(outcome.scenario.label, []).append(outcome)

    def detection_rate(self, label: str) -> float:
        """Fraction of scenarios of this class the checker blocked."""
        outcomes = self.per_class.get(label, [])
        if not outcomes:
            return float("nan")
        return sum(1 for outcome in outcomes if outcome.blocked) / len(outcomes)

    def false_positive_rate(self) -> float:
        """Fraction of benign scenarios the checker wrongly blocked."""
        return self.detection_rate(BENIGN) if BENIGN in self.per_class else 0.0

    def summary_row(self) -> dict[str, float | str]:
        row: dict[str, float | str] = {"checker": self.checker_name}
        for label in ALL_CLASSES:
            if label in self.per_class:
                row[label] = self.detection_rate(label)
        return row

"""Bank-scale organisation and traffic generator (10^6+ users).

The evaluation workloads top out around ~1200 users — three orders of
magnitude short of the ROADMAP's millions-of-users target and nothing
like the multi-national bank the ARBAC policy-engineering literature
describes: hundreds of roles spread across divisions, deep business
contexts (region / division / branch / period), and traffic that is
heavily skewed toward a small *active* population while the long tail
of users exists only as retained history.

:func:`bank_scale_policy_set` builds the org's MSoD policy set: per
division, one policy per separated duty pair, each an MMER over
``Region=*, Division=Dk, Branch=*, Period=!`` (any branch of that
division, scoped per audit period).  With the defaults that is
``24 divisions x 4 duty pairs = 96`` policies over ``192`` distinct
roles.

:func:`bank_scale_request_stream` emits a seeded, store-independent
decision stream shaped by three knobs the scale bench sweeps:

* ``active_fraction`` — the share of users any request window touches;
  the tiered store's RSS should track this, not ``n_users``;
* ``zipf_s`` — skew *within* the active set (rank-``r`` active user
  drawn with weight ``1/r^s``), so the hot layer's LRU sees realistic
  reuse instead of a uniform scan;
* ``churn_fraction`` — requests aimed uniformly at the *whole*
  population, forcing cold-user hydrations and LRU evictions.

``conflict_fraction`` of requests present the user's *conflicting*
duty so deny paths (and therefore retained-ADI reads) are exercised;
everything else exercises the user's home duty and appends history.
The stream is pure function of the config — replaying it against two
stores must produce bit-identical decisions, which is what the scale
bench's differential gate checks.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from dataclasses import dataclass
from typing import Iterator

from repro.core.constraints import MMCD, MMEP, MMER, Privilege, Role
from repro.core.context import ContextName
from repro.core.decision import DecisionRequest
from repro.core.retained_adi import RetainedADIRecord
from repro.core.policy import MSoDPolicy, MSoDPolicySet
from repro.errors import PolicyError

__all__ = [
    "BankScaleConfig",
    "bank_scale_duty_binding_policy_set",
    "bank_scale_history",
    "bank_scale_mmcd_stream",
    "bank_scale_policy_set",
    "bank_scale_request_stream",
    "duty_roles",
    "duty_privileges",
    "filing_privileges",
    "four_eyes_filing_policy_set",
]


@dataclass(frozen=True, slots=True)
class BankScaleConfig:
    """Shape of the synthetic multi-national bank.

    The defaults model the full-scale run: a million users across 24
    divisions in 4 regions, 40 branches per division, 4 separated duty
    pairs (= 8 roles) per division, 5% of users active in the measured
    window with Zipf-skewed traffic among them.
    """

    n_users: int = 1_000_000
    n_regions: int = 4
    n_divisions: int = 24
    branches_per_division: int = 40
    n_periods: int = 6
    duty_pairs_per_division: int = 4
    active_fraction: float = 0.05
    zipf_s: float = 1.1
    conflict_fraction: float = 0.1
    churn_fraction: float = 0.02
    seed: int = 29

    def __post_init__(self) -> None:
        if self.n_users < 1:
            raise PolicyError("bank-scale config needs n_users >= 1")
        if not 0.0 < self.active_fraction <= 1.0:
            raise PolicyError("active_fraction must be in (0, 1]")
        for name in ("n_regions", "n_divisions", "branches_per_division",
                     "n_periods", "duty_pairs_per_division"):
            if getattr(self, name) < 1:
                raise PolicyError(f"bank-scale config needs {name} >= 1")

    @property
    def n_roles(self) -> int:
        return 2 * self.duty_pairs_per_division * self.n_divisions

    @property
    def active_users(self) -> int:
        return max(1, int(self.n_users * self.active_fraction))


def duty_roles(division: int, duty: int) -> tuple[Role, Role]:
    """The separated (execute, review) role pair of one division duty."""
    return (
        Role("employee", f"D{division:02d}-duty{duty}-exec"),
        Role("employee", f"D{division:02d}-duty{duty}-review"),
    )


def duty_privileges(division: int, duty: int) -> tuple[Privilege, Privilege]:
    """The privileges the execute/review roles exist to exercise."""
    return (
        Privilege(f"executeDuty{duty}", f"svc://division{division:02d}/duty{duty}"),
        Privilege(f"reviewDuty{duty}", f"svc://division{division:02d}/duty{duty}"),
    )


def bank_scale_policy_set(config: BankScaleConfig) -> MSoDPolicySet:
    """One MMER policy per (division, duty pair), period-scoped.

    Mirrors the Example-1 bank policy's shape — ``Period=!`` separates
    duties within one audit period while allowing role changes across
    periods — but at organisational width: every division carries its
    own duty pairs over its own branches.  Deliberately without
    first/last steps, like :func:`repro.workload.bank_policy_set`, so
    the same stream runs unmodified against user-sharded deployments.
    """
    policies = []
    for division in range(config.n_divisions):
        context = ContextName.parse(
            f"Region=*, Division=D{division:02d}, Branch=*, Period=!"
        )
        for duty in range(config.duty_pairs_per_division):
            policies.append(
                MSoDPolicy(
                    context,
                    mmers=[MMER(list(duty_roles(division, duty)), 2)],
                    policy_id=f"bank-D{division:02d}-duty{duty}",
                )
            )
    return MSoDPolicySet(policies)


#: The final sign-off on a filing — deliberately *outside* the bound
#: set, so the four-eyes policy can require it from different eyes.
_APPROVE_OPERATION = "approveFiling"


def filing_privileges(division: int) -> tuple[Privilege, Privilege, Privilege]:
    """The three bound steps of one division's filing flow.

    Whoever prepares a filing must personally amend and submit it —
    the combination-of-duty scenario the MMCD workloads exercise.
    """
    target = f"svc://division{division:02d}/filing"
    return (
        Privilege("prepareFiling", target),
        Privilege("amendFiling", target),
        Privilege("submitFiling", target),
    )


def _approve_privilege(division: int) -> Privilege:
    return Privilege(
        _APPROVE_OPERATION, f"svc://division{division:02d}/filing"
    )


def bank_scale_duty_binding_policy_set(
    config: BankScaleConfig,
) -> MSoDPolicySet:
    """One MMCD policy per division: the filing flow binds to one user.

    Context ``Region=*, Division=Dk, Branch=*, Filing=!`` — the binding
    is scoped per filing case but aggregates across every branch of the
    division, so an owner may advance their case from any branch while
    a different user is denied from all of them.
    """
    policies = []
    for division in range(config.n_divisions):
        context = ContextName.parse(
            f"Region=*, Division=D{division:02d}, Branch=*, Filing=!"
        )
        policies.append(
            MSoDPolicy(
                context,
                constraints=[MMCD(filing_privileges(division))],
                policy_id=f"bank-D{division:02d}-filing-binding",
            )
        )
    return MSoDPolicySet(policies)


def four_eyes_filing_policy_set(config: BankScaleConfig) -> MSoDPolicySet:
    """Binding *and* exclusion layered on the same filing flow.

    Per division, two policies over the same scope: the MMCD binds
    prepare/amend/submit to one user, while an MMEP over
    (submit, approve) forbids that user from also signing their own
    filing off — the classic four-eyes rule, expressed as the two
    constraint kinds composing.
    """
    policies = list(bank_scale_duty_binding_policy_set(config))
    for division in range(config.n_divisions):
        context = ContextName.parse(
            f"Region=*, Division=D{division:02d}, Branch=*, Filing=!"
        )
        submit = filing_privileges(division)[2]
        policies.append(
            MSoDPolicy(
                context,
                mmeps=[MMEP([submit, _approve_privilege(division)], 2)],
                policy_id=f"bank-D{division:02d}-four-eyes",
            )
        )
    return MSoDPolicySet(policies)


def bank_scale_mmcd_stream(
    config: BankScaleConfig,
    n_requests: int,
    *,
    intruder_fraction: float = 0.15,
    open_fraction: float = 0.4,
    four_eyes: bool = False,
    start_timestamp: float = 0.0,
) -> Iterator[DecisionRequest]:
    """Seeded combination-of-duty stream over the filing flows.

    Each request either opens a new filing case (its user performs the
    first bound step and becomes the case's owner) or advances a
    random open case: with probability ``intruder_fraction`` the step
    is attempted by a *different* user — the deny path the MMCD exists
    for — otherwise the owner performs it.  Branches vary freely
    within a flow, exercising the ``Branch=*`` aggregation.  With
    ``four_eyes=True`` a completed flow is followed by a sign-off
    attempt, half the time by the owner (denied under
    :func:`four_eyes_filing_policy_set`), half by fresh eyes.

    Like :func:`bank_scale_request_stream`, the stream is a pure
    function of the config: replaying it against two stores must
    produce bit-identical decisions.
    """
    if not 0.0 <= intruder_fraction <= 1.0:
        raise PolicyError("intruder_fraction must be in [0, 1]")
    if not 0.0 < open_fraction <= 1.0:
        raise PolicyError("open_fraction must be in (0, 1]")
    rng = random.Random(config.seed ^ 0x4D4D4344)  # "MMCD"
    region_of_division = [
        division % config.n_regions for division in range(config.n_divisions)
    ]
    # (division, case, owner, next bound step; -1 = awaiting sign-off)
    flows: list[list] = []
    case_serial = 0
    for index in range(n_requests):
        if flows and rng.random() >= open_fraction:
            slot = rng.randrange(len(flows))
            division, case, owner, step_index = flows[slot]
            steps = filing_privileges(division)
            if step_index < 0:  # four-eyes sign-off
                privilege = _approve_privilege(division)
                user = (
                    owner
                    if rng.random() < 0.5
                    else f"a{rng.randrange(config.n_users):07d}"
                )
                flows.pop(slot)
            elif rng.random() < intruder_fraction:
                privilege = steps[step_index]
                user = f"x{rng.randrange(config.n_users):07d}"
            else:
                privilege = steps[step_index]
                user = owner
                if step_index + 1 < len(steps):
                    flows[slot][3] = step_index + 1
                elif four_eyes:
                    flows[slot][3] = -1
                else:
                    flows.pop(slot)
        else:
            division = rng.randrange(config.n_divisions)
            case = case_serial
            case_serial += 1
            owner = f"u{rng.randrange(config.n_users):07d}"
            privilege = filing_privileges(division)[0]
            user = owner
            flows.append([division, case, owner, 1])
        branch = rng.randrange(config.branches_per_division)
        context = ContextName.parse(
            f"Region=R{region_of_division[division]}, "
            f"Division=D{division:02d}, "
            f"Branch=B{branch:03d}, "
            f"Filing=F{case:06d}"
        )
        yield DecisionRequest(
            user_id=user,
            roles=(Role("employee", f"D{division:02d}-filing-clerk"),),
            operation=privilege.operation,
            target=privilege.target,
            context_instance=context,
            timestamp=start_timestamp + float(index),
        )


class _ZipfSampler:
    """Draw ranks 0..n-1 with weight ``1/(rank+1)**s`` via bisection."""

    __slots__ = ("_cumulative", "_total")

    def __init__(self, n: int, s: float) -> None:
        cumulative: list[float] = []
        total = 0.0
        for rank in range(n):
            total += 1.0 / float(rank + 1) ** s
            cumulative.append(total)
        self._cumulative = cumulative
        self._total = total

    def sample(self, rng: random.Random) -> int:
        return bisect_right(self._cumulative, rng.random() * self._total)


def _home(config: BankScaleConfig, user_index: int) -> tuple[int, int, int]:
    """A user's deterministic (division, branch, duty) home assignment."""
    division = user_index % config.n_divisions
    branch = (user_index // config.n_divisions) % config.branches_per_division
    duty = (
        user_index // (config.n_divisions * config.branches_per_division)
    ) % config.duty_pairs_per_division
    return division, branch, duty


def bank_scale_history(
    config: BankScaleConfig,
    per_user: int,
) -> Iterator[RetainedADIRecord]:
    """Retained ADI accumulated by the *whole* population before the
    measured window — the multi-session premise made concrete.

    MSoD history must be retained across sessions, so a real deployment
    carries records for every user who has ever acted, while only the
    active fraction generates new traffic.  This yields ``per_user``
    deterministic records for **each** of the ``n_users`` accounts —
    the user exercising their home duty's *execute* role in their home
    branch, one audit period per record — with negative ``granted_at``
    timestamps so the whole corpus predates any request stream started
    at timestamp 0.

    Replayed into any backend before the measured stream, this is what
    separates a resident-memory bill proportional to *total retained
    history* from one proportional to the *active set*: the tiered
    store leaves the inactive millions in the warm layer, while the
    always-resident stores index all of it.
    """
    if per_user < 0:
        raise PolicyError("bank-scale history needs per_user >= 0")
    region_of_division = [
        division % config.n_regions for division in range(config.n_divisions)
    ]
    total = config.n_users * per_user
    for user_index in range(config.n_users):
        division, branch, duty = _home(config, user_index)
        execute_role, _ = duty_roles(division, duty)
        execute_priv, _ = duty_privileges(division, duty)
        for sequence in range(per_user):
            period = (user_index + sequence) % config.n_periods
            context = ContextName.parse(
                f"Region=R{region_of_division[division]}, "
                f"Division=D{division:02d}, "
                f"Branch=B{branch:03d}, "
                f"Period=P{period}"
            )
            yield RetainedADIRecord(
                user_id=f"u{user_index:07d}",
                roles=(execute_role,),
                operation=execute_priv.operation,
                target=execute_priv.target,
                context_instance=context,
                granted_at=float(user_index * per_user + sequence - total),
                request_id=f"h{user_index:07d}-{sequence}",
            )


def bank_scale_request_stream(
    config: BankScaleConfig,
    n_requests: int,
    *,
    start_timestamp: float = 0.0,
) -> Iterator[DecisionRequest]:
    """The seeded bank-scale decision stream (see the module docstring).

    Requests carry monotonically increasing integer timestamps from
    ``start_timestamp`` so replays across stores stay bit-identical
    without consulting a clock.
    """
    rng = random.Random(config.seed)
    active_users = config.active_users
    # The active set is itself a deterministic sample of the population
    # — NOT the first ``active_users`` indices, or every active user
    # would share the same few divisions.
    if active_users >= config.n_users:
        active = list(range(config.n_users))
    else:
        active = rng.sample(range(config.n_users), active_users)
    zipf = _ZipfSampler(active_users, config.zipf_s)
    region_of_division = [
        division % config.n_regions for division in range(config.n_divisions)
    ]
    for index in range(n_requests):
        if config.churn_fraction > 0 and rng.random() < config.churn_fraction:
            user_index = rng.randrange(config.n_users)
        else:
            user_index = active[zipf.sample(rng)]
        division, branch, duty = _home(config, user_index)
        execute_role, review_role = duty_roles(division, duty)
        execute_priv, review_priv = duty_privileges(division, duty)
        if rng.random() < config.conflict_fraction:
            role, privilege = review_role, review_priv
        else:
            role, privilege = execute_role, execute_priv
        period = rng.randrange(config.n_periods)
        context = ContextName.parse(
            f"Region=R{region_of_division[division]}, "
            f"Division=D{division:02d}, "
            f"Branch=B{branch:03d}, "
            f"Period=P{period}"
        )
        yield DecisionRequest(
            user_id=f"u{user_index:07d}",
            roles=(role,),
            operation=privilege.operation,
            target=privilege.target,
            context_instance=context,
            timestamp=start_timestamp + float(index),
        )

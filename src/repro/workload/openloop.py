"""Open-loop (fixed arrival rate) load generation.

The closed-loop harnesses the benches used so far issue the next
request only after the previous one completes, so under overload the
*offered* load silently drops to whatever the system sustains and the
measured latency flatters the server — the classic coordinated-
omission trap.  Open-loop load fixes the arrival schedule up front
(request ``i`` arrives at ``start + i/rate`` regardless of progress)
and measures each request's latency from its **scheduled arrival** to
its completion, so time spent queued behind a slow decision counts
against the system, not the generator.

:func:`run_open_loop` drives a single in-process decide callable.
When the callable keeps up, latency ~= service time; when it does not,
the backlog grows and the recorded latencies honestly diverge —
exactly the overload signal ``bench_scale.py`` reports alongside the
closed-loop throughput numbers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

__all__ = ["OpenLoopReport", "percentile", "run_open_loop"]


def percentile(samples: Sequence[float], fraction: float) -> float:
    """The ``fraction`` quantile of ``samples`` (nearest-rank, 0..1)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[rank]


@dataclass(frozen=True, slots=True)
class OpenLoopReport:
    """What one open-loop run offered, achieved and measured."""

    offered_rps: float
    achieved_rps: float
    completed: int
    duration_s: float
    latency_p50_ms: float
    latency_p99_ms: float
    max_backlog_s: float

    def to_dict(self) -> dict:
        return {
            "offered_rps": round(self.offered_rps, 2),
            "achieved_rps": round(self.achieved_rps, 2),
            "completed": self.completed,
            "duration_s": round(self.duration_s, 3),
            "latency_p50_ms": round(self.latency_p50_ms, 3),
            "latency_p99_ms": round(self.latency_p99_ms, 3),
            "max_backlog_s": round(self.max_backlog_s, 3),
        }


def run_open_loop(
    decide: Callable[[object], object],
    requests: Iterable[object],
    arrival_rate: float,
    *,
    clock: Callable[[], float] = time.monotonic,
    sleep: Callable[[float], None] = time.sleep,
) -> OpenLoopReport:
    """Issue ``requests`` at a fixed ``arrival_rate`` (requests/second).

    Each request's scheduled arrival is ``start + index/arrival_rate``;
    the generator sleeps until that instant when it is ahead and issues
    immediately (carrying the backlog into the latency measurement)
    when it is behind.  Latency is completion minus *scheduled*
    arrival, so queueing delay under overload is reported, never
    hidden.
    """
    if arrival_rate <= 0:
        raise ValueError("arrival_rate must be > 0")
    interval = 1.0 / arrival_rate
    latencies: list[float] = []
    max_backlog = 0.0
    start = clock()
    completed = 0
    for index, request in enumerate(requests):
        scheduled = start + index * interval
        now = clock()
        if now < scheduled:
            sleep(scheduled - now)
        else:
            max_backlog = max(max_backlog, now - scheduled)
        decide(request)
        latencies.append(clock() - scheduled)
        completed += 1
    duration = max(clock() - start, 1e-9)
    return OpenLoopReport(
        offered_rps=arrival_rate,
        achieved_rps=completed / duration,
        completed=completed,
        duration_s=duration,
        latency_p50_ms=percentile(latencies, 0.50) * 1000.0,
        latency_p99_ms=percentile(latencies, 0.99) * 1000.0,
        max_backlog_s=max_backlog,
    )

"""Seeded synthetic workload generation for the evaluation harness.

The paper publishes no traces, so the benches run on generated
workloads that reproduce the *structure* of its two motivating
scenarios: the bank world (Example 1 — teller/auditor MMER conflicts
across branches and audit periods, with roles handed out by multiple
independent authorities) and the tax-refund world (Example 2 — MMEP
conflicts inside process instances).

:class:`ScenarioGenerator` emits labelled :class:`~repro.workload.
events.Scenario` scripts of every conflict class plus benign traffic;
:func:`decision_request_stream` emits plain decision requests for the
engine-scaling benches.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.core.constraints import Privilege, Role
from repro.core.context import ContextName
from repro.core.decision import DecisionRequest
from repro.vo.federation import IdentityLinker, LibertyAliasService, ShibbolethIdP
from repro.workload.events import (
    BENIGN,
    CROSS_SESSION,
    FEDERATED_LINKED,
    FEDERATED_UNLINKED,
    OBJECT_COMPLETION,
    REPEATED_PRIVILEGE,
    SAME_SESSION,
    SINGLE_AUTHORITY,
    STEP_ACCESS,
    STEP_ASSIGN,
    Scenario,
    Step,
)

TELLER = Role("employee", "Teller")
AUDITOR = Role("employee", "Auditor")
CLERK = Role("employee", "Clerk")
MANAGER = Role("employee", "Manager")

PREPARE = Privilege("prepareCheck", "http://www.myTaxOffice.com/Check")
APPROVE = Privilege("approve/disapproveCheck", "http://www.myTaxOffice.com/Check")
COMBINE = Privilege("combineResults", "http://secret.location.com/results")
CONFIRM = Privilege("confirmCheck", "http://secret.location.com/audit")

HANDLE_CASH = Privilege("handleCash", "till://cash")
AUDIT_BOOKS = Privilege("auditBooks", "ledger://books")

AUTHORITY_A = "authorityA"
AUTHORITY_B = "authorityB"

_BRANCHES = ("York", "Leeds", "Canterbury", "Bath")


class ScenarioGenerator:
    """Deterministic generator of labelled conflict scenarios."""

    def __init__(self, seed: int = 7) -> None:
        self._rng = random.Random(seed)
        self._scenario_counter = 0
        self._clock = 0.0
        self._linker = IdentityLinker()
        self._aliases = LibertyAliasService()
        self._shibboleth = ShibbolethIdP("idp")

    @property
    def identity_linker(self) -> IdentityLinker:
        """The linker a federation-aware MSoD checker should use."""
        return self._linker

    # ------------------------------------------------------------------
    def _next_id(self, label: str) -> tuple[str, int]:
        self._scenario_counter += 1
        return f"{label}-{self._scenario_counter:05d}", self._scenario_counter

    def _tick(self) -> float:
        self._clock += 1.0
        return self._clock

    def _bank_context(self, serial: int) -> ContextName:
        branch = self._rng.choice(_BRANCHES)
        return ContextName.parse(f"Branch={branch}, Period=P{serial}")

    def _tax_context(self, serial: int) -> ContextName:
        return ContextName.parse(f"TaxOffice=Leeds, taxRefundProcess=I{serial}")

    def _assign(self, user: str, role: Role, authority: str) -> Step:
        return Step(
            kind=STEP_ASSIGN,
            user_id=user,
            presented_id=user,
            session_id="-",
            authority=authority,
            roles=(role,),
            timestamp=self._tick(),
        )

    def _access(
        self,
        user: str,
        roles: tuple[Role, ...],
        privilege: Privilege,
        context: ContextName,
        session: str,
        authority: str = AUTHORITY_A,
        presented_id: str | None = None,
    ) -> Step:
        return Step(
            kind=STEP_ACCESS,
            user_id=user,
            presented_id=presented_id if presented_id is not None else user,
            session_id=session,
            authority=authority,
            roles=roles,
            operation=privilege.operation,
            target=privilege.target,
            context_instance=context,
            timestamp=self._tick(),
        )

    # ------------------------------------------------------------------
    # Scenario templates
    # ------------------------------------------------------------------
    def benign_bank(self) -> Scenario:
        """Separate people perform the separate bank duties."""
        sid, serial = self._next_id(BENIGN)
        teller_user = f"user-{serial}-t"
        auditor_user = f"user-{serial}-a"
        context = self._bank_context(serial)
        steps = (
            self._assign(teller_user, TELLER, AUTHORITY_A),
            self._assign(auditor_user, AUDITOR, AUTHORITY_A),
            self._access(
                teller_user, (TELLER,), HANDLE_CASH, context, f"s{serial}-1"
            ),
            self._access(
                auditor_user, (AUDITOR,), AUDIT_BOOKS, context, f"s{serial}-2"
            ),
        )
        return Scenario(sid, BENIGN, steps, "distinct users per duty")

    def benign_cross_period(self) -> Scenario:
        """One person is a teller in one period, an auditor in the next.

        Legitimate under the bank policy (the MMER context is scoped
        ``Period=!``); a context-blind mechanism blocks it anyway.
        """
        sid, serial = self._next_id(BENIGN)
        user = f"user-{serial}-x"
        steps = (
            self._assign(user, TELLER, AUTHORITY_A),
            self._access(
                user,
                (TELLER,),
                HANDLE_CASH,
                ContextName.parse(f"Branch=York, Period=P{serial}a"),
                f"s{serial}-1",
            ),
            self._assign(user, AUDITOR, AUTHORITY_B),
            self._access(
                user,
                (AUDITOR,),
                AUDIT_BOOKS,
                ContextName.parse(f"Branch=York, Period=P{serial}b"),
                f"s{serial}-2",
                authority=AUTHORITY_B,
            ),
        )
        return Scenario(sid, BENIGN, steps, "role change across audit periods")

    def benign_tax_refund(self) -> Scenario:
        """A compliant four-person tax refund."""
        sid, serial = self._next_id(BENIGN)
        clerk1, mgr1, mgr2, mgr3, clerk2 = (
            f"user-{serial}-{suffix}" for suffix in ("c1", "m1", "m2", "m3", "c2")
        )
        context = self._tax_context(serial)
        steps = (
            self._access(clerk1, (CLERK,), PREPARE, context, f"s{serial}-1"),
            self._access(mgr1, (MANAGER,), APPROVE, context, f"s{serial}-2"),
            self._access(mgr2, (MANAGER,), APPROVE, context, f"s{serial}-3"),
            self._access(mgr3, (MANAGER,), COMBINE, context, f"s{serial}-4"),
            self._access(clerk2, (CLERK,), CONFIRM, context, f"s{serial}-5"),
        )
        return Scenario(sid, BENIGN, steps, "compliant tax refund")

    def benign_cross_instance_clerk(self) -> Scenario:
        """A clerk prepares one refund and confirms a *different* one.

        Legitimate under the per-instance tax policy; an object-blind
        operational-DSoD formalism blocks it anyway (the user completes
        the sensitive {prepare, confirm} pair globally).
        """
        sid, serial = self._next_id(BENIGN)
        clerk_a = f"user-{serial}-ca"
        clerk_b = f"user-{serial}-cb"
        ctx_a = self._tax_context(serial)
        ctx_b = ContextName.parse(
            f"TaxOffice=Leeds, taxRefundProcess=I{serial}b"
        )
        steps = (
            self._access(clerk_a, (CLERK,), PREPARE, ctx_a, f"s{serial}-1"),
            self._access(clerk_b, (CLERK,), PREPARE, ctx_b, f"s{serial}-2"),
            self._access(clerk_a, (CLERK,), CONFIRM, ctx_b, f"s{serial}-3"),
        )
        return Scenario(
            sid, BENIGN, steps, "clerk confirms a refund prepared by another"
        )

    def same_session(self) -> Scenario:
        """Conflicting roles from different authorities, co-activated."""
        sid, serial = self._next_id(SAME_SESSION)
        user = f"user-{serial}-v"
        context = self._bank_context(serial)
        steps = (
            self._assign(user, TELLER, AUTHORITY_A),
            self._assign(user, AUDITOR, AUTHORITY_B),
            self._access(
                user,
                (TELLER, AUDITOR),
                AUDIT_BOOKS,
                context,
                f"s{serial}-1",
            ),
        )
        return Scenario(
            sid, SAME_SESSION, steps, "both roles active in one session"
        )

    def single_authority(self) -> Scenario:
        """One authority assigns both conflicting roles over time."""
        sid, serial = self._next_id(SINGLE_AUTHORITY)
        user = f"user-{serial}-v"
        context = self._bank_context(serial)
        steps = (
            self._assign(user, TELLER, AUTHORITY_A),
            self._access(user, (TELLER,), HANDLE_CASH, context, f"s{serial}-1"),
            self._assign(user, AUDITOR, AUTHORITY_A),
            self._access(user, (AUDITOR,), AUDIT_BOOKS, context, f"s{serial}-2"),
        )
        return Scenario(
            sid, SINGLE_AUTHORITY, steps, "promotion within one authority"
        )

    def cross_session(self) -> Scenario:
        """Roles from different authorities, exercised in different sessions."""
        sid, serial = self._next_id(CROSS_SESSION)
        user = f"user-{serial}-v"
        context = self._bank_context(serial)
        steps = (
            self._assign(user, TELLER, AUTHORITY_A),
            self._access(user, (TELLER,), HANDLE_CASH, context, f"s{serial}-1"),
            self._assign(user, AUDITOR, AUTHORITY_B),
            self._access(
                user,
                (AUDITOR,),
                AUDIT_BOOKS,
                context,
                f"s{serial}-2",
                authority=AUTHORITY_B,
            ),
        )
        return Scenario(
            sid, CROSS_SESSION, steps, "multi-session multi-authority conflict"
        )

    def federated(self, linked: bool) -> Scenario:
        """A cross-session conflict behind federated identifiers.

        With ``linked=False`` the user appears under fresh Shibboleth
        handles, so no mechanism can join the sessions (the Section 6
        limitation).  With ``linked=True`` the user appears under Liberty
        aliases that the generator registers with its identity linker —
        an MSoD checker using that linker recovers the local identity.
        """
        label = FEDERATED_LINKED if linked else FEDERATED_UNLINKED
        sid, serial = self._next_id(label)
        user = f"user-{serial}-v"
        context = self._bank_context(serial)
        if linked:
            id1 = self._aliases.alias_for(user, "sp-bank-teller")
            id2 = self._aliases.alias_for(user, "sp-bank-audit")
            self._linker.link(id1, user)
            self._linker.link(id2, user)
        else:
            id1 = self._shibboleth.new_session(user)
            id2 = self._shibboleth.new_session(user)
        steps = (
            self._assign(user, TELLER, AUTHORITY_A),
            self._access(
                user,
                (TELLER,),
                HANDLE_CASH,
                context,
                f"s{serial}-1",
                presented_id=id1,
            ),
            self._assign(user, AUDITOR, AUTHORITY_B),
            self._access(
                user,
                (AUDITOR,),
                AUDIT_BOOKS,
                context,
                f"s{serial}-2",
                authority=AUTHORITY_B,
                presented_id=id2,
            ),
        )
        return Scenario(sid, label, steps, "conflict behind federated ids")

    def repeated_privilege(self) -> Scenario:
        """A manager approves the same tax refund twice."""
        sid, serial = self._next_id(REPEATED_PRIVILEGE)
        clerk = f"user-{serial}-c"
        manager = f"user-{serial}-m"
        context = self._tax_context(serial)
        steps = (
            self._access(clerk, (CLERK,), PREPARE, context, f"s{serial}-1"),
            self._access(manager, (MANAGER,), APPROVE, context, f"s{serial}-2"),
            self._access(manager, (MANAGER,), APPROVE, context, f"s{serial}-3"),
        )
        return Scenario(
            sid, REPEATED_PRIVILEGE, steps, "same manager approves twice"
        )

    def object_completion(self) -> Scenario:
        """One clerk both prepares and confirms the same tax refund.

        The object-scoped conflict class: a single user completes the
        sensitive {prepareCheck, confirmCheck} pair on one process
        instance — caught by MSoD's first MMEP and by Gligor-style
        history-based DSoD, invisible to role-only mechanisms.
        """
        sid, serial = self._next_id(OBJECT_COMPLETION)
        clerk = f"user-{serial}-c"
        manager = f"user-{serial}-m"
        context = self._tax_context(serial)
        steps = (
            self._access(clerk, (CLERK,), PREPARE, context, f"s{serial}-1"),
            self._access(manager, (MANAGER,), APPROVE, context, f"s{serial}-2"),
            self._access(clerk, (CLERK,), CONFIRM, context, f"s{serial}-3"),
        )
        return Scenario(
            sid, OBJECT_COMPLETION, steps, "same clerk prepares and confirms"
        )

    # ------------------------------------------------------------------
    def mixed_stream(
        self, per_class: int = 10, benign_per_class: int = 10
    ) -> list[Scenario]:
        """A shuffled workload with every class represented equally."""
        scenarios: list[Scenario] = []
        for _ in range(benign_per_class):
            scenarios.append(self.benign_bank())
            scenarios.append(self.benign_cross_period())
            scenarios.append(self.benign_tax_refund())
            scenarios.append(self.benign_cross_instance_clerk())
        for _ in range(per_class):
            scenarios.append(self.same_session())
            scenarios.append(self.single_authority())
            scenarios.append(self.cross_session())
            scenarios.append(self.federated(linked=False))
            scenarios.append(self.federated(linked=True))
            scenarios.append(self.repeated_privilege())
            scenarios.append(self.object_completion())
        self._rng.shuffle(scenarios)
        return scenarios


def decision_request_stream(
    n_requests: int,
    n_users: int = 100,
    n_branches: int = 4,
    n_periods: int = 4,
    conflict_fraction: float = 0.1,
    seed: int = 11,
) -> Iterator[DecisionRequest]:
    """Plain decision requests for the engine-scaling benches.

    ``conflict_fraction`` of the requests present the auditor role for a
    user who (statistically) has teller history, so both grant and deny
    paths are exercised.
    """
    rng = random.Random(seed)
    for index in range(n_requests):
        user = f"u{rng.randrange(n_users):04d}"
        branch = f"B{rng.randrange(n_branches)}"
        period = f"P{rng.randrange(n_periods)}"
        context = ContextName.parse(f"Branch={branch}, Period={period}")
        if rng.random() < conflict_fraction:
            role, privilege = AUDITOR, AUDIT_BOOKS
        else:
            role, privilege = TELLER, HANDLE_CASH
        yield DecisionRequest(
            user_id=user,
            roles=(role,),
            operation=privilege.operation,
            target=privilege.target,
            context_instance=context,
            timestamp=float(index),
        )


def hot_user_stream(
    n_requests: int,
    user_id: str = "hot-user",
    context: ContextName | None = None,
    conflict_fraction: float = 0.5,
    seed: int = 13,
) -> Iterator[DecisionRequest]:
    """A single-user contended stream for per-user serialization tests.

    Every request names the same user and business-context instance,
    mixing the teller and auditor duties so a policy with an MMER over
    {Teller, Auditor} forces a history-dependent outcome: once either
    role is granted in the context, the other must be denied.  Several
    clients replaying slices of this stream concurrently is the
    worst-case hammering of one retained-ADI history — exactly what the
    serving layer's per-user shard serialization must keep race-free.
    """
    rng = random.Random(seed)
    if context is None:
        context = ContextName.parse("Branch=York, Period=P1")
    for index in range(n_requests):
        if rng.random() < conflict_fraction:
            role, privilege = AUDITOR, AUDIT_BOOKS
        else:
            role, privilege = TELLER, HANDLE_CASH
        yield DecisionRequest(
            user_id=user_id,
            roles=(role,),
            operation=privilege.operation,
            target=privilege.target,
            context_instance=context,
            timestamp=float(index),
        )


def bank_policy_set():
    """The Example-1 bank policy as a ready-made MMER-only policy set.

    One MSoD policy over ``Branch=*, Period=!`` forbidding any user
    from exercising both Teller and Auditor in the same branch/period.
    Deliberately without first/last steps: cross-user context purges do
    not compose with user-keyed cluster routing (one user's last step
    would have to purge records living on other shards), so the cluster
    smoke/fault harnesses and benches all run this purge-free policy.
    Defined here once so tests, the ``cluster smoke`` CLI and
    ``bench_cluster.py`` agree on it.
    """
    from repro.core.policy import MSoDPolicy, MSoDPolicySet
    from repro.core.constraints import MMER

    return MSoDPolicySet(
        [
            MSoDPolicy(
                ContextName.parse("Branch=*, Period=!"),
                mmers=[MMER([TELLER, AUDITOR], 2)],
                policy_id="bank",
            )
        ]
    )

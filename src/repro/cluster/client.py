"""The cluster-aware PDP client: routing, fencing and safe failover.

``ClusterPDP`` implements the same
:class:`~repro.framework.pdp.PolicyDecisionPoint` protocol as
:class:`~repro.client.RemotePDP`, but in front of a whole cluster: it
hashes ``user_id`` on the same consistent-hash ring as the coordinator,
sends each decide to the owning shard's primary stamped with the route
epoch, and fails over when the cluster does.

Failover from the client's side::

    decide → PDPFencedError / PDPNotPrimaryError / PDPConnectError
           → re-fetch the route from the coordinator
           → retry the *same* request (same ``request_id``) against the
             new primary with the new epoch

    decide → PDPUnavailableError after the frame was sent
           → wait until the shard's epoch advances (failover sealed the
             old lineage), then retry; surface the error if it never
             does within ``failover_wait``

The distinction is what keeps decides exactly-once.  A fenced,
not-primary or connect failure means the request was **not** evaluated,
so resending is always safe.  A *post-send* transport failure is
ambiguous: the primary may be dead (request lost) or merely slow
(request still queued, about to evaluate and commit).  Resending to the
*same* primary could therefore evaluate the request twice and
double-record history — exactly what :class:`RemotePDP` forbids.  Only
after the coordinator promotes a new primary under a higher epoch is
the resend safe again: the old lineage is sealed and fenced, anything
the deposed primary still evaluates falls outside authoritative
history, and anything it committed *before* the seal is in the shipped
trail — so the journal on the new primary short-circuits the retried
``request_id`` to the recorded outcome instead of a second evaluation.
"""

from __future__ import annotations

import random
import threading
import time

from repro.client.remote import RemotePDP
from repro.core.decision import Decision, DecisionRequest
from repro.errors import (
    ClusterError,
    PDPConnectError,
    PDPFencedError,
    PDPNotPrimaryError,
    PDPOverloadedError,
    PDPUnavailableError,
)
from repro.framework.pdp import PolicyDecisionPoint
from repro.server import protocol
from repro.cluster.ring import HashRing


class ClusterPDP(PolicyDecisionPoint):
    """A :class:`PolicyDecisionPoint` spanning a sharded MSoD cluster.

    Parameters
    ----------
    coordinator:
        ``(host, port)`` of the cluster coordinator; the routing table
        is fetched from it at first use and re-fetched on every routing
        error.  Mutually exclusive with ``static_route``.
    static_route:
        A fixed routing table (the ``route`` response body) for
        coordinator-less deployments — the multi-process benchmark uses
        this.  No failover is possible without a coordinator to ask
        for fresh routes, so routing errors surface immediately.
    timeout, health_timeout, pool_size:
        Per-node :class:`RemotePDP` tuning (one pooled client per
        distinct primary address).
    protocol:
        Decide wire protocol for the per-node clients: ``"auto"``
        (default — negotiate pipelined protocol v2, fall back to v1),
        ``"v1"`` or ``"v2"``.  The fencing epoch rides at frame level,
        so pipelined batches group entries by epoch and the
        epoch-gated resend discipline below is unchanged: unsent
        entries fail connect-class (re-route + resend), sent entries
        fail :class:`PDPUnavailableError` (resend only after the
        shard's epoch advances).
    failover_wait:
        Total seconds ``decide`` keeps retrying through a failover
        before giving up (route refreshes + backoff happen inside this
        budget).
    """

    def __init__(
        self,
        coordinator: tuple[str, int] | None = None,
        *,
        static_route: dict | None = None,
        timeout: float = 5.0,
        health_timeout: float = 0.25,
        pool_size: int = 4,
        failover_wait: float = 10.0,
        retry_interval: float = 0.1,
        rng: random.Random | None = None,
        protocol: str = "auto",
    ) -> None:
        if (coordinator is None) == (static_route is None):
            raise ClusterError(
                "ClusterPDP needs exactly one of coordinator=(host, port) "
                "or static_route={...}"
            )
        self._coordinator = coordinator
        self._protocol = protocol
        self._timeout = timeout
        self._health_timeout = health_timeout
        self._pool_size = pool_size
        self._failover_wait = failover_wait
        self._retry_interval = retry_interval
        self._rng = rng if rng is not None else random.Random()
        self._lock = threading.Lock()
        self._route: dict | None = None
        self._ring: HashRing | None = None
        self._pdps: dict[tuple[str, int], RemotePDP] = {}
        self._coordinator_pdp: RemotePDP | None = None
        self._closed = False
        if static_route is not None:
            self._install_route(static_route)

    # -- routing -------------------------------------------------------
    def _install_route(self, route: dict) -> None:
        shards = route.get("shards")
        if not isinstance(shards, dict) or not shards:
            raise ClusterError(f"malformed routing table: {route!r}")
        ring = HashRing(sorted(shards), vnodes=int(route.get("vnodes", 64)))
        with self._lock:
            current = self._route
            if current is not None and current.get("version", 0) >= route.get(
                "version", 0
            ):
                return  # never step back to an older route
            self._route = route
            self._ring = ring

    def _coordinator_client(self) -> RemotePDP:
        if self._coordinator is None:
            raise ClusterError(
                "no coordinator configured (static route only); cannot "
                "refresh the routing table"
            )
        if self._coordinator_pdp is None:
            host, port = self._coordinator
            self._coordinator_pdp = RemotePDP(
                host,
                port,
                pool_size=1,
                timeout=self._timeout,
                health_timeout=self._health_timeout,
            )
        return self._coordinator_pdp

    def refresh_route(self) -> dict:
        """Fetch and install the coordinator's current routing table."""
        client = self._coordinator_client()
        body = client._call(protocol.OP_ROUTE, retriable=True).get("body")
        if not isinstance(body, dict):
            raise ClusterError("coordinator returned a malformed route")
        self._install_route(body)
        return body

    def route(self) -> dict:
        """The routing table in use (fetching it on first use)."""
        with self._lock:
            route = self._route
        if route is None:
            return self.refresh_route()
        return route

    def cluster_status(self) -> dict:
        """The coordinator's ``cluster-status`` body."""
        client = self._coordinator_client()
        body = client._call(protocol.OP_CLUSTER_STATUS, retriable=True).get(
            "body"
        )
        if not isinstance(body, dict):
            raise ClusterError("coordinator returned a malformed status")
        return body

    def cluster_metrics_text(self) -> str:
        """The coordinator's Prometheus exposition (per-node gauges)."""
        client = self._coordinator_client()
        return client.metrics_text()

    # -- policy management --------------------------------------------
    def policy_status(self) -> dict:
        """The coordinator's cluster-wide policy status body."""
        client = self._coordinator_client()
        body = client._call(protocol.OP_POLICY_STATUS, retriable=True).get(
            "body"
        )
        if not isinstance(body, dict):
            raise ClusterError(
                "coordinator returned a malformed policy status"
            )
        return body

    def policy_version(self):
        """The cluster-wide :class:`PolicyVersion` the coordinator reports."""
        from repro.client.remote import _version_from_status_body

        return _version_from_status_body(self.policy_status())

    def reload_policy(
        self,
        policy,
        *,
        verify: bool = False,
        max_flips: int = 0,
        force: bool = False,
        canary: bool = False,
        principal: str | None = None,
    ) -> dict:
        """Roll a new policy set across the whole cluster, standby first.

        ``policy`` is the usual source union (set, path, or XML text).
        Returns the coordinator's rollout body — ``changed``, the
        resulting ``version`` and each node's swap report — rather than
        a single :class:`PolicySwapReport`, because a cluster rollout
        is N swaps.  Safe to retry: a repeated rollout of the same set
        is a digest no-op on every node.

        ``verify=True`` runs the coordinator's (static) verification
        gate and attaches its verdict; ``canary=True`` runs the full
        canary rollout instead — stage on one shard's standby, mirror
        that shard's live decide stream under the candidate, and only
        roll cluster-wide when flips stay within ``max_flips`` (see
        :meth:`LocalCluster.canary_reload_policy`).
        """
        from repro.client.remote import _policy_source_to_xml

        client = self._coordinator_client()
        extra = {} if principal is None else {"principal": principal}
        body = client._call(
            protocol.OP_POLICY_RELOAD,
            retriable=True,
            policy_xml=_policy_source_to_xml(policy),
            verify=verify,
            max_flips=max_flips,
            force=force,
            canary=canary,
            **extra,
        ).get("body")
        if not isinstance(body, dict):
            raise ClusterError(
                "coordinator returned a malformed reload report"
            )
        return body

    # -- resharding ----------------------------------------------------
    def resize(
        self,
        action: str,
        *,
        shard: str | None = None,
        apply: bool = False,
    ) -> dict:
        """Start (or plan) an online topology change via the coordinator.

        ``action`` is ``"add-node"`` (split: grow by one shard),
        ``"drain"`` (shrink: migrate ``shard``'s users away and retire
        it) or ``"rebalance"`` (imbalance report from the per-shard
        resident-user gauges; ``apply=True`` lets the coordinator start
        a split when the report recommends one).  Migrations run
        asynchronously in the coordinator — poll
        :meth:`reshard_status` until ``active`` is false.
        """
        client = self._coordinator_client()
        body = client._call(
            protocol.OP_RESHARD,
            retriable=False,  # starting a migration twice is an error
            action=action,
            shard=shard,
            apply=apply,
        ).get("body")
        if not isinstance(body, dict):
            raise ClusterError(
                "coordinator returned a malformed reshard response"
            )
        return body

    def reshard_status(self) -> dict:
        """The coordinator's migration status body (active + history)."""
        client = self._coordinator_client()
        body = client._call(protocol.OP_RESHARD_STATUS, retriable=True).get(
            "body"
        )
        if not isinstance(body, dict):
            raise ClusterError(
                "coordinator returned a malformed reshard status"
            )
        return body

    def _target_for(self, user_id: str) -> tuple[tuple[str, int], int, str]:
        route = self.route()
        with self._lock:
            ring = self._ring
        assert ring is not None  # installed with the route
        shard = ring.shard_for(user_id)
        entry = route["shards"].get(shard)
        if not isinstance(entry, dict):
            raise ClusterError(f"route has no entry for shard {shard!r}")
        host, port = entry["address"]
        return (str(host), int(port)), int(entry.get("epoch", 0)), shard

    def _pdp_for(self, address: tuple[str, int]) -> RemotePDP:
        with self._lock:
            pdp = self._pdps.get(address)
            if pdp is None:
                pdp = self._pdps[address] = RemotePDP(
                    address[0],
                    address[1],
                    pool_size=self._pool_size,
                    timeout=self._timeout,
                    health_timeout=self._health_timeout,
                    max_retries=0,  # this class owns the retry loop
                    protocol_version=self._protocol,
                )
            return pdp

    # -- the PolicyDecisionPoint protocol ------------------------------
    def _pause(self) -> None:
        time.sleep(
            self._retry_interval * (1.0 + self._rng.uniform(0.0, 0.5))
        )

    def _await_epoch_bump(
        self,
        user_id: str,
        sent_epoch: int,
        sent_shard: str,
        deadline: float,
    ) -> bool:
        """Wait for the user's shard to fail over past ``sent_epoch``.

        Returns True once the routed epoch exceeds the one the failed
        send carried — the old lineage is sealed and fenced, so the
        resend cannot double-evaluate.  A *reassignment* (the route now
        sends this user to a different shard) counts the same way:
        resharding only flips the ring after the old owner was fenced
        at a bumped epoch and its trail (journal included) was imported
        by the new owner, so the old lineage is equally sealed and the
        new owner's journal dedupes anything the old one committed.
        Returns False at the deadline (the primary is alive but slow:
        the caller must surface the transport error, never resend into
        the same lineage).
        """
        while time.monotonic() < deadline:
            self._pause()
            try:
                self.refresh_route()
            except (PDPUnavailableError, ClusterError):
                continue
            _, epoch, shard = self._target_for(user_id)
            if shard != sent_shard or epoch > sent_epoch:
                return True
        return False

    def decide(self, request: DecisionRequest) -> Decision:
        """Route one decide to its user's primary, surviving failover."""
        deadline = time.monotonic() + self._failover_wait
        while True:
            address, epoch, shard = self._target_for(request.user_id)
            pdp = self._pdp_for(address)
            try:
                return pdp.decide(request, epoch=epoch)
            except PDPOverloadedError as exc:
                # Shed before queueing: safe to retry the same primary.
                if time.monotonic() >= deadline:
                    raise
                time.sleep(
                    exc.retry_after
                    + self._retry_interval * self._rng.uniform(0.0, 0.5)
                )
            except (
                PDPFencedError,
                PDPNotPrimaryError,
                PDPConnectError,
            ) as exc:
                # The request was not evaluated (rejected before the
                # engine, or never sent): always safe to re-route and
                # resend under the same request_id.
                if self._coordinator is None or time.monotonic() >= deadline:
                    raise
                self._pause()
                try:
                    self.refresh_route()
                except (PDPUnavailableError, ClusterError):
                    if time.monotonic() >= deadline:
                        raise exc
            except PDPUnavailableError as exc:
                # Post-send failure: the primary may still evaluate the
                # request.  Resend only once the shard's epoch advances
                # (failover sealed the old lineage and the journal
                # dedupes anything it committed); otherwise surface the
                # error rather than risk a double evaluation.
                if self._coordinator is None or not self._await_epoch_bump(
                    request.user_id, epoch, shard, deadline
                ):
                    raise exc

    # -- per-node passthroughs ----------------------------------------
    def healthz(self, user_id: str) -> dict:
        """The owning primary's health body for one user's shard."""
        address, _, _ = self._target_for(user_id)
        return self._pdp_for(address).healthz()

    def node_metrics_text(self, user_id: str) -> str:
        """The owning primary's own Prometheus exposition."""
        address, _, _ = self._target_for(user_id)
        return self._pdp_for(address).metrics_text()

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close every pooled per-node client.  Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pdps = list(self._pdps.values())
            self._pdps.clear()
            coordinator = self._coordinator_pdp
            self._coordinator_pdp = None
        for pdp in pdps:
            pdp.close()
        if coordinator is not None:
            coordinator.close()

    def __enter__(self) -> "ClusterPDP":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

"""The cluster coordinator: topology, health checking and failover.

``LocalCluster`` owns N shards, each a (primary, standby) pair of
:class:`~repro.cluster.node.ClusterNode` instances, and runs three
background concerns on one private event loop:

* a **health loop** probing every primary's ``healthz`` with the fast
  :class:`~repro.client.RemotePDP` health timeout; after
  ``health_failures`` consecutive misses the shard fails over;
* a **catch-up loop** re-running audit-trail replay on every standby
  (replay is idempotent, so each tick simply replays the primary's
  shipped trails into the standby's store and journal);
* a **coordinator server** speaking the same JSON-lines protocol as
  the nodes, answering ``route`` (the client's routing table),
  ``cluster-status``, ``healthz`` and ``metrics`` (JSON or Prometheus
  text exposition with per-node gauges).

Failover sequence (the tentpole's fencing story):

1. the primary stops answering health probes (crash, kill, partition)
   — or an operator forces failover of a live primary;
2. the coordinator **demotes** the old primary first: its decide gate
   refuses new work and its audit sink (role-checked under the node
   lock) refuses in-flight appends, so the trail stops moving;
3. it then **seals the lineage**: it counts the events visible in the
   now-quiescent trails — anything the deposed process might still
   produce past that point is outside authoritative history and will
   never be replayed.  Demote-before-seal is load-bearing: sealing
   first would let a live primary acknowledge decisions *after* the
   count, silently dropping grants clients already saw;
4. the standby runs one final sealed catch-up, so it holds exactly the
   acknowledged decision history (the audit sink runs before the
   client ack, so nothing a client saw can be missing);
5. the standby is promoted under ``epoch + 1``; the routing table
   version bumps; clients re-fetch the route and retry with the new
   epoch, and any node still claiming the old epoch answers ``fenced``.

Both background loops treat a failing tick (an unreadable trail, a
probe raising something unexpected, a promote that cannot complete) as
an event to log and count — ``cluster_coordinator_loop_errors_total``
— never as a reason to die: a replication or health loop that silently
stops is strictly worse than one that retries next tick.
"""

from __future__ import annotations

import asyncio
import json
import logging
import os
import threading
import time
from typing import Iterable

from repro.audit.trail import AuditTrailManager
from repro.client.remote import RemotePDP
from repro.core.policy import MSoDPolicySet
from repro.errors import (
    ClusterError,
    PDPUnavailableError,
    PolicyError,
    ProtocolError,
    StoreSpecError,
)
from repro.storespec import ParsedStoreSpec, build_store, parse_store_spec
from repro.obs.metrics import MetricsRegistry
from repro.server import protocol
from repro.cluster.node import ROLE_PRIMARY, ROLE_STANDBY, ClusterNode
from repro.cluster.reshard import (
    KIND_DRAIN,
    KIND_SPLIT,
    PHASE_CATCHUP,
    PHASE_CUTOVER,
    PHASE_DONE,
    Migration,
    plan_rebalance,
)
from repro.cluster.ring import HashRing

logger = logging.getLogger(__name__)

#: File under ``data_dir`` holding the coordinator's durable state:
#: ring topology, route version, per-shard epochs/roles and the
#: in-flight migration.  Written atomically (temp + rename) on every
#: transition so a restarted coordinator resumes instead of resetting.
STATE_FILENAME = "coordinator-state.json"


class ShardState:
    """One shard's pair of nodes plus its fencing epoch."""

    __slots__ = ("name", "primary", "standby", "epoch", "failovers", "lock")

    def __init__(
        self, name: str, primary: ClusterNode, standby: ClusterNode
    ) -> None:
        self.name = name
        self.primary = primary
        self.standby = standby
        self.epoch = primary.epoch
        self.failovers = 0
        self.lock = threading.Lock()


def _parse_cluster_store(store: str) -> ParsedStoreSpec:
    """Parse and vet a per-node store spec for cluster use.

    Clusters instantiate one store per node under ``data_dir``, so the
    spec must not pin a single path: use bare ``sqlite`` (each node
    gets ``<data_dir>/<node>.db``) or ``tiered:sqlite?...``; ``memory``
    and ``tiered:memory?...`` work too.  Explicit paths, ``remote:``
    and pre-built instances are rejected — they cannot be cloned per
    node.
    """
    parsed = parse_store_spec(store)
    if parsed.kind in ("instance", "remote"):
        raise StoreSpecError(
            "cluster nodes each build their own store; pass 'memory', "
            "'sqlite' or 'tiered:...', not "
            + ("a store instance" if parsed.kind == "instance" else repr(store))
        )
    pinned = parsed.warm if parsed.kind == "tiered" else parsed
    if pinned is not None and pinned.kind == "sqlite" and pinned.path:
        raise StoreSpecError(
            "cluster sqlite files live under data_dir, one per node — "
            f"use bare 'sqlite' (no path), got {store!r}"
        )
    return parsed


class LocalCluster:
    """N shards of primary+standby nodes plus a routing coordinator.

    Every node runs in-process on its own server thread (the same
    harness the single-node tests use), which keeps the whole cluster
    bootable inside one pytest worker or one CI step; the ``cluster
    node`` CLI runs the same :class:`ClusterNode` as a standalone
    process for multi-process benchmarking.
    """

    def __init__(
        self,
        policy_set: MSoDPolicySet,
        n_shards: int,
        data_dir: str,
        *,
        audit_key: bytes = b"cluster-trail-key",
        store: str = "memory",
        vnodes: int = 64,
        host: str = "127.0.0.1",
        port: int = 0,
        health_interval: float = 0.2,
        health_failures: int = 2,
        health_timeout: float = 0.25,
        catchup_interval: float = 0.4,
        reshard_interval: float = 0.1,
        fsync: bool = True,
        audit_max_records: int = 10_000,
        audit_max_bytes: int | None = None,
        journal_max: int | None = None,
        service_shards: int = 2,
        resume: bool = True,
    ) -> None:
        if n_shards < 1:
            raise ClusterError("a cluster needs at least one shard")
        parsed_store = _parse_cluster_store(store)
        self._policy_set = policy_set
        self._data_dir = data_dir
        self._audit_key = audit_key
        self._host = host
        self._port = port
        self._health_interval = health_interval
        self._health_failures = health_failures
        self._health_timeout = health_timeout
        self._catchup_interval = catchup_interval
        self._reshard_interval = reshard_interval
        self._parsed_store = parsed_store
        self._service_shards = service_shards
        self._fsync = fsync
        self._audit_max_records = audit_max_records
        self._audit_max_bytes = audit_max_bytes
        self._journal_max = journal_max
        self._route_version = 1
        self._route_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._state_path = os.path.join(data_dir, STATE_FILENAME)
        self._shards: dict[str, ShardState] = {}
        self._dead: set[str] = set()
        self._migration: Migration | None = None
        self._last_migration: dict | None = None
        self._migrations_total: dict[str, int] = {
            KIND_SPLIT: 0,
            KIND_DRAIN: 0,
        }
        self._users_moved_total = 0
        self._cutover_pauses: list[float] = []
        self._reshard_lock = threading.Lock()
        os.makedirs(data_dir, exist_ok=True)
        persisted = self._load_state_file() if resume else None
        if persisted is not None:
            # Restart-stable topology: the ring, route version, shard
            # epochs and any in-flight migration come from the state
            # file, not from CLI flags — a coordinator restarted
            # mid-migration resumes instead of resetting to
            # ``shard-0..n-1`` at epoch 1.
            self._route_version = int(persisted.get("route_version", 1))
            self._ring = HashRing.from_dict(persisted["ring"])
            for name, shard_data in persisted.get("shards", {}).items():
                self._shards[name] = self._build_shard(
                    name,
                    primary_name=shard_data.get("primary"),
                    epoch=int(shard_data.get("epoch", 1)),
                    failovers=int(shard_data.get("failovers", 0)),
                )
            migration = persisted.get("migration")
            if migration:
                self._migration = Migration.from_dict(migration)
            self._last_migration = persisted.get("last_migration")
            self._migrations_total.update(
                persisted.get("migrations_total", {})
            )
            self._users_moved_total = int(
                persisted.get("users_moved_total", 0)
            )
        else:
            for index in range(n_shards):
                shard = f"shard-{index}"
                self._shards[shard] = self._build_shard(shard)
            self._ring = HashRing(self._shards.keys(), vnodes=vnodes)
        self._registry: MetricsRegistry | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._stopping = threading.Event()
        self._server: asyncio.AbstractServer | None = None
        self._coordinator_port = 0
        self._loop_errors = {"health": 0, "catchup": 0, "reshard": 0}
        self._policy_reloads = 0

    def _build_shard(
        self,
        shard: str,
        *,
        primary_name: str | None = None,
        epoch: int = 1,
        failovers: int = 0,
    ) -> ShardState:
        """Construct one shard's primary+standby node pair (not started).

        ``primary_name`` restores a persisted role assignment (after a
        failover the ``-b`` node may be the primary); by default the
        ``-a`` node leads at ``epoch``.
        """
        nodes: dict[str, ClusterNode] = {}
        if primary_name is None:
            primary_name = f"{shard}-a"
        for suffix in ("a", "b"):
            node_name = f"{shard}-{suffix}"
            is_primary = node_name == primary_name
            backend, _ = build_store(
                self._parsed_store,
                default_sqlite_path=os.path.join(
                    self._data_dir, f"{node_name}.db"
                ),
            )
            nodes[node_name] = ClusterNode(
                node_name,
                shard,
                self._policy_set,
                backend,
                os.path.join(self._data_dir, f"{node_name}-trails"),
                self._audit_key,
                role=ROLE_PRIMARY if is_primary else ROLE_STANDBY,
                epoch=epoch if is_primary else 0,
                host=self._host,
                service_shards=self._service_shards,
                fsync=self._fsync,
                audit_max_records=self._audit_max_records,
                audit_max_bytes=self._audit_max_bytes,
                journal_max=self._journal_max,
            )
        standby_name = next(
            name for name in nodes if name != primary_name
        )
        state = ShardState(shard, nodes[primary_name], nodes[standby_name])
        state.failovers = failovers
        return state

    # ------------------------------------------------------------------
    @property
    def ring(self) -> HashRing:
        return self._ring

    @property
    def shard_names(self) -> tuple[str, ...]:
        return self._ring.shard_names

    @property
    def host(self) -> str:
        return self._host

    @property
    def port(self) -> int:
        """The coordinator's bound port."""
        return self._coordinator_port

    def shard(self, name: str) -> ShardState:
        try:
            return self._shards[name]
        except KeyError:
            raise ClusterError(f"unknown shard {name!r}") from None

    def nodes(self) -> Iterable[ClusterNode]:
        for state in self._shards.values():
            yield state.primary
            yield state.standby

    # ------------------------------------------------------------------
    def start(self) -> "LocalCluster":
        for node in self.nodes():
            node.start()
            node.install_ring(self._ring)
        self._start_coordinator_thread()
        self._save_state()
        return self

    def _start_coordinator_thread(self) -> None:
        self._ready.clear()
        self._stopping.clear()
        self._thread = threading.Thread(
            target=self._run, name="msod-coordinator", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):  # pragma: no cover - hang guard
            raise ClusterError("coordinator failed to start in time")

    def stop(self) -> None:
        if self._thread is not None and self._loop is not None:
            self._stopping.set()
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=30)
            self._thread = None
        for node in self.nodes():
            if node.name not in self._dead:
                node.stop()

    def crash_coordinator(self) -> None:
        """Fault injection: kill the coordinator, leave every node serving.

        Stops the health/catch-up/reshard loops and the route server
        mid-whatever-they-were-doing — the in-process analogue of the
        coordinator process dying.  Nodes keep deciding; clients keep
        working off their cached route (and merely fail to refresh it).
        :meth:`restart_coordinator` brings it back *from the persisted
        state file*, exactly as a real process restart would.
        """
        if self._thread is None or self._loop is None:
            return
        self._stopping.set()
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30)
        self._thread = None
        self._server = None

    def restart_coordinator(self) -> "LocalCluster":
        """Restart a crashed coordinator from the persisted state file.

        Reloads the ring topology, route version and in-flight
        migration from ``coordinator-state.json`` (anything a mid-tick
        crash left unpersisted is simply redone — every migration phase
        is idempotent), rebinds the same coordinator port and resumes
        the background loops.
        """
        if self._thread is not None:
            raise ClusterError("coordinator is already running")
        persisted = self._load_state_file()
        if persisted is not None:
            with self._route_lock:
                self._route_version = max(
                    self._route_version,
                    int(persisted.get("route_version", 1)),
                )
                self._ring = HashRing.from_dict(persisted["ring"])
            migration = persisted.get("migration")
            self._migration = (
                Migration.from_dict(migration) if migration else None
            )
            self._last_migration = persisted.get("last_migration")
        self._start_coordinator_thread()
        return self

    def __enter__(self) -> "LocalCluster":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def kill_primary(self, shard_name: str) -> str:
        """Fault injection: crash the shard's current primary."""
        state = self.shard(shard_name)
        victim = state.primary
        victim.kill()
        self._dead.add(victim.name)
        return victim.name

    def promote(self, shard_name: str) -> int:
        """Fail a shard over to its standby; returns the new epoch.

        Steps 2–5 of the failover sequence (demote, seal, final
        catch-up, promote + route bump).  Normally driven by the health
        loop, public so tests and operators can force it — including on
        a shard whose primary is still alive.

        The order matters: the old primary is demoted *before* the seal
        is counted.  Demotion stops its decide gate admitting new work
        and its audit sink appending in-flight work (both checked under
        the node lock), so the trail is quiescent when counted — a seal
        taken first would let a live primary acknowledge decisions
        after the count, outside the sealed lineage, silently dropping
        grants clients already saw.
        """
        state = self.shard(shard_name)
        with state.lock:
            old_primary, standby = state.primary, state.standby
            if standby.name in self._dead:
                raise ClusterError(
                    f"shard {shard_name} has no live standby to promote"
                )
            old_primary.demote()
            seal = sum(
                1
                for _ in AuditTrailManager(
                    old_primary.trail_dir,
                    self._audit_key,
                    tolerate_ahead=True,
                ).events()
            )
            standby.catch_up(old_primary.trail_dir, max_events=seal)
            new_epoch = state.epoch + 1
            standby.promote(new_epoch)
            state.primary, state.standby = standby, old_primary
            state.epoch = new_epoch
            state.failovers += 1
        with self._route_lock:
            self._route_version += 1
        self._save_state()
        return new_epoch

    # ------------------------------------------------------------------
    # Durable coordinator state (restart-stable ring + migrations).
    # ------------------------------------------------------------------
    def _load_state_file(self) -> dict | None:
        try:
            with open(self._state_path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, ValueError) as exc:
            raise ClusterError(
                f"unreadable coordinator state at {self._state_path}: {exc}"
            ) from exc
        if not isinstance(data, dict) or "ring" not in data:
            raise ClusterError(
                f"malformed coordinator state at {self._state_path}"
            )
        return data

    def _snapshot_state(self) -> dict:
        with self._route_lock:
            version = self._route_version
            ring = self._ring
        migration = self._migration
        return {
            "route_version": version,
            "ring": ring.to_dict(),
            "shards": {
                name: {
                    "primary": state.primary.name,
                    "standby": state.standby.name,
                    "epoch": state.epoch,
                    "failovers": state.failovers,
                }
                for name, state in list(self._shards.items())
            },
            "dead": sorted(self._dead),
            "migration": migration.to_dict() if migration else None,
            "last_migration": self._last_migration,
            "migrations_total": dict(self._migrations_total),
            "users_moved_total": self._users_moved_total,
        }

    def _save_state(self) -> None:
        """Atomically persist the coordinator's durable state.

        Temp-file + ``os.replace`` so a crash mid-write leaves the
        previous state intact; called on every topology/epoch/migration
        transition, never from a hot path.
        """
        with self._state_lock:
            snapshot = self._snapshot_state()
            tmp_path = self._state_path + ".tmp"
            with open(tmp_path, "w", encoding="utf-8") as handle:
                json.dump(snapshot, handle, indent=2, sort_keys=True)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, self._state_path)

    # ------------------------------------------------------------------
    # Online resharding: split (add-node), drain, rebalancing.
    # ------------------------------------------------------------------
    def _next_shard_name(self) -> str:
        index = 0
        while f"shard-{index}" in self._shards:
            index += 1
        return f"shard-{index}"

    def add_shard(self, name: str | None = None) -> str:
        """Start a split migration onto a freshly created shard.

        Builds and starts the new shard's primary+standby pair (it
        joins the health and catch-up loops immediately) but does *not*
        put it on the serving ring: the reshard loop first catches the
        moving users' history up onto it, and only the cutover flips
        routing.  Returns the new shard's name; progress is observable
        through :meth:`reshard_status` / :meth:`wait_reshard`.
        """
        with self._reshard_lock:
            if self._migration is not None:
                raise ClusterError(
                    "a reshard migration is already in flight; wait for "
                    "it to complete"
                )
            if name is None:
                name = self._next_shard_name()
            if name in self._shards:
                raise ClusterError(f"shard {name!r} already exists")
            new_ring = self._ring.with_shard(name)
            state = self._build_shard(name)
            for node in (state.primary, state.standby):
                node.start()
                # The *old* ring on purpose: until cutover the moving
                # users are still owned (and served) by their source
                # shards, so the joining primary's ownership gate must
                # refuse them — routing there early would split history.
                node.install_ring(self._ring)
            self._shards[name] = state
            self._migration = Migration(
                KIND_SPLIT,
                name,
                self._ring.shard_names,
                new_ring.shard_names,
                self._ring.vnodes,
            )
            self._save_state()
            return name

    def drain_shard(self, name: str) -> str:
        """Start a drain migration moving every user off ``name``.

        The shard keeps serving its users until cutover; afterwards its
        nodes are stopped and it leaves the topology (its trails remain
        on disk as sealed lineages).
        """
        with self._reshard_lock:
            if self._migration is not None:
                raise ClusterError(
                    "a reshard migration is already in flight; wait for "
                    "it to complete"
                )
            if name not in self._shards:
                raise ClusterError(f"unknown shard {name!r}")
            if name not in self._ring.shard_names:
                raise ClusterError(f"shard {name!r} is not serving")
            new_ring = self._ring.without_shard(name)
            self._migration = Migration(
                KIND_DRAIN,
                name,
                self._ring.shard_names,
                new_ring.shard_names,
                self._ring.vnodes,
            )
            self._save_state()
            return name

    def shard_stats(self) -> dict[str, dict]:
        """Per-shard primary ``store.stats()`` (resident users et al.)."""
        stats = {}
        for shard_name, state in list(self._shards.items()):
            try:
                stats[shard_name] = state.primary.store.stats()
            except Exception as exc:  # a killed node's closed store
                stats[shard_name] = {"error": str(exc)}
        return stats

    def rebalance(
        self, *, threshold: float = 1.5, apply: bool = False
    ) -> dict:
        """Imbalance plan from the per-shard resident-user gauges.

        With ``apply=True`` and the plan recommending a split, starts
        one (``add_shard``) and reports the joining shard under
        ``"added"``.
        """
        resident = {}
        for shard_name in self._ring.shard_names:
            state = self._shards.get(shard_name)
            if state is None:
                continue
            stats = state.primary.store.stats()
            resident[shard_name] = int(stats.get("resident_users", 0))
        plan = plan_rebalance(resident, threshold=threshold)
        if apply and plan["action"] == "split":
            plan["added"] = self.add_shard()
        return plan

    def reshard_status(self) -> dict:
        """The ``reshard-status`` body: live, last and lifetime state."""
        migration = self._migration
        with self._route_lock:
            version = self._route_version
            serving = list(self._ring.shard_names)
        return {
            "active": migration is not None,
            "migration": migration.to_dict() if migration else None,
            "last_migration": self._last_migration,
            "migrations_total": dict(self._migrations_total),
            "users_moved_total": self._users_moved_total,
            "serving_shards": serving,
            "managed_shards": sorted(self._shards.keys()),
            "route_version": version,
        }

    def wait_reshard(self, timeout: float = 60.0) -> dict:
        """Block until the in-flight migration completes; return status.

        Raises :class:`ClusterError` at the deadline — an operator (or
        the smoke harness) polling a migration that cannot converge
        should hear about it rather than hang.
        """
        deadline = time.monotonic() + timeout
        while self._migration is not None:
            if time.monotonic() >= deadline:
                raise ClusterError(
                    "reshard migration did not complete within "
                    f"{timeout:.1f}s: {self.reshard_status()['migration']}"
                )
            time.sleep(0.02)
        return self.reshard_status()

    def _reshard_tick(self) -> None:
        """One migration step; phases are idempotent and crash-safe.

        Catch-up ticks import the moving users' events from every
        source lineage; once the per-tick delta converges to the live
        tail (``converge_events``) — or the tick budget runs out — the
        cutover runs as one tick.  State persists on every transition,
        so a coordinator crash anywhere in here resumes by redoing the
        current phase.
        """
        with self._reshard_lock:
            migration = self._migration
            if migration is None:
                return
            if migration.phase == PHASE_CATCHUP:
                delta = 0
                for source, target, predicate in migration.moves():
                    source_state = self._shards.get(source)
                    target_state = self._shards.get(target)
                    if source_state is None or target_state is None:
                        continue
                    migration.note_trail_dir(
                        source, source_state.primary.trail_dir
                    )
                    for trail_dir in migration.trail_dirs[source]:
                        report = target_state.primary.import_decision_events(
                            trail_dir,
                            predicate,
                            cursor=migration.cursor(target, trail_dir),
                        )
                        migration.set_cursor(
                            target, trail_dir, report["next_cursor"]
                        )
                        delta += report["scanned"]
                        migration.events_imported += report["imported"]
                migration.ticks += 1
                if (
                    delta <= migration.converge_events
                    or migration.ticks >= migration.max_catchup_ticks
                ):
                    migration.phase = PHASE_CUTOVER
                self._save_state()
            elif migration.phase == PHASE_CUTOVER:
                self._cutover(migration)

    def _cutover(self, migration: Migration) -> None:
        """Fence the movers, drain the tail, flip the ring, re-route.

        The ordering is the whole correctness argument (see
        ``docs/CLUSTER.md``):

        1. install the new ring on every **source** shard's nodes under
           a bumped fencing epoch (gate *and* sink now refuse the
           moving users — their trail history is quiescent from here;
           the epoch bump also forces every client of those shards to
           re-fetch the route, so none keeps deciding on a pre-cutover
           table) and bump the route version;
        2. one final import per moving range, walking **every** trail
           lineage the source ever had — with the movers quiescent this
           captures the complete acknowledged history, journal entries
           included, so in-flight retries stay exactly-once;
        3. purge the movers' records and journal entries from the
           source nodes (including any orphan a fence-refused in-flight
           decision committed between engine and sink);
        4. install the new ring on every node, flip the serving ring
           and bump the route version again — clients re-route the
           movers to the target, whose journal answers any retry;
        5. a drain additionally retires the subject shard (nodes
           stopped, trails kept on disk as sealed lineages).
        """
        started = time.monotonic()
        new_ring = HashRing(migration.new_shards, vnodes=migration.vnodes)
        sources = migration.sources()
        for source in sources:
            state = self._shards.get(source)
            if state is None:
                continue
            with state.lock:
                state.primary.install_ring(new_ring)
                state.standby.install_ring(new_ring)
                new_epoch = state.epoch + 1
                state.primary.promote(new_epoch)
                state.epoch = new_epoch
        with self._route_lock:
            self._route_version += 1
        self._save_state()
        for source, target, predicate in migration.moves():
            source_state = self._shards.get(source)
            target_state = self._shards.get(target)
            if source_state is None or target_state is None:
                continue
            migration.note_trail_dir(
                source, source_state.primary.trail_dir
            )
            for trail_dir in migration.trail_dirs[source]:
                report = target_state.primary.import_decision_events(
                    trail_dir,
                    predicate,
                    cursor=migration.cursor(target, trail_dir),
                )
                migration.set_cursor(
                    target, trail_dir, report["next_cursor"]
                )
                migration.events_imported += report["imported"]
        if migration.kind != KIND_DRAIN:
            # A drained shard retires whole — nothing to purge.
            for source in sources:
                state = self._shards.get(source)
                if state is None:
                    continue
                leaving = migration.leaving_predicate(source)
                with state.lock:
                    moved = state.primary.purge_users(leaving)
                    if state.standby.name not in self._dead:
                        state.standby.purge_users(leaving)
                migration.users_moved += moved
        else:
            subject_state = self._shards.get(migration.subject)
            if subject_state is not None:
                stats = subject_state.primary.store.stats()
                migration.users_moved += int(
                    stats.get("resident_users", 0)
                )
        for state in list(self._shards.values()):
            for node in (state.primary, state.standby):
                node.install_ring(new_ring)
        with self._route_lock:
            self._ring = new_ring
            self._route_version += 1
        if migration.kind == KIND_DRAIN:
            retired = self._shards.pop(migration.subject, None)
            if retired is not None:
                for node in (retired.primary, retired.standby):
                    if node.name not in self._dead:
                        node.stop()
        migration.cutover_pause_s = time.monotonic() - started
        migration.phase = PHASE_DONE
        self._migrations_total[migration.kind] += 1
        self._users_moved_total += migration.users_moved
        self._cutover_pauses.append(migration.cutover_pause_s)
        self._last_migration = migration.to_dict()
        self._migration = None
        self._save_state()

    # ------------------------------------------------------------------
    def policy_version(self):
        """The cluster-wide :class:`PolicyVersion` (first primary's view).

        :meth:`reload_policy` rolls every live node together, so the
        primaries agree outside a rollout window; per-node versions are
        in :meth:`policy_status`, where a partially failed rollout
        would show up as divergent epochs.
        """
        first = next(iter(self._shards.values()))
        return first.primary.policy_version()

    def policy_status(self) -> dict:
        """The ``policy-status`` body: cluster and per-node versions.

        ``findings`` mirrors the first primary's last-swap analyzer
        output (the rollout path swaps every node with the same set, so
        any primary's findings are the cluster's).
        """
        first = next(iter(self._shards.values()))
        return {
            "version": self.policy_version().to_dict(),
            "reloads": self._policy_reloads,
            "findings": first.primary.service.policy_status().get(
                "findings", []
            ),
            "nodes": {
                node.name: node.policy_version().to_dict()
                for node in self.nodes()
            },
        }

    def reload_policy(
        self,
        policy_set: MSoDPolicySet,
        *,
        verify: bool = False,
        max_flips: int = 0,
        force: bool = False,
        principal: str | None = None,
    ) -> dict:
        """Roll a new policy set across every live node, standby first.

        The set is validated once up front through the structured
        verifier (error-severity findings raise :class:`PolicyError`
        before any node is touched, so a rejected set never partially
        rolls out; ``force=True`` overrides).  Each shard then swaps
        under its own ``state.lock`` — serialising the rollout with
        that shard's catch-up ticks and any concurrent failover — with
        the **standby first**: if the primary dies mid-rollout, the
        node being promoted already runs the new set, so failover
        during a reload can neither drop the new policy nor resurrect
        the old one.  The route version bumps after all shards swap,
        nudging clients to re-fetch (decides in flight stay valid:
        fencing epochs are untouched).

        ``verify=True`` additionally attaches the full gate verdict to
        the response body.  The coordinator holds no decision trail of
        its own, so its gate is static-only; the differential half of a
        safe cluster rollout is :meth:`canary_reload_policy`.
        """
        from repro.verify.gate import evaluate_gate

        if principal is not None:
            # Check every live node's outgoing boundary BEFORE swapping
            # anything: a mid-rollout refusal would leave the cluster
            # running two policy versions.
            from repro.core.constraints import POLICY_RELOAD_PRIVILEGE

            for state in self._shards.values():
                with state.lock:
                    for node in (state.standby, state.primary):
                        if node.name in self._dead:
                            continue
                        denial = node.engine.admin_boundary_denial(
                            principal, POLICY_RELOAD_PRIVILEGE
                        )
                        if denial is not None:
                            raise PolicyError(
                                "policy reload refused by admin boundary "
                                f"on node {node.name!r}: {denial}"
                            )
        gate = evaluate_gate(policy_set, max_flips=max_flips)
        if not gate.ok and not force:
            raise PolicyError(
                "policy reload rejected: " + "; ".join(gate.reasons)
            )
        reports: dict[str, dict] = {}
        changed = False
        for state in self._shards.values():
            with state.lock:
                for node in (state.standby, state.primary):
                    if node.name in self._dead:
                        continue
                    report = node.reload_policy(policy_set, force=force)
                    reports[node.name] = report.to_dict()
                    changed = changed or report.changed
        if changed:
            self._policy_reloads += 1
            with self._route_lock:
                self._route_version += 1
        body = {
            "changed": changed,
            "version": self.policy_version().to_dict(),
            "reloads": self._policy_reloads,
            "nodes": reports,
            "findings": [str(finding) for finding in gate.static.findings],
        }
        if verify:
            body["gate"] = gate.to_dict()
        return body

    def canary_reload_policy(
        self,
        policy_set: MSoDPolicySet,
        *,
        shard_name: str | None = None,
        max_flips: int = 0,
        min_decisions: int = 0,
        timeout: float = 5.0,
        poll_interval: float = 0.05,
    ) -> dict:
        """Safe rollout: verify, canary one shard, then roll the cluster.

        The full pipeline of ``docs/VERIFICATION.md``:

        1. the structured static analyzer rejects the candidate before
           any node is touched (no ``force`` here — a canary rollout is
           never blind);
        2. the candidate is **staged on the canary shard's standby**
           (proving it parses, compiles and swaps on a real node) and
           the shard's **primary arms its mirror**: history replayed
           differentially under the candidate, then every live decision
           shadow-decided through it;
        3. the mirror is observed until ``min_decisions`` live
           decisions were compared (or ``timeout`` elapses); more than
           ``max_flips`` total flips — or any mirror error — rejects
           the rollout, rolls the staged standby back to its previous
           (set, epoch) with :meth:`MSoDEngine.rollback_policy` (so the
           candidate's epoch never stays resolvable in any lineage) and
           raises :class:`PolicyError`;
        4. only then does the ordinary coordinator-wide
           :meth:`reload_policy` run — the staged standby's second swap
           is a digest no-op, so every node lands on the same epoch.

        The canary shard's ``state.lock`` is held through stage +
        observation, serialising the canary with that shard's failover
        and catch-up; decide traffic is unaffected (decisions do not
        take shard locks).
        """
        from repro.verify.gate import evaluate_gate

        gate = evaluate_gate(policy_set, max_flips=max_flips)
        if not gate.ok:
            raise PolicyError(
                "canary rollout rejected: " + "; ".join(gate.reasons)
            )
        name = shard_name if shard_name is not None else next(iter(self._shards))
        state = self.shard(name)
        canary: dict = {"shard": name}
        with state.lock:
            primary, standby = state.primary, state.standby
            if primary.name in self._dead:
                raise ClusterError(
                    f"shard {name} has no live primary to mirror on"
                )
            staged = None
            if standby.name not in self._dead:
                pre_stage_set = standby.engine.policy_set
                pre_stage_epoch = standby.policy_version().epoch
                staged = standby.reload_policy(policy_set)
                canary["staged"] = staged.to_dict()
            if staged is None or staged.changed:
                primary.mirror_start(policy_set)
                try:
                    deadline = time.monotonic() + timeout
                    while True:
                        report = primary.mirror_report()
                        if report["live_decisions"] >= min_decisions:
                            break
                        if time.monotonic() >= deadline:
                            break
                        time.sleep(poll_interval)
                finally:
                    report = primary.mirror_stop()
                canary["mirror"] = report
                if (
                    report["flip_count"] > max_flips
                    or report["mirror_errors"] > 0
                ):
                    if staged is not None:
                        # Erase the staged candidate from the standby's
                        # lineage: a plain reload back would leave the
                        # candidate resolvable at its staged epoch, and
                        # a later rollout would reuse that epoch number
                        # for a different set.
                        standby.engine.rollback_policy(
                            pre_stage_set, to_epoch=pre_stage_epoch
                        )
                    raise PolicyError(
                        f"canary rollout rejected on shard {name}: "
                        f"{report['flip_count']} decision flips "
                        f"(budget {max_flips}), "
                        f"{report['mirror_errors']} mirror errors over "
                        f"{report['live_decisions']} live decisions"
                    )
            else:
                canary["noop"] = True
        body = self.reload_policy(policy_set)
        body["canary"] = canary
        return body

    # ------------------------------------------------------------------
    def route(self) -> dict:
        """The routing table clients consume (see ``ClusterPDP``).

        Built from the **serving ring**, not the managed shard set:
        during a split the joining shard exists (health-checked,
        catching up) but carries no users until cutover flips the ring,
        and ``ClusterPDP`` derives its own ring from exactly this shard
        list — the route table *is* the topology.
        """
        with self._route_lock:
            version = self._route_version
            ring = self._ring
        shards = {}
        for name in ring.shard_names:
            state = self._shards.get(name)
            if state is None:  # pragma: no cover - mid-retirement race
                continue
            shards[name] = {
                "address": list(state.primary.address),
                "epoch": state.epoch,
            }
        return {
            "version": version,
            "vnodes": ring.vnodes,
            "shards": shards,
        }

    def status(self) -> dict:
        """The ``cluster-status`` body: every node's role and health.

        Each shard also reports its primary's ``store.stats()`` (with
        the ``resident_users`` gauge) and whether it is on the serving
        ring, so operators can see imbalance — and a migration's
        progress — from one verb instead of scraping every node.
        """
        with self._route_lock:
            version = self._route_version
            serving = set(self._ring.shard_names)
        shards = {}
        for name, state in list(self._shards.items()):
            try:
                stats = state.primary.store.stats()
            except Exception as exc:  # a killed node's closed store
                stats = {"error": str(exc)}
            shards[name] = {
                "epoch": state.epoch,
                "failovers": state.failovers,
                "serving": name in serving,
                "stats": stats,
                "resident_users": stats.get("resident_users"),
                "nodes": [
                    {
                        "name": node.name,
                        "address": list(node.address),
                        "role": node.role,
                        "epoch": node.epoch,
                        "up": node.name not in self._dead,
                        "journal_size": node.journal_size,
                        "policy_epoch": node.policy_version().epoch,
                    }
                    for node in (state.primary, state.standby)
                ],
            }
        return {
            "route_version": version,
            "loop_errors": dict(self._loop_errors),
            "policy_reloads": self._policy_reloads,
            "reshard": self.reshard_status(),
            "shards": shards,
        }

    # ------------------------------------------------------------------
    def metrics_registry(self) -> MetricsRegistry:
        """Cluster-level Prometheus registry with per-node gauges."""
        if self._registry is not None:
            return self._registry
        registry = MetricsRegistry()

        def per_node(value_of) -> list[tuple[dict[str, str], float]]:
            samples = []
            for state in list(self._shards.values()):
                for node in (state.primary, state.standby):
                    labels = {
                        "node": node.name,
                        "shard": node.shard,
                        "role": node.role,
                    }
                    samples.append((labels, value_of(node)))
            return samples

        registry.register_gauge(
            "cluster_node_up",
            "1 when the node is believed alive, 0 after a crash.",
            lambda: per_node(
                lambda node: 0.0 if node.name in self._dead else 1.0
            ),
        )
        registry.register_gauge(
            "cluster_node_primary",
            "1 when the node is its shard's current primary.",
            lambda: per_node(
                lambda node: 1.0 if node.role == ROLE_PRIMARY else 0.0
            ),
        )
        registry.register_gauge(
            "cluster_node_epoch",
            "The node's current fencing epoch.",
            lambda: per_node(lambda node: float(node.epoch)),
        )
        registry.register_gauge(
            "cluster_node_journal_size",
            "Decision outcomes held for exactly-once retry dedupe.",
            lambda: per_node(lambda node: float(node.journal_size)),
        )
        registry.register_gauge(
            "policy_epoch",
            "Epoch of the policy set each node decides under.",
            lambda: per_node(
                lambda node: float(node.policy_version().epoch)
            ),
        )
        registry.register_counter(
            "policy_reloads_total",
            "Cluster-wide policy rollouts that changed the active set.",
            lambda: float(self._policy_reloads),
        )
        registry.register_counter(
            "cluster_coordinator_loop_errors_total",
            "Background-loop ticks that raised (logged and retried), "
            "by loop.",
            lambda: [
                ({"loop": loop_name}, float(count))
                for loop_name, count in self._loop_errors.items()
            ],
        )
        registry.register_counter(
            "cluster_failovers_total",
            "Standby promotions performed, by shard.",
            lambda: [
                ({"shard": name}, float(state.failovers))
                for name, state in list(self._shards.items())
            ],
        )
        registry.register_gauge(
            "cluster_route_version",
            "Monotonic routing-table version (bumps on every failover).",
            lambda: float(self.route()["version"]),
        )
        registry.register_gauge(
            "cluster_shard_resident_users",
            "Users resident in each shard primary's retained-ADI store "
            "(the rebalance planner's imbalance signal).",
            lambda: [
                ({"shard": shard_name}, float(stats.get("resident_users", 0)))
                for shard_name, stats in self.shard_stats().items()
                if "error" not in stats
            ],
        )
        registry.register_counter(
            "reshard_migrations_total",
            "Completed online reshard migrations, by kind.",
            lambda: [
                ({"kind": kind}, float(count))
                for kind, count in self._migrations_total.items()
            ],
        )
        registry.register_counter(
            "reshard_users_moved_total",
            "Users whose retained ADI moved shards across all completed "
            "migrations.",
            lambda: float(self._users_moved_total),
        )
        registry.register_gauge(
            "reshard_active",
            "1 while a reshard migration is in flight.",
            lambda: 0.0 if self._migration is None else 1.0,
        )

        def cutover_pause_samples() -> list[tuple[dict[str, str], float]]:
            pauses = sorted(self._cutover_pauses)
            if not pauses:
                return []
            def quantile(fraction: float) -> float:
                rank = min(len(pauses) - 1, int(fraction * len(pauses)))
                return pauses[rank]
            return [
                ({"quantile": "0.5"}, quantile(0.5)),
                ({"quantile": "0.99"}, quantile(0.99)),
                ({"quantile": "1.0"}, pauses[-1]),
            ]

        registry.register_gauge(
            "reshard_cutover_pause_seconds",
            "Cutover fence-to-reroute pause per completed migration "
            "(summary quantiles over this coordinator's lifetime).",
            cutover_pause_samples,
        )
        registry.register_counter(
            "reshard_cutover_pause_seconds_sum",
            "Sum of cutover pauses across completed migrations.",
            lambda: float(sum(self._cutover_pauses)),
        )
        registry.register_counter(
            "reshard_cutover_pause_seconds_count",
            "Number of completed cutovers observed.",
            lambda: float(len(self._cutover_pauses)),
        )
        self._registry = registry
        return registry

    def metrics_text(self) -> str:
        return self.metrics_registry().render()

    # ------------------------------------------------------------------
    # Coordinator event loop: health checks, catch-up, route serving.
    # ------------------------------------------------------------------
    def _run(self) -> None:
        loop = self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(self._start_server())
        except BaseException:  # pragma: no cover - startup failure
            self._ready.set()
            loop.close()
            raise
        health = loop.create_task(self._health_loop())
        catchup = loop.create_task(self._catchup_loop())
        reshard = loop.create_task(self._reshard_loop())
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            for task in (health, catchup, reshard):
                task.cancel()
            loop.run_until_complete(
                asyncio.gather(
                    health, catchup, reshard, return_exceptions=True
                )
            )
            if self._server is not None:
                self._server.close()
                loop.run_until_complete(self._server.wait_closed())
            pending = [
                task for task in asyncio.all_tasks(loop) if not task.done()
            ]
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.close()

    async def _start_server(self) -> None:
        # A restart rebinds the port the first boot was given (clients
        # hold the coordinator address; an ephemeral rebind would
        # orphan them all).
        self._server = await asyncio.start_server(
            self._handle_connection,
            self._host,
            self._coordinator_port or self._port,
            limit=protocol.MAX_FRAME_BYTES,
        )
        sockets = self._server.sockets or []
        if sockets:
            self._coordinator_port = sockets[0].getsockname()[1]

    def _probe(self, node: ClusterNode) -> bool:
        """One blocking health probe with the fast health timeout."""
        host, port = node.address
        try:
            with RemotePDP(
                host,
                port,
                pool_size=1,
                timeout=self._health_timeout,
                health_timeout=self._health_timeout,
                max_retries=0,
            ) as pdp:
                body = pdp.healthz()
            return bool(body)
        except (PDPUnavailableError, ProtocolError):
            return False

    async def _health_loop(self) -> None:
        """Probe primaries forever; a failing tick never kills the loop.

        An exception from one shard's probe or promotion (an unreadable
        trail, a standby racing its own death...) is logged and counted;
        the shard is retried next tick and the other shards' checks
        proceed.  A silently-dead health loop would mean no shard could
        ever fail over again.
        """
        loop = asyncio.get_running_loop()
        misses: dict[str, int] = {}
        while not self._stopping.is_set():
            # Snapshot: a split adds shards and a drain retires them
            # from other threads while this loop sleeps.
            for name, state in list(self._shards.items()):
                try:
                    primary = state.primary
                    if primary.name in self._dead:
                        ok = False
                    else:
                        ok = await loop.run_in_executor(
                            None, self._probe, primary
                        )
                    if ok:
                        misses[name] = 0
                        continue
                    misses[name] = misses.get(name, 0) + 1
                    if misses[name] < self._health_failures:
                        continue
                    self._dead.add(primary.name)
                    if state.standby.name not in self._dead:
                        await loop.run_in_executor(None, self.promote, name)
                        misses[name] = 0
                except Exception:
                    self._loop_errors["health"] += 1
                    logger.exception(
                        "health tick failed for shard %s; retrying next tick",
                        name,
                    )
            await asyncio.sleep(self._health_interval)

    async def _catchup_loop(self) -> None:
        """Replay primaries' trails into standbys; ticks never kill it.

        Replay races the live primary's appends, so a tick can raise
        (e.g. an :class:`AuditTrailError` the live-reader tolerance does
        not cover); that is logged and counted, and the standby simply
        catches up on the next tick — replay is idempotent, so a missed
        tick costs lag, never correctness.
        """
        loop = asyncio.get_running_loop()
        while not self._stopping.is_set():
            for name, state in list(self._shards.items()):
                standby, primary = state.standby, state.primary
                if standby.name in self._dead or primary.name in self._dead:
                    continue

                def tick(state=state, standby=standby, primary=primary):
                    with state.lock:
                        if state.standby is standby:
                            standby.catch_up(primary.trail_dir)

                try:
                    await loop.run_in_executor(None, tick)
                except Exception:
                    self._loop_errors["catchup"] += 1
                    logger.exception(
                        "catch-up tick failed for shard %s; retrying "
                        "next tick",
                        name,
                    )
            await asyncio.sleep(self._catchup_interval)

    async def _reshard_loop(self) -> None:
        """Drive the in-flight migration; ticks never kill the loop.

        Same discipline as the health and catch-up loops: a tick that
        raises (a source trail racing its own rotation, a node dying
        mid-import...) is logged and counted, and the migration — whose
        phases are idempotent — simply retries next tick.
        """
        loop = asyncio.get_running_loop()
        while not self._stopping.is_set():
            if self._migration is not None:
                try:
                    await loop.run_in_executor(None, self._reshard_tick)
                except Exception:
                    self._loop_errors["reshard"] += 1
                    logger.exception(
                        "reshard tick failed; retrying next tick"
                    )
            await asyncio.sleep(self._reshard_interval)

    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._send(
                        writer,
                        protocol.error_frame(
                            None,
                            protocol.ERR_PROTOCOL,
                            "frame exceeds size limit",
                        ),
                    )
                    break
                if not line:
                    break
                if not await self._handle_frame(writer, line):
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            pass  # coordinator teardown cancelled this connection
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _handle_frame(
        self, writer: asyncio.StreamWriter, line: bytes
    ) -> bool:
        frame_id = None
        try:
            frame = protocol.decode_frame(line)
            frame_id = frame.get("id")
            op = frame.get("op")
            if op == protocol.OP_ROUTE:
                body = self.route()
            elif op == protocol.OP_CLUSTER_STATUS:
                body = self.status()
            elif op == protocol.OP_HEALTHZ:
                body = {"status": "ok", "role": "coordinator"}
            elif op == protocol.OP_METRICS:
                fmt = protocol.metrics_format_of(frame)
                body = (
                    self.metrics_text()
                    if fmt == protocol.METRICS_FORMAT_PROMETHEUS
                    else self.status()
                )
            elif op == protocol.OP_POLICY_STATUS:
                body = self.policy_status()
            elif op == protocol.OP_RESHARD_STATUS:
                body = self.reshard_status()
            elif op == protocol.OP_RESHARD:
                await self._handle_reshard(writer, frame_id, frame)
                return True
            elif op == protocol.OP_POLICY_RELOAD:
                await self._handle_policy_reload(writer, frame_id, frame)
                return True
            else:
                raise ProtocolError(
                    f"unknown coordinator operation {op!r}"
                )
            await self._send(
                writer, protocol.response_frame(frame_id, op, "body", body)
            )
        except ProtocolError as exc:
            await self._send(
                writer,
                protocol.error_frame(frame_id, protocol.ERR_PROTOCOL, str(exc)),
            )
        except (ConnectionResetError, BrokenPipeError):
            return False
        return True

    async def _handle_reshard(
        self, writer: asyncio.StreamWriter, frame_id, frame: dict
    ) -> None:
        """Start a resize operation (add-node / drain / rebalance).

        Starting a split boots two server threads and everything takes
        the reshard lock, so the work runs in the executor; the
        response is the immediate reshard status (or rebalance plan) —
        the migration itself proceeds asynchronously under the reshard
        loop, observable via ``reshard-status``.
        """
        action, shard, apply = protocol.reshard_options_of(frame)
        loop = asyncio.get_running_loop()

        def run() -> dict:
            if action == protocol.RESHARD_ACTION_ADD:
                added = self.add_shard(shard)
                body = self.reshard_status()
                body["added"] = added
                return body
            if action == protocol.RESHARD_ACTION_DRAIN:
                self.drain_shard(shard)
                return self.reshard_status()
            return self.rebalance(apply=apply)

        try:
            body = await loop.run_in_executor(None, run)
        except ClusterError as exc:
            await self._send(
                writer,
                protocol.error_frame(
                    frame_id, protocol.ERR_PROTOCOL, str(exc)
                ),
            )
            return
        await self._send(
            writer,
            protocol.response_frame(
                frame_id, protocol.OP_RESHARD, "body", body
            ),
        )

    async def _handle_policy_reload(
        self, writer: asyncio.StreamWriter, frame_id, frame: dict
    ) -> None:
        """Parse, validate and roll a policy set across the cluster.

        The rollout takes shard locks and blocks on every node's
        serving loop, so it runs in the executor — route, status and
        health frames keep being answered while it proceeds.  A
        rejected set answers ``error.kind == "policy"`` and leaves
        every node untouched.
        """
        from repro.xmlpolicy import parse_policy_set

        xml = protocol.policy_xml_of(frame)
        verify, max_flips, force = protocol.reload_options_of(frame)
        principal = protocol.reload_principal_of(frame)
        canary = frame.get("canary", False)
        if not isinstance(canary, bool):
            raise ProtocolError("policy-reload.canary must be a boolean")
        loop = asyncio.get_running_loop()

        def run(policy_set: MSoDPolicySet) -> dict:
            if canary:
                return self.canary_reload_policy(
                    policy_set, max_flips=max_flips
                )
            return self.reload_policy(
                policy_set,
                verify=verify,
                max_flips=max_flips,
                force=force,
                principal=principal,
            )

        try:
            policy_set = parse_policy_set(xml)
            body = await loop.run_in_executor(None, run, policy_set)
        except PolicyError as exc:
            await self._send(
                writer,
                protocol.error_frame(frame_id, protocol.ERR_POLICY, str(exc)),
            )
            return
        await self._send(
            writer,
            protocol.response_frame(
                frame_id, protocol.OP_POLICY_RELOAD, "body", body
            ),
        )

    @staticmethod
    async def _send(writer: asyncio.StreamWriter, frame: dict) -> None:
        writer.write(protocol.encode_frame(frame))
        await writer.drain()
